"""repro — reproduction of "Improvement for vTPM Access Control on Xen"
(Morikawa, Ebara, Onishi, Nakano — ICPPW 2010, DOI 10.1109/ICPPW.2010.44).

A deterministic, simulation-backed implementation of the Xen vTPM stack —
TPM 1.2 emulator, Xen-like hypervisor substrate, vTPM manager with split
drivers, live migration — plus the paper's contribution: a reference-
monitor access-control layer (measured identity, per-command policy,
protected memory, sealed storage, audit) that closes the privileged
memory/CPU-dump attack channel.

Quickstart::

    from repro import AccessMode, build_platform

    platform = build_platform(AccessMode.IMPROVED)
    guest = platform.add_guest("web01")
    ek = guest.client.read_pubek()
    guest.client.take_ownership(b"o" * 20, b"s" * 20, ek)
    guest.client.extend(10, b"\xaa" * 20)

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
evaluation harness (one file per table/figure; index in DESIGN.md).
"""

from repro import obs
from repro.cluster.fleet import Fleet, build_fleet
from repro.core.config import AccessControlConfig, AccessMode
from repro.harness.builder import (
    GuestHandle,
    Platform,
    build_platform,
    fresh_timing_context,
)
from repro.tpm.client import TpmClient
from repro.tpm.device import TpmDevice
from repro.util.errors import (
    AccessControlError,
    AccessDenied,
    MarshalError,
    ReproError,
    SimulationError,
    TpmError,
    VtpmError,
    XenError,
)

__version__ = "1.0.0"

__all__ = [
    "AccessControlConfig",
    "AccessMode",
    "Fleet",
    "GuestHandle",
    "build_fleet",
    "Platform",
    "build_platform",
    "fresh_timing_context",
    "obs",
    "TpmClient",
    "TpmDevice",
    "AccessControlError",
    "AccessDenied",
    "MarshalError",
    "ReproError",
    "SimulationError",
    "TpmError",
    "VtpmError",
    "XenError",
    "__version__",
]
