"""Summary statistics over latency samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.util.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set (microseconds)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float
    stdev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f}us median={self.median:.1f}us "
            f"p95={self.p95:.1f}us max={self.maximum:.1f}us"
        )


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile over pre-sorted samples."""
    if not sorted_samples:
        raise ReproError("percentile of empty sample set")
    if not 0.0 <= fraction <= 1.0:
        raise ReproError(f"fraction {fraction} outside [0, 1]")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = fraction * (len(sorted_samples) - 1)
    low = int(math.floor(position))
    high = min(low + 1, len(sorted_samples) - 1)
    weight = position - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


def summarize(samples: Sequence[float]) -> Summary:
    """Full summary of a sample set."""
    if not samples:
        raise ReproError("summarize of empty sample set")
    ordered = sorted(samples)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / n if n > 1 else 0.0
    return Summary(
        count=n,
        mean=mean,
        median=percentile(ordered, 0.5),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
        stdev=math.sqrt(variance),
    )


def overhead_pct(baseline: float, treatment: float) -> float:
    """Relative overhead of treatment over baseline, in percent."""
    if baseline <= 0:
        raise ReproError(f"baseline must be positive, got {baseline}")
    return (treatment - baseline) / baseline * 100.0
