"""Latency recording against the virtual clock."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List

from repro.metrics.stats import Summary, summarize
from repro.sim.timing import get_context
from repro.util.errors import ReproError


class VirtualTimer:
    """Context manager measuring elapsed *virtual* microseconds."""

    def __init__(self) -> None:
        self.elapsed_us = 0.0
        self._start = 0.0

    def __enter__(self) -> "VirtualTimer":
        self._start = get_context().clock.now_us
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_us = get_context().clock.now_us - self._start


class LatencyRecorder:
    """Collects named virtual-latency samples and summarizes them.

    A recorder is **bound to the timing context it first records under**:
    ``fresh_timing_context()`` resets the virtual clock to zero, so
    samples taken across that boundary belong to different measurement
    epochs and must never be mixed into one summary.  Recording under a
    different context raises :class:`~repro.util.errors.ReproError`;
    :meth:`clear` drops the samples *and* the binding, so a recorder can
    be deliberately reused for a new epoch.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self._ctx = None

    def _check_context(self) -> None:
        ctx = get_context()
        if self._ctx is None:
            self._ctx = ctx
        elif ctx is not self._ctx:
            raise ReproError(
                "LatencyRecorder is bound to an earlier timing context; "
                "samples recorded across a sim-context reset would silently "
                "mix epochs — call clear() (or use a fresh recorder) after "
                "fresh_timing_context()"
            )

    def record(self, name: str, value_us: float) -> None:
        if value_us < 0:
            raise ReproError(f"negative latency {value_us} for {name!r}")
        self._check_context()
        self._samples[name].append(value_us)

    def measure(self, name: str) -> "_Measurement":
        """``with recorder.measure("op"):`` records one virtual-time sample."""
        return _Measurement(self, name)

    def names(self) -> List[str]:
        return sorted(self._samples)

    def samples(self, name: str) -> List[float]:
        return list(self._samples.get(name, []))

    def summary(self, name: str) -> Summary:
        samples = self._samples.get(name)
        if not samples:
            raise ReproError(f"no samples recorded for {name!r}")
        return summarize(samples)

    def summaries(self) -> Dict[str, Summary]:
        return {name: self.summary(name) for name in self.names()}

    def clear(self) -> None:
        self._samples.clear()
        self._ctx = None


class _Measurement:
    def __init__(self, recorder: LatencyRecorder, name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._timer = VirtualTimer()

    def __enter__(self) -> "_Measurement":
        self._timer.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._timer.__exit__(*exc_info)
        if exc_info[0] is None:
            self._recorder.record(self._name, self._timer.elapsed_us)
