"""Fixed-width table rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    if not headers:
        raise ReproError("table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.2f}"
    return str(value)
