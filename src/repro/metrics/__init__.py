"""Measurement plumbing: latency recording, summary stats, table output."""

from repro.metrics.recorder import LatencyRecorder, VirtualTimer
from repro.metrics.stats import Summary, overhead_pct, summarize
from repro.metrics.tables import format_table

__all__ = [
    "LatencyRecorder",
    "VirtualTimer",
    "Summary",
    "overhead_pct",
    "summarize",
    "format_table",
]
