"""Module entry point: ``python -m repro <subcommand>``."""

from repro.cli import main

raise SystemExit(main())
