"""Workload generators for the evaluation.

* :mod:`~repro.workloads.mixes` — per-ordinal command mixes driven through
  a prepared guest session (microbenchmarks, throughput sweeps).
* :mod:`~repro.workloads.traces` — synthetic arrival traces (open-loop
  load for the scaling experiment).
* :mod:`~repro.workloads.webapp` — a sealed-storage web-server model (the
  application-level benchmark).
* :mod:`~repro.workloads.attestation` — remote-attestation rounds across
  a cluster of guests.
"""

from repro.workloads.mixes import (
    CommandMix,
    GuestSession,
    MIX_ATTESTATION,
    MIX_MEASUREMENT,
    MIX_MIXED,
    MIX_SEALED_STORAGE,
    OPERATIONS,
)
from repro.workloads.traces import SyntheticTrace, TraceEntry
from repro.workloads.webapp import SealedStorageWebApp, WebAppResult
from repro.workloads.attestation import AttestationWorkload, AttestationResult

__all__ = [
    "CommandMix",
    "GuestSession",
    "MIX_ATTESTATION",
    "MIX_MEASUREMENT",
    "MIX_MIXED",
    "MIX_SEALED_STORAGE",
    "OPERATIONS",
    "SyntheticTrace",
    "TraceEntry",
    "SealedStorageWebApp",
    "WebAppResult",
    "AttestationWorkload",
    "AttestationResult",
]
