"""Remote-attestation workload: challenger ↔ guest quote rounds.

Each round: the challenger sends a fresh nonce; the guest quotes its PCRs
with a loaded signing/identity key; the challenger verifies the signature
and the PCR composite against its reference values.  Used by the cluster
example and as a correctness-bearing workload in the integration tests
(a corrupted PCR must fail verification).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaPublicKey
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.tpm.structures import make_quote_info
from repro.workloads.mixes import KEY_AUTH, GuestSession


@dataclass(frozen=True)
class AttestationResult:
    rounds: int
    verified: int
    failed: int

    @property
    def all_verified(self) -> bool:
        return self.failed == 0 and self.verified == self.rounds


class AttestationWorkload:
    """A challenger attesting one guest session repeatedly."""

    def __init__(
        self,
        session: GuestSession,
        rng: RandomSource,
        pcr_indices: Sequence[int] = (0, 12),
    ) -> None:
        self.session = session
        self.rng = rng
        self.pcr_indices = list(pcr_indices)
        # The challenger learned the guest's public key out of band.
        self.public: RsaPublicKey = session.guest.client.get_pub_key(
            session.sign_key, KEY_AUTH
        )

    def challenge_once(
        self, expected_values: Sequence[bytes] | None = None
    ) -> bool:
        """One attestation round; returns whether verification passed."""
        nonce = self.rng.bytes(20)
        composite, values, signature = self.session.guest.client.quote(
            self.session.sign_key, KEY_AUTH, nonce, self.pcr_indices
        )
        # Challenger-side verification (no vTPM involved):
        quote_info = make_quote_info(composite, nonce)
        if not self.public.verify_sha1(
            hashlib.sha1(quote_info).digest(), signature
        ):
            return False
        recomputed = PcrBank.composite_of(PcrSelection(self.pcr_indices), values)
        if recomputed != composite:
            return False
        if expected_values is not None and list(expected_values) != values:
            return False
        return True

    def run(self, rounds: int) -> AttestationResult:
        verified = failed = 0
        for _ in range(rounds):
            if self.challenge_once():
                verified += 1
            else:
                failed += 1
        return AttestationResult(rounds=rounds, verified=verified, failed=failed)
