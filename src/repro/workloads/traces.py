"""Synthetic arrival traces.

Open-loop load for the scaling experiment: each entry is (arrival time,
guest index, operation).  Arrivals are Poisson per guest; operations come
from a :class:`~repro.workloads.mixes.CommandMix`.  Traces serialize to a
simple text format so runs can be archived and replayed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.crypto.random_source import RandomSource
from repro.util.errors import ReproError
from repro.workloads.mixes import CommandMix, OPERATIONS


@dataclass(frozen=True)
class TraceEntry:
    """One operation arrival."""

    time_us: float
    guest_index: int
    operation: str


@dataclass
class SyntheticTrace:
    """A full workload trace."""

    entries: List[TraceEntry]
    guests: int
    duration_us: float

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @staticmethod
    def poisson(
        rng: RandomSource,
        guests: int,
        rate_per_guest_per_sec: float,
        duration_s: float,
        mix: CommandMix,
    ) -> "SyntheticTrace":
        """Poisson arrivals per guest, merged and time-sorted."""
        if guests <= 0:
            raise ReproError(f"need at least one guest, got {guests}")
        if rate_per_guest_per_sec <= 0 or duration_s <= 0:
            raise ReproError("rate and duration must be positive")
        rate_us = rate_per_guest_per_sec / 1e6
        duration_us = duration_s * 1e6
        entries: List[TraceEntry] = []
        for g in range(guests):
            guest_rng = rng.fork(f"trace-guest-{g}")
            t = 0.0
            while True:
                t += guest_rng.expovariate(rate_us)
                if t >= duration_us:
                    break
                entries.append(
                    TraceEntry(time_us=t, guest_index=g, operation=mix.draw(guest_rng))
                )
        entries.sort(key=lambda e: (e.time_us, e.guest_index))
        return SyntheticTrace(entries=entries, guests=guests, duration_us=duration_us)

    # -- (de)serialization ---------------------------------------------------------

    def dumps(self) -> str:
        lines = [f"# guests={self.guests} duration_us={self.duration_us}"]
        lines += [
            # repr keeps full float precision so loads(dumps(t)) == t.
            f"{e.time_us!r}\t{e.guest_index}\t{e.operation}" for e in self.entries
        ]
        return "\n".join(lines) + "\n"

    @staticmethod
    def loads(text: str) -> "SyntheticTrace":
        lines = [l for l in text.splitlines() if l.strip()]
        if not lines or not lines[0].startswith("#"):
            raise ReproError("trace text missing header line")
        header = dict(
            part.split("=", 1) for part in lines[0].lstrip("# ").split()
        )
        entries = []
        for line in lines[1:]:
            time_s, guest_s, op = line.split("\t")
            if op not in OPERATIONS:
                raise ReproError(f"trace names unknown operation {op!r}")
            entries.append(
                TraceEntry(
                    time_us=float(time_s), guest_index=int(guest_s), operation=op
                )
            )
        return SyntheticTrace(
            entries=entries,
            guests=int(header["guests"]),
            duration_us=float(header["duration_us"]),
        )
