"""TPM command mixes and the per-guest session that runs them.

A :class:`GuestSession` prepares a guest for real work (take ownership,
load a signing key, seal a blob, create a counter) and exposes one callable
per operation name.  A :class:`CommandMix` is a weighted distribution over
those names; drawing and running ``n`` operations produces a realistic
command stream whose composition the experiments control explicitly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, Sequence

from repro.crypto.random_source import RandomSource
from repro.harness.builder import GuestHandle
from repro.tpm.constants import TPM_KEY_SIGNING, TPM_KH_SRK
from repro.util.errors import ReproError

OWNER_AUTH = b"session-owner-auth!!"
SRK_AUTH = b"session-srk-auth!!!!"
KEY_AUTH = b"session-key-auth!!!!"
DATA_AUTH = b"session-data-auth!!!"
COUNTER_AUTH = b"session-counter-a!!!"


class GuestSession:
    """A guest with a fully provisioned vTPM, ready to run operations."""

    def __init__(self, guest: GuestHandle, rng: RandomSource,
                 key_bits: int = 512) -> None:
        self.guest = guest
        self.rng = rng
        client = guest.client
        ek = client.read_pubek()
        client.take_ownership(OWNER_AUTH, SRK_AUTH, ek)
        key_blob = client.create_wrap_key(
            TPM_KH_SRK, SRK_AUTH, KEY_AUTH, TPM_KEY_SIGNING, key_bits
        )
        self.sign_key = client.load_key2(TPM_KH_SRK, SRK_AUTH, key_blob)
        self.sealed_blob = client.seal(
            TPM_KH_SRK, SRK_AUTH, b"session-payload-0123456789", DATA_AUTH
        )
        self.counter_handle, _ = client.create_counter(
            OWNER_AUTH, COUNTER_AUTH, b"wrk0"
        )
        from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE

        client.nv_define(
            OWNER_AUTH, 0x2000, 64, NV_PER_AUTHREAD | NV_PER_AUTHWRITE,
            b"session-nv-auth!!!!!",
        )
        client.nv_write(b"session-nv-auth!!!!!", 0x2000, 0, b"\x5a" * 64)
        self._ops: Dict[str, Callable[[], None]] = {
            "extend": self._op_extend,
            "pcr_read": self._op_pcr_read,
            "quote": self._op_quote,
            "seal": self._op_seal,
            "unseal": self._op_unseal,
            "get_random": self._op_get_random,
            "sign": self._op_sign,
            "create_wrap_key": self._op_create_wrap_key,
            "load_key": self._op_load_key,
            "nv_write": self._op_nv_write,
            "nv_read": self._op_nv_read,
            "increment_counter": self._op_increment_counter,
        }
        self._key_bits = key_bits
        self._scratch_blob = key_blob

    # -- operations ---------------------------------------------------------------

    def _op_extend(self) -> None:
        self.guest.client.extend(12, self.rng.bytes(20))

    def _op_pcr_read(self) -> None:
        self.guest.client.pcr_read(12)

    def _op_quote(self) -> None:
        self.guest.client.quote(self.sign_key, KEY_AUTH, self.rng.bytes(20), [0, 12])

    def _op_seal(self) -> None:
        self.guest.client.seal(TPM_KH_SRK, SRK_AUTH, self.rng.bytes(24), DATA_AUTH)

    def _op_unseal(self) -> None:
        self.guest.client.unseal(TPM_KH_SRK, SRK_AUTH, self.sealed_blob, DATA_AUTH)

    def _op_get_random(self) -> None:
        self.guest.client.get_random(32)

    def _op_sign(self) -> None:
        digest = hashlib.sha1(self.rng.bytes(32)).digest()
        self.guest.client.sign(self.sign_key, KEY_AUTH, digest)

    def _op_create_wrap_key(self) -> None:
        self._scratch_blob = self.guest.client.create_wrap_key(
            TPM_KH_SRK, SRK_AUTH, KEY_AUTH, TPM_KEY_SIGNING, self._key_bits
        )

    def _op_load_key(self) -> None:
        handle = self.guest.client.load_key2(TPM_KH_SRK, SRK_AUTH, self._scratch_blob)
        self.guest.client.evict_key(handle)

    def _op_nv_write(self) -> None:
        self.guest.client.nv_write(
            b"session-nv-auth!!!!!", 0x2000, 0, self.rng.bytes(32)
        )

    def _op_nv_read(self) -> None:
        self.guest.client.nv_read(0x2000, 0, 32, auth=b"session-nv-auth!!!!!")

    # -- running ---------------------------------------------------------------------

    def run_operation(self, name: str) -> None:
        try:
            op = self._ops[name]
        except KeyError:
            raise ReproError(f"unknown workload operation {name!r}") from None
        op()

    def operation_names(self) -> list[str]:
        return sorted(self._ops)

    def _op_increment_counter(self) -> None:
        self.guest.client.increment_counter(COUNTER_AUTH, self.counter_handle)


#: every operation a session can run (the Table 1 row set)
OPERATIONS: Sequence[str] = (
    "extend",
    "pcr_read",
    "quote",
    "seal",
    "unseal",
    "get_random",
    "sign",
    "create_wrap_key",
    "load_key",
    "nv_write",
    "nv_read",
    "increment_counter",
)


@dataclass(frozen=True)
class CommandMix:
    """A weighted distribution over operation names."""

    name: str
    weights: Dict[str, float]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ReproError(f"mix {self.name!r} has no operations")
        unknown = set(self.weights) - set(OPERATIONS)
        if unknown:
            raise ReproError(f"mix {self.name!r} names unknown ops {unknown}")
        if any(w < 0 for w in self.weights.values()) or sum(self.weights.values()) <= 0:
            raise ReproError(f"mix {self.name!r} has invalid weights")

    def draw(self, rng: RandomSource) -> str:
        """Sample one operation name."""
        total = sum(self.weights.values())
        point = rng.uniform(0.0, total)
        acc = 0.0
        for op in sorted(self.weights):
            acc += self.weights[op]
            if point < acc:
                return op
        return sorted(self.weights)[-1]

    def sequence(self, rng: RandomSource, count: int) -> list[str]:
        return [self.draw(rng) for _ in range(count)]


MIX_MEASUREMENT = CommandMix(
    "measurement-heavy",
    {"extend": 5.0, "pcr_read": 4.0, "get_random": 1.0},
)
MIX_SEALED_STORAGE = CommandMix(
    "sealed-storage",
    {"unseal": 4.0, "seal": 1.0, "nv_read": 2.0, "nv_write": 1.0, "pcr_read": 2.0},
)
MIX_ATTESTATION = CommandMix(
    "attestation",
    {"quote": 3.0, "extend": 2.0, "pcr_read": 3.0, "get_random": 2.0},
)
MIX_MIXED = CommandMix(
    "mixed",
    {
        "extend": 3.0,
        "pcr_read": 3.0,
        "get_random": 2.0,
        "sign": 1.0,
        "unseal": 1.0,
        "nv_read": 1.0,
        "increment_counter": 1.0,
    },
)
