"""Sealed-storage web-server model (the application benchmark, Figure 4).

A TLS-terminating web server keeps its long-term private material sealed in
the vTPM and unseals a working key on session-cache misses.  Per request:

* cache hit  → pure application work;
* cache miss → ``TPM_Unseal`` through the vTPM path, then application work.

Three deployments compare: ``no-vtpm`` (key on disk in the clear — fast and
unsafe), ``baseline`` vTPM, and ``improved`` vTPM.  The interesting shape:
the access-control overhead is diluted by application work and by the
cache, so requests/s for improved stays within a few percent of baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.random_source import RandomSource
from repro.sim.timing import get_context
from repro.tpm.constants import TPM_KH_SRK
from repro.util.errors import ReproError
from repro.workloads.mixes import DATA_AUTH, SRK_AUTH, GuestSession

#: virtual cost of the application portion of one request (2010-era web
#: stack serving a dynamic page: ~2.5 ms)
APP_WORK_US = 2500.0
#: extra handshake crypto on a session-cache miss even without a vTPM
MISS_EXTRA_US = 900.0


@dataclass(frozen=True)
class WebAppResult:
    deployment: str
    requests: int
    misses: int
    elapsed_us: float

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return self.requests / (self.elapsed_us / 1e6)


class SealedStorageWebApp:
    """Drives the request loop against one deployment."""

    def __init__(
        self,
        rng: RandomSource,
        session: GuestSession | None,
        deployment: str,
        cache_hit_ratio: float = 0.9,
    ) -> None:
        if deployment not in ("no-vtpm", "baseline", "improved"):
            raise ReproError(f"unknown deployment {deployment!r}")
        if deployment != "no-vtpm" and session is None:
            raise ReproError(f"{deployment} deployment needs a guest session")
        if not 0.0 <= cache_hit_ratio <= 1.0:
            raise ReproError(f"cache hit ratio {cache_hit_ratio} out of range")
        self.rng = rng
        self.session = session
        self.deployment = deployment
        self.cache_hit_ratio = cache_hit_ratio

    def serve(self, requests: int) -> WebAppResult:
        """Run ``requests`` requests; returns throughput over virtual time."""
        clock = get_context().clock
        start = clock.now_us
        misses = 0
        for _ in range(requests):
            miss = self.rng.uniform(0.0, 1.0) >= self.cache_hit_ratio
            if miss:
                misses += 1
                clock.advance(MISS_EXTRA_US)
                if self.deployment != "no-vtpm":
                    # Key recovery through the vTPM path.
                    self.session.guest.client.unseal(
                        TPM_KH_SRK, SRK_AUTH, self.session.sealed_blob, DATA_AUTH
                    )
            clock.advance(APP_WORK_US)
        return WebAppResult(
            deployment=self.deployment,
            requests=requests,
            misses=misses,
            elapsed_us=clock.now_us - start,
        )
