"""The reconstructed evaluation: one runner per table/figure.

Each ``run_*`` function is self-contained: it installs a fresh timing
context, builds the platforms it needs, runs the workload, and returns a
result object whose ``render()`` prints the same rows/series the paper's
table or figure reports.  The benchmark files under ``benchmarks/`` are
thin wrappers that call these and print the rendering.

All latencies are *virtual* microseconds from the deterministic cost
model, so runs are bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import AccessControlConfig, AccessMode
from repro.core.policy import ANY, CommandClass, PolicyEngine
from repro.harness.builder import Platform, build_platform, fresh_timing_context
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.stats import Summary, overhead_pct, summarize
from repro.metrics.tables import format_table
from repro.obs import trace as obs_trace
from repro.sim.timing import CostLedger, get_context, ledger_scope
from repro.workloads.mixes import (
    MIX_MIXED,
    OPERATIONS,
    CommandMix,
    GuestSession,
)

# ---------------------------------------------------------------------------
# E1 / Table 1 — per-command latency, baseline vs improved
# ---------------------------------------------------------------------------


@dataclass
class CommandLatencyResult:
    reps: int
    baseline: Dict[str, Summary]
    improved: Dict[str, Summary]

    def overhead_rows(self) -> List[tuple]:
        rows = []
        for op in OPERATIONS:
            b = self.baseline[op].mean
            i = self.improved[op].mean
            rows.append((op, b / 1000.0, i / 1000.0, overhead_pct(b, i)))
        return rows

    def max_overhead_pct(self) -> float:
        return max(row[3] for row in self.overhead_rows())

    def render(self) -> str:
        return format_table(
            ["command", "baseline (ms)", "improved (ms)", "overhead (%)"],
            self.overhead_rows(),
            title="Table 1 — per-command vTPM latency",
        )


def _session_for(platform: Platform, name: str) -> GuestSession:
    guest = platform.add_guest(name)
    return GuestSession(guest, platform.rng.fork(f"sess-{name}"))


def run_command_latency(reps: int = 50, seed: int = 7) -> CommandLatencyResult:
    """E1: drive every operation ``reps`` times in each regime."""
    results: Dict[str, Dict[str, Summary]] = {}
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        fresh_timing_context()
        platform = build_platform(mode, seed=seed)
        session = _session_for(platform, "bench-guest")
        recorder = LatencyRecorder()
        for op in OPERATIONS:
            # Warm once so first-use effects (session setup) don't skew.
            session.run_operation(op)
            for rep in range(reps):
                with recorder.measure(op):
                    with obs_trace.span(
                        "experiment.op", op=op, mode=mode.value, rep=rep
                    ):
                        session.run_operation(op)
        results[mode.value] = recorder.summaries()
    return CommandLatencyResult(
        reps=reps, baseline=results["baseline"], improved=results["improved"]
    )


# ---------------------------------------------------------------------------
# E2 / Figure 1 — throughput vs number of concurrent VMs
# ---------------------------------------------------------------------------


@dataclass
class ThroughputPoint:
    vms: int
    mode: str
    ops: int
    elapsed_us: float

    @property
    def ops_per_sec(self) -> float:
        return self.ops / (self.elapsed_us / 1e6) if self.elapsed_us > 0 else 0.0


@dataclass
class ThroughputScalingResult:
    points: List[ThroughputPoint]

    def series(self, mode: str) -> List[ThroughputPoint]:
        return sorted(
            (p for p in self.points if p.mode == mode), key=lambda p: p.vms
        )

    def rows(self) -> List[tuple]:
        rows = []
        for b, i in zip(self.series("baseline"), self.series("improved")):
            slowdown = overhead_pct(i.ops_per_sec, b.ops_per_sec)
            rows.append(
                (b.vms, b.ops_per_sec, i.ops_per_sec, -overhead_pct(b.ops_per_sec, i.ops_per_sec))
            )
        return rows

    def render(self) -> str:
        return format_table(
            ["VMs", "baseline (cmds/s)", "improved (cmds/s)", "loss (%)"],
            self.rows(),
            title="Figure 1 — aggregate vTPM throughput vs concurrent VMs",
        )


def run_throughput_scaling(
    vm_counts: Sequence[int] = (1, 2, 4, 8, 16),
    ops_per_vm: int = 40,
    mix: CommandMix = MIX_MIXED,
    seed: int = 11,
) -> ThroughputScalingResult:
    """E2: round-robin a command mix across N guests through one manager.

    The manager serializes commands (single dispatch thread, as in the real
    daemon); the scheduler charges a context switch whenever the running
    guest changes, so more VMs pay more switching overhead in both regimes.
    """
    points: List[ThroughputPoint] = []
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        for vms in vm_counts:
            fresh_timing_context()
            platform = build_platform(mode, seed=seed + vms)
            sessions = [
                _session_for(platform, f"guest{i:02d}") for i in range(vms)
            ]
            from repro.crypto.random_source import RandomSource

            # Plans are mode-independent so both regimes run identical
            # command streams at every VM count.
            plans = [
                mix.sequence(
                    RandomSource(f"tput-plan-{seed}-{i}".encode()), ops_per_vm
                )
                for i in range(vms)
            ]
            clock = get_context().clock
            start = clock.now_us
            scheduler = platform.xen.scheduler
            total_ops = 0
            for round_idx in range(ops_per_vm):
                for vm_idx, session in enumerate(sessions):
                    run_start = clock.now_us
                    domid = session.guest.domain.domid
                    # The scheduler picks who runs; we then run that guest's
                    # next op.  With equal weights it degenerates to round
                    # robin, charging one context switch per guest change.
                    scheduler.pick_next()
                    session.run_operation(plans[vm_idx][round_idx])
                    scheduler.account(domid, clock.now_us - run_start)
                    total_ops += 1
            points.append(
                ThroughputPoint(
                    vms=vms,
                    mode=mode.value,
                    ops=total_ops,
                    elapsed_us=clock.now_us - start,
                )
            )
    return ThroughputScalingResult(points=points)


# ---------------------------------------------------------------------------
# E3 / Table 2 — attack matrix
# ---------------------------------------------------------------------------


@dataclass
class AttackMatrixResult:
    rows: List[tuple]  # (attack, baseline outcome, improved outcome)
    details: List  # AttackReport list, both regimes

    def render(self) -> str:
        return format_table(
            ["attack", "stock Xen vTPM", "improved"],
            self.rows,
            title="Table 2 — attack outcomes by regime",
        )

    def improvement_blocks_all(self) -> bool:
        return all(row[2] == "blocked" for row in self.rows)


def run_attack_matrix_experiment(seed: int = 42) -> AttackMatrixResult:
    """E3: the full attack matrix in both regimes."""
    from repro.attacks.scenarios import matrix_rows, run_attack_matrix

    fresh_timing_context()
    baseline = run_attack_matrix(AccessMode.BASELINE, seed=seed)
    improved = run_attack_matrix(AccessMode.IMPROVED, seed=seed)
    return AttackMatrixResult(
        rows=matrix_rows(baseline, improved), details=baseline + improved
    )


# ---------------------------------------------------------------------------
# E4 / Figure 2 — instance-creation latency vs population
# ---------------------------------------------------------------------------


@dataclass
class CreationLatencyResult:
    points: List[tuple]  # (existing instances, mode, creation ms)

    def rows(self) -> List[tuple]:
        by_count: Dict[int, Dict[str, float]] = {}
        for count, mode, ms in self.points:
            by_count.setdefault(count, {})[mode] = ms
        return [
            (count, values.get("baseline", 0.0), values.get("improved", 0.0))
            for count, values in sorted(by_count.items())
        ]

    def render(self) -> str:
        return format_table(
            ["existing instances", "baseline (ms)", "improved (ms)"],
            self.rows(),
            title="Figure 2 — vTPM instance creation latency vs population",
        )


def run_instance_creation(
    populations: Sequence[int] = (0, 1, 2, 4, 8, 16, 32),
    seed: int = 23,
) -> CreationLatencyResult:
    """E4: create instances up to each population, timing the last one."""
    points: List[tuple] = []
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        fresh_timing_context()
        platform = build_platform(mode, seed=seed)
        clock = get_context().clock
        created = 0
        for target in sorted(populations):
            while created < target:
                domain = platform.xen.create_domain(
                    f"fill{created:03d}", kernel_image=f"k{created}".encode()
                )
                if mode is AccessMode.IMPROVED:
                    platform.identities.register(domain)
                platform.manager.create_instance(domain)
                created += 1
            probe = platform.xen.create_domain(
                f"probe{target:03d}", kernel_image=f"probe{target}".encode()
            )
            if mode is AccessMode.IMPROVED:
                platform.identities.register(probe)
            start = clock.now_us
            instance = platform.manager.create_instance(probe)
            points.append((target, mode.value, (clock.now_us - start) / 1000.0))
            platform.manager.destroy_instance(instance.instance_id, persist=False)
    return CreationLatencyResult(points=points)


# ---------------------------------------------------------------------------
# E5 / Figure 3 — migration time vs state size
# ---------------------------------------------------------------------------


@dataclass
class MigrationResult:
    points: List[tuple]  # (state KiB, mode, migration ms)

    def rows(self) -> List[tuple]:
        by_size: Dict[float, Dict[str, float]] = {}
        for size_kib, mode, ms in self.points:
            by_size.setdefault(round(size_kib, 1), {})[mode] = ms
        return [
            (size, v.get("baseline", 0.0), v.get("improved", 0.0))
            for size, v in sorted(by_size.items())
        ]

    def render(self) -> str:
        return format_table(
            ["state (KiB)", "baseline (ms)", "improved (ms)"],
            self.rows(),
            title="Figure 3 — vTPM migration time vs instance state size",
        )


def run_migration_sweep(
    nv_payload_kib: Sequence[int] = (0, 8, 32, 128),
    seed: int = 31,
) -> MigrationResult:
    """E5: migrate instances of growing state size between two platforms."""
    from repro.tpm.nvram import NV_PER_AUTHWRITE

    points: List[tuple] = []
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        for payload_kib in nv_payload_kib:
            fresh_timing_context()
            source = build_platform(
                mode, seed=seed, name=f"src-{mode.value}-{payload_kib}",
                nv_capacity=max(2048, (payload_kib + 4) * 1024),
            )
            destination = build_platform(
                mode, seed=seed + 1, name=f"dst-{mode.value}-{payload_kib}",
            )
            guest = source.add_guest("migrant")
            session = GuestSession(guest, source.rng.fork("mig-session"))
            # Grow the state with NV payload.
            if payload_kib:
                from repro.workloads.mixes import OWNER_AUTH

                chunk_auth = b"migration-nv-auth!!!"
                guest.client.nv_define(
                    OWNER_AUTH, 0x3000, payload_kib * 1024, NV_PER_AUTHWRITE,
                    chunk_auth,
                )
                data = source.rng.fork("nv-data").bytes(payload_kib * 1024)
                guest.client.nv_write(chunk_auth, 0x3000, 0, data)
            instance = source.manager.instance(guest.instance_id)
            state_kib = len(instance.device.save_state_blob()) / 1024.0
            target_vm = destination.xen.create_domain(
                guest.domain.name,
                kernel_image=guest.domain.kernel_image,
                config=dict(guest.domain.config),
            )
            clock = get_context().clock
            start = clock.now_us
            if mode is AccessMode.IMPROVED:
                offer = destination.migration.prepare_target()
                package = source.migration.export_sealed(guest.domain.uuid, offer)
                destination.migration.import_sealed(package, target_vm)
            else:
                package = source.migration.export_plaintext(guest.domain.uuid)
                destination.migration.import_plaintext(package, target_vm)
            points.append((state_kib, mode.value, (clock.now_us - start) / 1000.0))
    return MigrationResult(points=points)


# ---------------------------------------------------------------------------
# E6 / Table 3 — policy-engine decision latency vs rule count
# ---------------------------------------------------------------------------


@dataclass
class PolicyScalingResult:
    rows: List[tuple]  # (rules, mean decision us, p95 us)

    def render(self) -> str:
        return format_table(
            ["rules installed", "mean decision (us)", "p95 (us)"],
            self.rows,
            title="Table 3 — policy decision latency vs policy size",
        )

    def is_flat(self, tolerance: float = 0.25) -> bool:
        """Decision cost at the largest policy within tolerance of smallest."""
        if len(self.rows) < 2:
            return True
        first, last = self.rows[0][1], self.rows[-1][1]
        return abs(last - first) <= tolerance * max(first, 1e-9)


def run_policy_scaling(
    rule_counts: Sequence[int] = (10, 100, 1_000, 10_000),
    lookups: int = 2_000,
    seed: int = 57,
) -> PolicyScalingResult:
    """E6: pure policy-engine microbenchmark."""
    from repro.crypto.random_source import RandomSource

    rows: List[tuple] = []
    for rules in rule_counts:
        fresh_timing_context()
        rng = RandomSource(seed + rules)
        engine = PolicyEngine()
        subjects = [rng.bytes(32).hex() for _ in range(max(4, rules // 4))]
        classes = [c for c in CommandClass if c is not CommandClass.UNKNOWN]
        installed = 0
        instance = 0
        while installed < rules:
            engine.add_rule(
                subjects[installed % len(subjects)],
                instance,
                classes[installed % len(classes)],
            )
            installed += 1
            if installed % len(classes) == 0:
                instance += 1
        from repro.tpm.constants import TPM_ORD_Extend, TPM_ORD_PcrRead, TPM_ORD_Sign

        ordinals = (TPM_ORD_Extend, TPM_ORD_PcrRead, TPM_ORD_Sign)
        clock = get_context().clock
        samples = []
        for i in range(lookups):
            subject = subjects[i % len(subjects)]
            start = clock.now_us
            engine.decide(subject, i % max(1, instance), ordinals[i % 3])
            samples.append(clock.now_us - start)
        summary = summarize(samples)
        rows.append((rules, summary.mean, summary.p95))
    return PolicyScalingResult(rows=rows)


# ---------------------------------------------------------------------------
# E7 / Figure 4 — application-level benchmark
# ---------------------------------------------------------------------------


@dataclass
class WebAppBenchResult:
    rows: List[tuple]  # (deployment, req/s, slowdown vs no-vtpm %)

    def render(self) -> str:
        return format_table(
            ["deployment", "requests/s", "slowdown vs no-vTPM (%)"],
            self.rows,
            title="Figure 4 — sealed-storage web server throughput",
        )


def run_webapp_benchmark(
    requests: int = 2_000, cache_hit_ratio: float = 0.9, seed: int = 71
) -> WebAppBenchResult:
    """E7: requests/s for no-vtpm vs baseline vTPM vs improved vTPM."""
    from repro.crypto.random_source import RandomSource
    from repro.workloads.webapp import SealedStorageWebApp

    results = []
    fresh_timing_context()
    app = SealedStorageWebApp(
        RandomSource(seed), None, "no-vtpm", cache_hit_ratio=cache_hit_ratio
    )
    results.append(app.serve(requests))
    for mode, label in (
        (AccessMode.BASELINE, "baseline"),
        (AccessMode.IMPROVED, "improved"),
    ):
        fresh_timing_context()
        platform = build_platform(mode, seed=seed)
        session = _session_for(platform, "webserver")
        app = SealedStorageWebApp(
            RandomSource(seed), session, label, cache_hit_ratio=cache_hit_ratio
        )
        results.append(app.serve(requests))
    reference = results[0].requests_per_sec
    rows = [
        (
            r.deployment,
            r.requests_per_sec,
            overhead_pct(r.requests_per_sec, reference) if r.deployment != "no-vtpm"
            else 0.0,
        )
        for r in results
    ]
    return WebAppBenchResult(rows=rows)


# ---------------------------------------------------------------------------
# E8 / Table 4 — ablation: cost of each access-control component
# ---------------------------------------------------------------------------


@dataclass
class AblationResult:
    rows: List[tuple]  # (configuration, mean cmd latency us, delta vs none us)
    breakdown: Dict[str, float]  # component op prefix -> total us (full config)

    def render(self) -> str:
        table = format_table(
            ["configuration", "mean command (us)", "added vs all-off (us)"],
            self.rows,
            title="Table 4 — ablation of access-control components",
        )
        breakdown_rows = [
            (op, cost) for op, cost in sorted(self.breakdown.items())
        ]
        table += "\n\n" + format_table(
            ["access-control op", "total cost (us)"],
            breakdown_rows,
            title="Cost breakdown inside the full configuration",
        )
        return table


# ---------------------------------------------------------------------------
# E10 / Figure 6 — manager crash-recovery time vs instance count (extension)
# ---------------------------------------------------------------------------


@dataclass
class RecoveryResult:
    points: List[tuple]  # (instances, mode, recovery ms)

    def rows(self) -> List[tuple]:
        by_count: Dict[int, Dict[str, float]] = {}
        for count, mode, ms in self.points:
            by_count.setdefault(count, {})[mode] = ms
        return [
            (count, v.get("baseline", 0.0), v.get("improved", 0.0))
            for count, v in sorted(by_count.items())
        ]

    def render(self) -> str:
        return format_table(
            ["instances", "baseline (ms)", "improved (ms)"],
            self.rows(),
            title="Figure 6 — manager crash-recovery time vs instance count",
        )


def run_recovery_sweep(
    instance_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 123,
) -> RecoveryResult:
    """E10: time a manager restart as the instance population grows.

    The improved path pays one hardware-TPM unseal to re-earn the sealer
    root, plus per-instance state decryption — both visible here; the
    per-instance slope is dominated by storage I/O in both regimes.
    """
    points: List[tuple] = []
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        for count in instance_counts:
            fresh_timing_context()
            platform = build_platform(
                mode, seed=seed, name=f"rec-{mode.value}-{count}"
            )
            for i in range(count):
                platform.add_guest(f"guest{i:02d}")
            clock = get_context().clock
            start = clock.now_us
            recovered = platform.restart_manager()
            assert recovered == count
            points.append((count, mode.value, (clock.now_us - start) / 1000.0))
    return RecoveryResult(points=points)


# ---------------------------------------------------------------------------
# E10b / Figure 6b — crash recovery under injected storage faults
# ---------------------------------------------------------------------------


@dataclass
class FaultedRecoveryResult:
    points: List[tuple]  # (instances, clean ms, faulted ms, faults, recoveries)

    def rows(self) -> List[tuple]:
        return list(self.points)

    def render(self) -> str:
        return format_table(
            ["instances", "clean (ms)", "faulted (ms)", "faults", "recoveries"],
            self.points,
            title=(
                "Figure 6b — crash recovery with injected storage faults "
                "(improved)"
            ),
        )


def run_faulted_recovery(
    instance_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 321,
) -> FaultedRecoveryResult:
    """E10b: recovery latency when the crash is *not* clean.

    Each faulted platform crashes hard mid-checkpoint: the newest state
    generation of one instance is torn on disk, and the recovery reads
    then hit transient corruption.  The restart must fall back a
    generation for the torn instance and re-read through the corruption
    — so the faulted column is the measured price of the crash-consistency
    machinery doing real work, next to a clean hard restart of the same
    population.
    """
    from repro.faults import (
        FaultInjector,
        FaultKind,
        FaultPlan,
        injector_scope,
        spec,
    )
    from repro.util.errors import FaultInjected

    def _populated(label: str, count: int) -> Platform:
        fresh_timing_context()
        platform = build_platform(
            AccessMode.IMPROVED, seed=seed, name=f"frec-{label}-{count}"
        )
        for i in range(count):
            platform.add_guest(f"guest{i:02d}")
        platform.manager.save_all()
        return platform

    points: List[tuple] = []
    for count in instance_counts:
        # Reference: a hard restart with intact state files.
        platform = _populated("clean", count)
        clock = get_context().clock
        start = clock.now_us
        assert platform.restart_manager(clean=False) == count
        clean_ms = (clock.now_us - start) / 1000.0

        # Faulted: the checkpoint preceding the crash dies mid-write...
        platform = _populated("fault", count)
        crash_plan = FaultPlan(
            name="crash-mid-save", seed=seed,
            specs=(spec(FaultKind.STORAGE_TORN_WRITE, at=(0,),
                        transient=False),),
        )
        with injector_scope(FaultInjector(crash_plan)):
            try:
                platform.manager.save_all()
            except FaultInjected:
                pass  # the manager is 'dead'; a torn generation is on disk
        # ...and the recovery reads hit transient corruption on top.
        recovery_plan = FaultPlan(
            name="recovery-chaos", seed=seed,
            specs=(spec(FaultKind.STORAGE_READ_CORRUPT, every=3),),
        )
        clock = get_context().clock
        start = clock.now_us
        with injector_scope(FaultInjector(recovery_plan)) as injector:
            assert platform.restart_manager(clean=False) == count
        faulted_ms = (clock.now_us - start) / 1000.0
        points.append(
            (
                count,
                clean_ms,
                faulted_ms,
                len(injector.events) + 1,  # corrupt reads + the torn write
                injector.recoveries + platform.storage.fallbacks,
            )
        )
    return FaultedRecoveryResult(points=points)


_ABLATION_COMPONENTS = ("identity_check", "policy_check", "audit")


def run_ablation(
    ops: int = 150, mix: CommandMix = MIX_MIXED, seed: int = 83
) -> AblationResult:
    """E8: per-command cost of each monitor component.

    Memory protection and sealed storage do not sit on the per-command path
    (they cost at creation/persistence time), so the per-command ablation
    covers the three monitor checks; the breakdown ledger shows where the
    full configuration's cycles go.
    """
    configs: List[tuple[str, AccessControlConfig]] = [
        ("all-off", AccessControlConfig.all_off())
    ]
    for component in _ABLATION_COMPONENTS:
        configs.append((f"only {component}", AccessControlConfig.all_off().with_only(component)))
    configs.append(
        ("full (cache off)", AccessControlConfig.all_on().without("authz_cache"))
    )
    configs.append(("full", AccessControlConfig.all_on()))

    from repro.crypto.random_source import RandomSource

    # One fixed plan for every configuration, so the only difference
    # between rows is the monitor components themselves.
    plan = mix.sequence(RandomSource(f"ablation-plan-{seed}".encode()), ops)
    means: List[tuple[str, float]] = []
    breakdown: Dict[str, float] = {}
    for label, config in configs:
        fresh_timing_context()
        platform = build_platform(
            AccessMode.IMPROVED, seed=seed, ac_config=config, name=f"abl-{label}"
        )
        session = _session_for(platform, "ablation-guest")
        clock = get_context().clock
        ledger = CostLedger(name=label)
        with ledger_scope(ledger):
            start = clock.now_us
            for op in plan:
                session.run_operation(op)
            elapsed = clock.now_us - start
        means.append((label, elapsed / ops))
        if label == "full":
            breakdown = {
                op: cost
                for op, cost in ledger.cost_by_op.items()
                if op.startswith("ac.")
            }
    base = means[0][1]
    rows = [(label, mean, mean - base) for label, mean in means]
    return AblationResult(rows=rows, breakdown=breakdown)


# ---------------------------------------------------------------------------
# E11 / Figure 7 — ring batching: virtual latency vs batch size and VM count
# ---------------------------------------------------------------------------


@dataclass
class BatchingResult:
    points: List[tuple]  # (vms, batch size, ops, elapsed us)

    def rows(self) -> List[tuple]:
        batch_sizes = sorted({p[1] for p in self.points})
        by_vms: Dict[int, Dict[int, float]] = {}
        for vms, batch, ops, elapsed_us in self.points:
            per_cmd = elapsed_us / ops if ops else 0.0
            by_vms.setdefault(vms, {})[batch] = per_cmd
        return [
            (vms, *(cols.get(b, 0.0) for b in batch_sizes))
            for vms, cols in sorted(by_vms.items())
        ]

    def render(self) -> str:
        batch_sizes = sorted({p[1] for p in self.points})
        return format_table(
            ["VMs"] + [f"batch={b} (us/cmd)" for b in batch_sizes],
            self.rows(),
            title="Figure 7 — per-command virtual latency vs ring batch size",
        )

    def speedup(self, vms: int) -> float:
        """Per-command latency ratio, smallest batch vs largest batch."""
        cols = {b: e / ops for v, b, ops, e in self.points if v == vms and ops}
        if not cols:
            return 1.0
        smallest, largest = min(cols), max(cols)
        return cols[smallest] / cols[largest] if cols[largest] else 1.0


def run_batching_sweep(
    batch_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    vm_counts: Sequence[int] = (1, 2, 4),
    commands_per_vm: int = 64,
    seed: int = 97,
) -> BatchingResult:
    """E11: amortization of per-notify costs via batched ring submissions.

    Every VM pushes the same read-only command stream; batch size N means
    the front-end packs N frames per event-channel kick, so the notify and
    manager-demux charges spread over N commands.  Authorization is still
    per-command (the monitor's decision cache keeps that cheap), so the
    curve flattens toward the irreducible per-command work.
    """
    from repro.harness.profiling import _pcr_read_wire

    points: List[tuple] = []
    wire = _pcr_read_wire()
    for vms in vm_counts:
        for batch in batch_sizes:
            fresh_timing_context()
            platform = build_platform(
                AccessMode.IMPROVED, seed=seed, name=f"batch-{vms}-{batch}"
            )
            guests = [platform.add_guest(f"guest{i:02d}") for i in range(vms)]
            clock = get_context().clock
            start = clock.now_us
            total_ops = 0
            for guest in guests:
                remaining = commands_per_vm
                while remaining > 0:
                    chunk = min(batch, remaining)
                    if chunk == 1:
                        guest.frontend.transport(wire)
                    else:
                        guest.frontend.transport_batch([wire] * chunk)
                    remaining -= chunk
                    total_ops += chunk
            points.append((vms, batch, total_ops, clock.now_us - start))
    return BatchingResult(points=points)
