"""Chaos workload: a seeded 1000-command run that survives injected faults.

This is the robustness counterpart of the performance experiments: two
platforms, two guests, a deterministic command mix, periodic checkpoints,
one live migration and one hard manager crash — all driven under a
:class:`~repro.faults.plan.FaultPlan` that stalls rings, drops kicks,
tears state writes, fills the disk, corrupts reads, fails the device and
interrupts the migration.  The claim the demo checks is *zero state
loss*: the PCR and NV contents of every guest after the chaotic run are
byte-identical to a fault-free run of the same seed, and the same seed
reproduces the identical fault sequence twice.
"""

from __future__ import annotations

import contextlib
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import AccessMode
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    injector_scope,
    spec,
    with_retry,
)
from repro.harness.builder import Platform, build_platform, fresh_timing_context
from repro.metrics.recorder import LatencyRecorder
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.sim.timing import get_context
from repro.tpm import marshal
from repro.tpm.client import TpmClient
from repro.tpm.constants import NUM_PCRS, TPM_ORD_PcrRead
from repro.tpm.nvram import NV_PER_AUTHWRITE
from repro.util.errors import ReproError
from repro.vtpm.migration import migrate_with_recovery

#: the demo's fixed shape: deterministic, and long enough that every fault
#: kind in the default plan gets its chance to fire
DEFAULT_COMMANDS = 1_000
CHECKPOINT_EVERY = 100
MIGRATE_AT = 400
CRASH_AT = 700

OWNER_AUTH = b"chaos-owner-auth!!!!"
NV_AUTH = b"chaos-nv-area-auth!!"
NV_INDEX = 0x1100
NV_SIZE = 64


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """Every fault kind the injector knows, tuned to the demo workload.

    Schedules are call-count based, so they are deterministic for a given
    workload regardless of the seed; the seed only drives probabilistic
    specs (of which this plan has none) — it is kept in the plan so the
    report names the full reproduction recipe.
    """
    return FaultPlan(
        name="default-chaos",
        seed=seed,
        specs=(
            # Ring path: periodic stalls plus a few lost kicks.
            spec(FaultKind.RING_STALL, every=97),
            spec(FaultKind.RING_DROP_NOTIFY, every=211, max_fires=3),
            # Device path: transient bus errors on virtual TPMs only, plus
            # one isolated wedge (cleared by the next retry attempt — a
            # *consecutive* wedge storm is the supervised demo's job).
            spec(FaultKind.DEVICE_TRANSIENT, every=53, match={"device": "vtpm*"}),
            spec(FaultKind.WEDGE, at=(10,), match={"device": "vtpm*"}),
            # Supervisor probe path: inert here (the site only exists under
            # supervision) but keeps the plan covering every kind.
            spec(FaultKind.FLAP, at=(0,)),
            # Storage path: torn checkpoint writes, one full disk, one
            # corrupt read during crash recovery.
            spec(FaultKind.STORAGE_TORN_WRITE, every=5),
            spec(FaultKind.STORAGE_ENOSPC, at=(7,)),
            spec(FaultKind.STORAGE_READ_CORRUPT, at=(0,)),
            # Migration path: first transfer lost on the wire, second one
            # reaches a destination that immediately crashes.
            spec(FaultKind.MIGRATION_NET_DROP, at=(0,)),
            spec(FaultKind.MIGRATION_DEST_CRASH, at=(0,)),
        ),
    )


@dataclass
class ChaosReport:
    """Everything one chaos run produced, for comparison and display."""

    seed: int
    commands: int
    plan_name: str
    digests: Dict[str, str]
    fault_counts: Dict[str, int]
    total_faults: int
    retries: int
    recoveries: int
    event_signature: Tuple[Tuple[str, str, int], ...]
    audit_fault_records: int
    metrics_counts: Dict[str, int]
    mean_recovery_us: float
    elapsed_virtual_us: float
    #: hex chain head of platform A's audit log — the tracing
    #: non-interference oracle compares this byte-for-byte
    audit_chain_hex: str = ""
    #: decisions double-checked by the piggyback conformance oracle
    #: (0 unless the run was started with ``conformance=True``)
    conformance_checks: int = 0

    def summary_lines(self) -> list[str]:
        lines = [
            f"plan={self.plan_name} seed={self.seed} commands={self.commands}",
            f"faults injected: {self.total_faults} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.fault_counts.items())) or 'none'})",
            f"retries={self.retries} recoveries={self.recoveries} "
            f"mean recovery latency={self.mean_recovery_us:.1f} us",
            f"audit fault records={self.audit_fault_records} "
            f"virtual time={self.elapsed_virtual_us / 1000.0:.2f} ms",
        ]
        for name, digest in sorted(self.digests.items()):
            lines.append(f"state[{name}] = {digest[:16]}…")
        return lines


def _direct_transport(manager, domid: int, instance_id: int):
    """A backend-equivalent transport for a migrated guest: same bounded
    retry on transient faults, same TPM_FAIL degradation on exhaustion."""

    def transport(wire: bytes) -> bytes:
        from repro.util.errors import RetryExhausted

        try:
            return with_retry(
                lambda: manager.handle_command(domid, instance_id, wire),
                site="vtpm.backend.forward",
            )
        except RetryExhausted as exc:
            return manager.fault_response(instance_id, exc)

    return transport


def _state_digest(instance) -> str:
    """PCR + NV digest of one instance — the 'no state loss' yardstick."""
    state = instance.device.state
    h = hashlib.sha256()
    for index in range(NUM_PCRS):
        h.update(state.pcrs.read(index))
    for area in sorted(state.nv.areas(), key=lambda a: a.index):
        h.update(struct.pack(">II", area.index, len(area.data)))
        h.update(area.data)
    return h.hexdigest()


def run_chaos_workload(
    seed: int = 2026,
    commands: int = DEFAULT_COMMANDS,
    plan: Optional[FaultPlan] = None,
    mode: AccessMode = AccessMode.IMPROVED,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
    conformance: bool = False,
) -> ChaosReport:
    """One full chaos run; ``plan=None`` means the fault-free control run.

    The workload script — command mix, checkpoint points, the migration
    at :data:`MIGRATE_AT`, the hard manager crash at :data:`CRASH_AT` —
    is identical with and without faults; only the injected chaos
    differs.  That is what makes the digest comparison meaningful.

    ``tracer``/``counters`` optionally observe the run: they are installed
    *after* the timing-context reset (a registry binds to the context it
    first records under), and the non-interference suite asserts they
    change no digest and no audit chain byte.

    ``conformance=True`` piggybacks the charge-free reference-model
    oracle (:mod:`repro.verify.oracle`) on every authorization decision
    and raises if the pipeline ever disagrees with it.
    """
    fresh_timing_context()
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracer_scope(tracer))
        if counters is not None:
            stack.enter_context(obs_counters.registry_scope(counters))
        return _run_chaos_workload(seed, commands, plan, mode, conformance)


def _run_chaos_workload(
    seed: int,
    commands: int,
    plan: Optional[FaultPlan],
    mode: AccessMode,
    conformance: bool = False,
) -> ChaosReport:
    platform_a = build_platform(mode, seed=seed, name="chaos-a")
    platform_b = build_platform(mode, seed=seed + 1, name="chaos-b")
    oracles = []
    if conformance:
        from repro.verify.oracle import attach_oracle

        oracles = [attach_oracle(platform_a), attach_oracle(platform_b)]

    # -- setup (outside the injector's reach) --------------------------------------
    anchor = platform_a.add_guest("anchor")
    mover = platform_a.add_guest("mover")
    for guest in (anchor, mover):
        ek = guest.client.read_pubek()
        guest.client.take_ownership(OWNER_AUTH, b"s" * 20, ek)
        guest.client.nv_define(
            OWNER_AUTH, NV_INDEX, NV_SIZE, NV_PER_AUTHWRITE, NV_AUTH
        )

    workload_rng = platform_a.rng.fork("chaos-workload")
    metrics = LatencyRecorder()
    injector = FaultInjector(
        plan if plan is not None else FaultPlan(name="fault-free", seed=seed),
        audit=platform_a.audit,
        metrics=metrics,
    )

    clients: Dict[str, TpmClient] = {
        "anchor": anchor.client,
        "mover": mover.client,
    }
    mover_home: Tuple[Platform, str] = (platform_a, mover.domain.uuid)
    start_us = get_context().clock.now_us

    with injector_scope(injector):
        for step in range(1, commands + 1):
            name = "anchor" if workload_rng.randint_below(2) == 0 else "mover"
            client = clients[name]
            op = workload_rng.randint_below(100)
            if op < 50:
                client.extend(workload_rng.randint_below(16),
                              workload_rng.bytes(20))
            elif op < 75:
                client.get_random(16)
            elif op < 90:
                client.pcr_read(workload_rng.randint_below(16))
            else:
                client.nv_write(NV_AUTH, NV_INDEX,
                                workload_rng.randint_below(NV_SIZE - 32),
                                workload_rng.bytes(32))

            if step % CHECKPOINT_EVERY == 0:
                platform_a.manager.save_all()

            if step == MIGRATE_AT:
                # Live-migrate 'mover' to platform B; the injector may cut
                # the wire or crash the destination — the driver recovers.
                handle = platform_a.guests.pop("mover")
                target_vm = platform_b.xen.create_domain(
                    handle.domain.name,
                    kernel_image=handle.domain.kernel_image,
                    config=dict(handle.domain.config),
                )
                instance = migrate_with_recovery(
                    platform_a.migration, platform_b.migration,
                    handle.domain.uuid, target_vm,
                    sealed=mode is AccessMode.IMPROVED,
                )
                handle.frontend.close()
                if mode is AccessMode.IMPROVED:
                    platform_a.identities.forget(handle.domain.domid)
                platform_a.xen.destroy_domain(handle.domain.domid)
                clients["mover"] = TpmClient(
                    _direct_transport(
                        platform_b.manager, target_vm.domid,
                        instance.instance_id,
                    ),
                    platform_b.rng.fork("chaos-mover"),
                )
                mover_home = (platform_b, target_vm.uuid)

            if step == CRASH_AT:
                # Hard manager crash right after a command burst: the new
                # daemon recovers the last committed checkpoint — with the
                # injector free to corrupt the recovery reads.
                platform_a.manager.save_all()
                platform_a.restart_manager(clean=False)

        digests = {
            "anchor": _state_digest(
                platform_a.manager.instance_for_vm(anchor.domain.uuid)
            ),
            "mover": _state_digest(
                mover_home[0].manager.instance_for_vm(mover_home[1])
            ),
        }

    conformance_checks = 0
    if oracles:
        from repro.verify.oracle import settle_oracles

        conformance_checks = settle_oracles(oracles)

    recovery = metrics.samples("fault.recovery")
    return ChaosReport(
        seed=seed,
        commands=commands,
        plan_name=injector.plan.name,
        digests=digests,
        fault_counts=dict(injector.fault_counts),
        total_faults=len(injector.events),
        retries=injector.retries,
        recoveries=injector.recoveries,
        event_signature=injector.event_signature(),
        audit_fault_records=sum(
            1 for r in platform_a.audit.records()
            if r.operation.startswith("FAULT")
        ),
        metrics_counts={
            name: len(metrics.samples(name)) for name in metrics.names()
        },
        mean_recovery_us=(sum(recovery) / len(recovery)) if recovery else 0.0,
        elapsed_virtual_us=get_context().clock.now_us - start_us,
        audit_chain_hex=platform_a.audit.chain_head().hex(),
        conformance_checks=conformance_checks,
    )


def run_chaos_demo(
    seed: int = 2026,
    commands: int = DEFAULT_COMMANDS,
    plan: Optional[FaultPlan] = None,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
) -> Dict[str, object]:
    """The acceptance demo: fault-free vs chaotic vs chaotic-again.

    Returns a result dict and raises :class:`AssertionError` if any of the
    three robustness claims fails — state loss, fault starvation, or
    non-determinism.  ``tracer``/``counters`` observe the *chaotic* run
    only; the determinism assertions then double as proof that observation
    changed nothing.
    """
    chaos_plan = plan if plan is not None else default_chaos_plan(seed)
    clean = run_chaos_workload(seed=seed, commands=commands, plan=None)
    chaotic = run_chaos_workload(
        seed=seed, commands=commands, plan=chaos_plan,
        tracer=tracer, counters=counters,
    )
    replay = run_chaos_workload(seed=seed, commands=commands, plan=chaos_plan)

    assert clean.total_faults == 0, "control run must be fault-free"
    assert len(chaotic.fault_counts) >= 4, (
        f"chaos plan only exercised {sorted(chaotic.fault_counts)}"
    )
    assert chaotic.digests == clean.digests, (
        "state loss: post-recovery PCR/NV diverged from the fault-free run"
    )
    assert chaotic.event_signature == replay.event_signature, (
        "non-determinism: same seed produced a different fault sequence"
    )
    assert chaotic.digests == replay.digests
    assert chaotic.audit_fault_records >= chaotic.total_faults
    return {
        "clean": clean,
        "chaotic": chaotic,
        "replay": replay,
        "state_preserved": True,
        "deterministic": True,
    }


# -- supervised chaos -----------------------------------------------------------------
#
# The resilience counterpart of the chaos demo above: one platform, three
# guests, a supervisor over every back-end.  A wedge storm drives the
# "victim" guest through the full quarantine → supervised-restart →
# re-attest → probe lifecycle (the first restart flaps on purpose), while
# the "bursty" guest floods the ring with oversized batches so admission
# control sheds on depth and deadline, and the "anchor" guest does normal
# state-changing work the whole time.  The oracles: zero silently dropped
# commands (every submitted frame gets exactly one well-formed response),
# every quarantined instance recovered-and-re-attested or explicitly
# failed, every guest's state digest byte-identical to the fault-free run,
# and breaker open/close sequences identical across same-seed runs.

SUPERVISED_COMMANDS = 600
#: global tpm.device.execute call index the wedge storm starts at
WEDGE_START = 40
#: a consecutive-wedge budget of 16 = four fully exhausted retry episodes
WEDGE_FIRES = 16
BURST_EVERY = 4
BURST_SIZE = 16


def supervised_chaos_plan(seed: int = 0) -> FaultPlan:
    """Wedge storm on the victim, one probe flap, background ring stalls.

    The wedge matches device ``vtpm2`` — the second guest added by
    :func:`run_supervised_chaos` — and fires on *every* matching call once
    the storm starts, which is what burns whole retry budgets and drives
    the health record into quarantine.  The restored instance gets a new
    device name, so recovery also ends the storm naturally.
    """
    return FaultPlan(
        name="supervised-chaos",
        seed=seed,
        specs=(
            spec(FaultKind.WEDGE, every=1, offset=WEDGE_START,
                 max_fires=WEDGE_FIRES, match={"device": "vtpm2"}),
            # The first supervised restart's health probe fails: the
            # instance flaps back to quarantine and restarts again.
            spec(FaultKind.FLAP, at=(0,)),
            spec(FaultKind.RING_STALL, every=131),
        ),
    )


@dataclass
class SupervisedChaosReport:
    """Everything one supervised chaos run produced."""

    seed: int
    commands: int
    plan_name: str
    digests: Dict[str, str]
    fault_counts: Dict[str, int]
    total_faults: int
    event_signature: Tuple[Tuple[str, str, int], ...]
    #: the zero-silent-drop ledger
    submitted: int
    answered: int
    malformed: int
    response_codes: Dict[int, int]
    #: per guest: shed counts by reason, admitted totals
    shed_counts: Dict[str, Dict[str, int]]
    admitted: Dict[str, int]
    #: per guest: the breaker's (state, virtual us) trail
    breaker_sequences: Dict[str, Tuple]
    health: Dict[str, Dict[str, object]]
    settled: bool
    elapsed_virtual_us: float
    audit_chain_hex: str = ""
    #: decisions double-checked by the piggyback conformance oracle
    conformance_checks: int = 0

    def summary_lines(self) -> list[str]:
        lines = [
            f"plan={self.plan_name} seed={self.seed} commands={self.commands}",
            f"faults injected: {self.total_faults} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.fault_counts.items())) or 'none'})",
            f"ledger: submitted={self.submitted} answered={self.answered} "
            f"malformed={self.malformed}",
            "response codes: "
            + (", ".join(f"{code:#x}={n}"
                         for code, n in sorted(self.response_codes.items()))
               or "none"),
        ]
        for guest in sorted(self.health):
            record = self.health[guest]
            shed = self.shed_counts.get(guest, {})
            lines.append(
                f"{guest}: state={record['state']} restarts={record['restarts']} "
                f"admitted={self.admitted.get(guest, 0)} "
                f"shed={sum(shed.values())}"
                + (f" ({', '.join(f'{k}={v}' for k, v in sorted(shed.items()))})"
                   if shed else "")
            )
        for name, digest in sorted(self.digests.items()):
            lines.append(f"state[{name}] = {digest[:16]}…")
        lines.append(f"settled={self.settled} "
                     f"virtual time={self.elapsed_virtual_us / 1000.0:.2f} ms")
        return lines


def _pcr_read_wire(index: int) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, index.to_bytes(4, "big"))


def run_supervised_chaos(
    seed: int = 2026,
    commands: int = SUPERVISED_COMMANDS,
    plan: Optional[FaultPlan] = None,
    mode: AccessMode = AccessMode.IMPROVED,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
    conformance: bool = False,
) -> SupervisedChaosReport:
    """One supervised chaos run; ``plan=None`` is the fault-free control."""
    fresh_timing_context()
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracer_scope(tracer))
        if counters is not None:
            stack.enter_context(obs_counters.registry_scope(counters))
        return _run_supervised_chaos(seed, commands, plan, mode, conformance)


def _run_supervised_chaos(
    seed: int,
    commands: int,
    plan: Optional[FaultPlan],
    mode: AccessMode,
    conformance: bool = False,
) -> SupervisedChaosReport:
    from repro.resilience import AdmissionConfig

    platform = build_platform(mode, seed=seed, name="supervised-chaos")
    oracles = []
    if conformance:
        from repro.verify.oracle import attach_oracle

        oracles = [attach_oracle(platform)]

    # -- setup (outside the injector's reach) --------------------------------------
    anchor = platform.add_guest("anchor")
    victim = platform.add_guest("victim")  # instance 2 — the wedge target
    bursty = platform.add_guest("bursty")
    for index in range(5):
        victim.client.extend(
            index, hashlib.sha1(f"victim-pcr-{index}".encode()).digest()
        )
    # The committed checkpoint every supervised restart restores from.
    platform.manager.save_all()

    supervisor = platform.enable_supervision(
        # A tight deadline budget so the bursty guest's oversized batches
        # shed on expected queueing delay as well as raw depth; single
        # frames (backlog 0) are never deadline-shed, so the anchor and
        # victim paths are unaffected.
        admission=AdmissionConfig(max_depth=8, deadline_us=150.0),
        # A short cooldown keeps the whole open → half-open → closed
        # breaker arc inside the run instead of parking it in drain().
        breaker_cooldown_us=2_000.0,
    )

    injector = FaultInjector(
        plan if plan is not None else FaultPlan(name="fault-free", seed=seed),
        audit=platform.audit,
    )
    workload_rng = platform.rng.fork("supervised-workload")

    submitted = 0
    answered = 0
    malformed = 0
    response_codes: Dict[int, int] = {}

    def note(response: bytes) -> None:
        nonlocal answered, malformed
        answered += 1
        try:
            code = marshal.parse_response(response).return_code
        except ReproError:
            malformed += 1
            return
        response_codes[code] = response_codes.get(code, 0) + 1

    start_us = get_context().clock.now_us
    with injector_scope(injector):
        for step in range(1, commands + 1):
            # The anchor does normal, state-changing trusted-computing work
            # throughout — its digest must not feel the chaos at all.
            op = workload_rng.randint_below(100)
            if op < 60:
                anchor.client.extend(
                    workload_rng.randint_below(NUM_PCRS),
                    workload_rng.bytes(20),
                )
            elif op < 85:
                anchor.client.pcr_read(workload_rng.randint_below(NUM_PCRS))
            else:
                anchor.client.get_random(16)

            # The victim drives one read per step, raw on the wire so shed
            # and degraded frames land in the ledger instead of raising.
            wire = _pcr_read_wire(step % NUM_PCRS)
            submitted += 1
            note(victim.frontend.transport(wire))

            # The bursty guest floods the ring with oversized batches.
            if step % BURST_EVERY == 0:
                burst = [
                    _pcr_read_wire((step + i) % NUM_PCRS)
                    for i in range(BURST_SIZE)
                ]
                submitted += len(burst)
                for response in bursty.frontend.transport_batch(burst):
                    note(response)

        # Settle: wait out cooldowns and probe until every breaker closes.
        supervisor.drain()

        digests = {
            name: _state_digest(
                platform.manager.instance_for_vm(handle.domain.uuid)
            )
            for name, handle in (
                ("anchor", anchor), ("victim", victim), ("bursty", bursty),
            )
        }

    conformance_checks = 0
    if oracles:
        from repro.verify.oracle import settle_oracles

        conformance_checks = settle_oracles(oracles)

    status = {entry["guest"]: entry for entry in supervisor.status()}
    return SupervisedChaosReport(
        seed=seed,
        commands=commands,
        plan_name=injector.plan.name,
        digests=digests,
        fault_counts=dict(injector.fault_counts),
        total_faults=len(injector.events),
        event_signature=injector.event_signature(),
        submitted=submitted,
        answered=answered,
        malformed=malformed,
        response_codes=dict(response_codes),
        shed_counts={g: dict(e["shed"]) for g, e in status.items()},
        admitted={g: e["admitted"] for g, e in status.items()},
        breaker_sequences={
            g: supervisor.breaker_for(e["vm"]).sequence()
            for g, e in status.items()
        },
        health=status,
        settled=supervisor.settled(),
        elapsed_virtual_us=get_context().clock.now_us - start_us,
        audit_chain_hex=platform.audit.chain_head().hex(),
        conformance_checks=conformance_checks,
    )


def run_supervised_chaos_demo(
    seed: int = 2026,
    commands: int = SUPERVISED_COMMANDS,
    plan: Optional[FaultPlan] = None,
) -> Dict[str, object]:
    """The supervised acceptance demo: fault-free vs chaotic vs replay.

    Raises :class:`AssertionError` if any resilience claim fails: a
    silently dropped command, a quarantined instance that neither
    recovered nor failed explicitly, chaos bleeding into unaffected
    guests' state, or a non-deterministic breaker schedule.
    """
    chaos_plan = plan if plan is not None else supervised_chaos_plan(seed)
    clean = run_supervised_chaos(seed=seed, commands=commands, plan=None)
    chaotic = run_supervised_chaos(seed=seed, commands=commands,
                                   plan=chaos_plan)
    replay = run_supervised_chaos(seed=seed, commands=commands,
                                  plan=chaos_plan)

    assert clean.total_faults == 0, "control run must be fault-free"
    assert chaotic.total_faults > 0, "chaos plan never fired"
    # Zero silent drops: every frame answered, every answer well-formed.
    for report in (clean, chaotic, replay):
        assert report.answered == report.submitted, (
            f"{report.plan_name}: {report.submitted - report.answered} "
            f"commands silently dropped"
        )
        assert report.malformed == 0, (
            f"{report.plan_name}: {report.malformed} malformed responses"
        )
    # Every quarantined instance was restored-and-re-attested (settled
    # healthy) or explicitly failed — never left in limbo.
    assert chaotic.settled, f"unsettled run: {chaotic.health}"
    assert any(
        record["restarts"] > 0 for record in chaotic.health.values()
    ), "the wedge storm never drove a supervised restart"
    # Chaos must not bleed into state: every guest's digest matches the
    # fault-free run (the victim's reads changed nothing after its
    # checkpoint, so even its restored state is byte-identical).
    assert chaotic.digests == clean.digests, (
        "state divergence from the fault-free run"
    )
    # Determinism: same seed, same fault sequence, same breaker schedule.
    assert chaotic.event_signature == replay.event_signature
    assert chaotic.breaker_sequences == replay.breaker_sequences
    assert chaotic.digests == replay.digests
    assert chaotic.shed_counts == replay.shed_counts
    return {
        "clean": clean,
        "chaotic": chaotic,
        "replay": replay,
        "zero_dropped": True,
        "deterministic": True,
    }
