"""Chaos workload: a seeded 1000-command run that survives injected faults.

This is the robustness counterpart of the performance experiments: two
platforms, two guests, a deterministic command mix, periodic checkpoints,
one live migration and one hard manager crash — all driven under a
:class:`~repro.faults.plan.FaultPlan` that stalls rings, drops kicks,
tears state writes, fills the disk, corrupts reads, fails the device and
interrupts the migration.  The claim the demo checks is *zero state
loss*: the PCR and NV contents of every guest after the chaotic run are
byte-identical to a fault-free run of the same seed, and the same seed
reproduces the identical fault sequence twice.
"""

from __future__ import annotations

import contextlib
import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.config import AccessMode
from repro.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    injector_scope,
    spec,
    with_retry,
)
from repro.harness.builder import Platform, build_platform, fresh_timing_context
from repro.metrics.recorder import LatencyRecorder
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.sim.timing import get_context
from repro.tpm.client import TpmClient
from repro.tpm.constants import NUM_PCRS
from repro.tpm.nvram import NV_PER_AUTHWRITE
from repro.vtpm.migration import migrate_with_recovery

#: the demo's fixed shape: deterministic, and long enough that every fault
#: kind in the default plan gets its chance to fire
DEFAULT_COMMANDS = 1_000
CHECKPOINT_EVERY = 100
MIGRATE_AT = 400
CRASH_AT = 700

OWNER_AUTH = b"chaos-owner-auth!!!!"
NV_AUTH = b"chaos-nv-area-auth!!"
NV_INDEX = 0x1100
NV_SIZE = 64


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """Every fault kind the injector knows, tuned to the demo workload.

    Schedules are call-count based, so they are deterministic for a given
    workload regardless of the seed; the seed only drives probabilistic
    specs (of which this plan has none) — it is kept in the plan so the
    report names the full reproduction recipe.
    """
    return FaultPlan(
        name="default-chaos",
        seed=seed,
        specs=(
            # Ring path: periodic stalls plus a few lost kicks.
            spec(FaultKind.RING_STALL, every=97),
            spec(FaultKind.RING_DROP_NOTIFY, every=211, max_fires=3),
            # Device path: transient bus errors on virtual TPMs only.
            spec(FaultKind.DEVICE_TRANSIENT, every=53, match={"device": "vtpm*"}),
            # Storage path: torn checkpoint writes, one full disk, one
            # corrupt read during crash recovery.
            spec(FaultKind.STORAGE_TORN_WRITE, every=5),
            spec(FaultKind.STORAGE_ENOSPC, at=(7,)),
            spec(FaultKind.STORAGE_READ_CORRUPT, at=(0,)),
            # Migration path: first transfer lost on the wire, second one
            # reaches a destination that immediately crashes.
            spec(FaultKind.MIGRATION_NET_DROP, at=(0,)),
            spec(FaultKind.MIGRATION_DEST_CRASH, at=(0,)),
        ),
    )


@dataclass
class ChaosReport:
    """Everything one chaos run produced, for comparison and display."""

    seed: int
    commands: int
    plan_name: str
    digests: Dict[str, str]
    fault_counts: Dict[str, int]
    total_faults: int
    retries: int
    recoveries: int
    event_signature: Tuple[Tuple[str, str, int], ...]
    audit_fault_records: int
    metrics_counts: Dict[str, int]
    mean_recovery_us: float
    elapsed_virtual_us: float
    #: hex chain head of platform A's audit log — the tracing
    #: non-interference oracle compares this byte-for-byte
    audit_chain_hex: str = ""

    def summary_lines(self) -> list[str]:
        lines = [
            f"plan={self.plan_name} seed={self.seed} commands={self.commands}",
            f"faults injected: {self.total_faults} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.fault_counts.items())) or 'none'})",
            f"retries={self.retries} recoveries={self.recoveries} "
            f"mean recovery latency={self.mean_recovery_us:.1f} us",
            f"audit fault records={self.audit_fault_records} "
            f"virtual time={self.elapsed_virtual_us / 1000.0:.2f} ms",
        ]
        for name, digest in sorted(self.digests.items()):
            lines.append(f"state[{name}] = {digest[:16]}…")
        return lines


def _direct_transport(manager, domid: int, instance_id: int):
    """A backend-equivalent transport for a migrated guest: same bounded
    retry on transient faults, same TPM_FAIL degradation on exhaustion."""

    def transport(wire: bytes) -> bytes:
        from repro.util.errors import RetryExhausted

        try:
            return with_retry(
                lambda: manager.handle_command(domid, instance_id, wire),
                site="vtpm.backend.forward",
            )
        except RetryExhausted as exc:
            return manager.fault_response(instance_id, exc)

    return transport


def _state_digest(instance) -> str:
    """PCR + NV digest of one instance — the 'no state loss' yardstick."""
    state = instance.device.state
    h = hashlib.sha256()
    for index in range(NUM_PCRS):
        h.update(state.pcrs.read(index))
    for area in sorted(state.nv.areas(), key=lambda a: a.index):
        h.update(struct.pack(">II", area.index, len(area.data)))
        h.update(area.data)
    return h.hexdigest()


def run_chaos_workload(
    seed: int = 2026,
    commands: int = DEFAULT_COMMANDS,
    plan: Optional[FaultPlan] = None,
    mode: AccessMode = AccessMode.IMPROVED,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
) -> ChaosReport:
    """One full chaos run; ``plan=None`` means the fault-free control run.

    The workload script — command mix, checkpoint points, the migration
    at :data:`MIGRATE_AT`, the hard manager crash at :data:`CRASH_AT` —
    is identical with and without faults; only the injected chaos
    differs.  That is what makes the digest comparison meaningful.

    ``tracer``/``counters`` optionally observe the run: they are installed
    *after* the timing-context reset (a registry binds to the context it
    first records under), and the non-interference suite asserts they
    change no digest and no audit chain byte.
    """
    fresh_timing_context()
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracer_scope(tracer))
        if counters is not None:
            stack.enter_context(obs_counters.registry_scope(counters))
        return _run_chaos_workload(seed, commands, plan, mode)


def _run_chaos_workload(
    seed: int,
    commands: int,
    plan: Optional[FaultPlan],
    mode: AccessMode,
) -> ChaosReport:
    platform_a = build_platform(mode, seed=seed, name="chaos-a")
    platform_b = build_platform(mode, seed=seed + 1, name="chaos-b")

    # -- setup (outside the injector's reach) --------------------------------------
    anchor = platform_a.add_guest("anchor")
    mover = platform_a.add_guest("mover")
    for guest in (anchor, mover):
        ek = guest.client.read_pubek()
        guest.client.take_ownership(OWNER_AUTH, b"s" * 20, ek)
        guest.client.nv_define(
            OWNER_AUTH, NV_INDEX, NV_SIZE, NV_PER_AUTHWRITE, NV_AUTH
        )

    workload_rng = platform_a.rng.fork("chaos-workload")
    metrics = LatencyRecorder()
    injector = FaultInjector(
        plan if plan is not None else FaultPlan(name="fault-free", seed=seed),
        audit=platform_a.audit,
        metrics=metrics,
    )

    clients: Dict[str, TpmClient] = {
        "anchor": anchor.client,
        "mover": mover.client,
    }
    mover_home: Tuple[Platform, str] = (platform_a, mover.domain.uuid)
    start_us = get_context().clock.now_us

    with injector_scope(injector):
        for step in range(1, commands + 1):
            name = "anchor" if workload_rng.randint_below(2) == 0 else "mover"
            client = clients[name]
            op = workload_rng.randint_below(100)
            if op < 50:
                client.extend(workload_rng.randint_below(16),
                              workload_rng.bytes(20))
            elif op < 75:
                client.get_random(16)
            elif op < 90:
                client.pcr_read(workload_rng.randint_below(16))
            else:
                client.nv_write(NV_AUTH, NV_INDEX,
                                workload_rng.randint_below(NV_SIZE - 32),
                                workload_rng.bytes(32))

            if step % CHECKPOINT_EVERY == 0:
                platform_a.manager.save_all()

            if step == MIGRATE_AT:
                # Live-migrate 'mover' to platform B; the injector may cut
                # the wire or crash the destination — the driver recovers.
                handle = platform_a.guests.pop("mover")
                target_vm = platform_b.xen.create_domain(
                    handle.domain.name,
                    kernel_image=handle.domain.kernel_image,
                    config=dict(handle.domain.config),
                )
                instance = migrate_with_recovery(
                    platform_a.migration, platform_b.migration,
                    handle.domain.uuid, target_vm,
                    sealed=mode is AccessMode.IMPROVED,
                )
                handle.frontend.close()
                if mode is AccessMode.IMPROVED:
                    platform_a.identities.forget(handle.domain.domid)
                platform_a.xen.destroy_domain(handle.domain.domid)
                clients["mover"] = TpmClient(
                    _direct_transport(
                        platform_b.manager, target_vm.domid,
                        instance.instance_id,
                    ),
                    platform_b.rng.fork("chaos-mover"),
                )
                mover_home = (platform_b, target_vm.uuid)

            if step == CRASH_AT:
                # Hard manager crash right after a command burst: the new
                # daemon recovers the last committed checkpoint — with the
                # injector free to corrupt the recovery reads.
                platform_a.manager.save_all()
                platform_a.restart_manager(clean=False)

        digests = {
            "anchor": _state_digest(
                platform_a.manager.instance_for_vm(anchor.domain.uuid)
            ),
            "mover": _state_digest(
                mover_home[0].manager.instance_for_vm(mover_home[1])
            ),
        }

    recovery = metrics.samples("fault.recovery")
    return ChaosReport(
        seed=seed,
        commands=commands,
        plan_name=injector.plan.name,
        digests=digests,
        fault_counts=dict(injector.fault_counts),
        total_faults=len(injector.events),
        retries=injector.retries,
        recoveries=injector.recoveries,
        event_signature=injector.event_signature(),
        audit_fault_records=sum(
            1 for r in platform_a.audit.records()
            if r.operation.startswith("FAULT")
        ),
        metrics_counts={
            name: len(metrics.samples(name)) for name in metrics.names()
        },
        mean_recovery_us=(sum(recovery) / len(recovery)) if recovery else 0.0,
        elapsed_virtual_us=get_context().clock.now_us - start_us,
        audit_chain_hex=platform_a.audit.chain_head().hex(),
    )


def run_chaos_demo(
    seed: int = 2026,
    commands: int = DEFAULT_COMMANDS,
    plan: Optional[FaultPlan] = None,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
) -> Dict[str, object]:
    """The acceptance demo: fault-free vs chaotic vs chaotic-again.

    Returns a result dict and raises :class:`AssertionError` if any of the
    three robustness claims fails — state loss, fault starvation, or
    non-determinism.  ``tracer``/``counters`` observe the *chaotic* run
    only; the determinism assertions then double as proof that observation
    changed nothing.
    """
    chaos_plan = plan if plan is not None else default_chaos_plan(seed)
    clean = run_chaos_workload(seed=seed, commands=commands, plan=None)
    chaotic = run_chaos_workload(
        seed=seed, commands=commands, plan=chaos_plan,
        tracer=tracer, counters=counters,
    )
    replay = run_chaos_workload(seed=seed, commands=commands, plan=chaos_plan)

    assert clean.total_faults == 0, "control run must be fault-free"
    assert len(chaotic.fault_counts) >= 4, (
        f"chaos plan only exercised {sorted(chaotic.fault_counts)}"
    )
    assert chaotic.digests == clean.digests, (
        "state loss: post-recovery PCR/NV diverged from the fault-free run"
    )
    assert chaotic.event_signature == replay.event_signature, (
        "non-determinism: same seed produced a different fault sequence"
    )
    assert chaotic.digests == replay.digests
    assert chaotic.audit_fault_records >= chaotic.total_faults
    return {
        "clean": clean,
        "chaotic": chaotic,
        "replay": replay,
        "state_preserved": True,
        "deterministic": True,
    }
