"""Experiment harness: platform assembly and the evaluation runners."""

from repro.harness.builder import (
    GuestHandle,
    Platform,
    build_platform,
    fresh_timing_context,
)
from repro.harness.experiments import (
    run_ablation,
    run_attack_matrix_experiment,
    run_command_latency,
    run_instance_creation,
    run_migration_sweep,
    run_policy_scaling,
    run_recovery_sweep,
    run_throughput_scaling,
    run_webapp_benchmark,
)
from repro.harness.loadtest import run_latency_under_load

__all__ = [
    "GuestHandle",
    "Platform",
    "build_platform",
    "fresh_timing_context",
    "run_ablation",
    "run_attack_matrix_experiment",
    "run_command_latency",
    "run_instance_creation",
    "run_migration_sweep",
    "run_policy_scaling",
    "run_recovery_sweep",
    "run_throughput_scaling",
    "run_webapp_benchmark",
    "run_latency_under_load",
]
