"""Wall-clock profiling of the full vTPM command pipeline.

Unlike everything else in the harness, this module measures *host* time:
it drives real command frames through the complete stack
(``frontend → ring → backend → manager → monitor → instance → executor``)
and reports how many commands per second the simulator itself sustains.
The deterministic virtual-time results are unaffected by host speed; this
rail exists so regressions in the harness's own hot path are caught (the
ROADMAP's "as fast as the hardware allows").

``benchmarks/bench_wallclock_pipeline.py`` and ``python -m repro profile``
are both thin wrappers around :func:`profile_pipeline`.
"""

from __future__ import annotations

import contextlib
import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import AccessMode
from repro.harness.builder import build_platform, fresh_timing_context
from repro.obs import trace as obs_trace
from repro.sim.timing import get_context
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_PcrRead, TPM_SUCCESS
from repro.util.bytesio import ByteWriter
from repro.util.errors import ReproError


def _pcr_read_wire(index: int = 10) -> bytes:
    """A well-formed TPM_PCRRead frame (unauthenticated, read-only)."""
    return marshal.build_command(TPM_ORD_PcrRead, ByteWriter().u32(index).getvalue())


@dataclass
class PipelineProfile:
    """One wall-clock measurement of the command pipeline."""

    mode: str
    commands: int
    batch_size: int
    wall_seconds: float
    virtual_us: float
    cache_hits: int
    cache_misses: int
    audit_records: int
    chain_ok: Optional[bool]

    @property
    def ops_per_sec(self) -> float:
        return self.commands / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def wall_us_per_cmd(self) -> float:
        return self.wall_seconds * 1e6 / self.commands if self.commands else 0.0

    @property
    def virtual_us_per_cmd(self) -> float:
        return self.virtual_us / self.commands if self.commands else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "commands": self.commands,
            "batch_size": self.batch_size,
            "wall_seconds": round(self.wall_seconds, 6),
            "ops_per_sec": round(self.ops_per_sec, 1),
            "wall_us_per_cmd": round(self.wall_us_per_cmd, 3),
            "virtual_us_per_cmd": round(self.virtual_us_per_cmd, 3),
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "audit_records": self.audit_records,
            "chain_ok": self.chain_ok,
        }

    def summary_lines(self) -> List[str]:
        return [
            f"mode={self.mode} batch={self.batch_size} commands={self.commands}",
            f"  wall-clock     : {self.wall_seconds:.3f} s "
            f"({self.ops_per_sec:,.0f} cmds/s, {self.wall_us_per_cmd:.1f} us/cmd)",
            f"  virtual time   : {self.virtual_us_per_cmd:.2f} us/cmd",
            f"  authz cache    : {self.cache_hits} hits / {self.cache_misses} "
            f"misses ({self.cache_hit_rate:.1%} hit rate)",
            f"  audit          : {self.audit_records} records, "
            f"chain_ok={self.chain_ok}",
        ]


def profile_pipeline(
    commands: int = 10_000,
    batch_size: int = 1,
    mode: AccessMode = AccessMode.IMPROVED,
    seed: int = 2010,
    verify_audit: bool = True,
    tracer: Optional["obs_trace.Tracer"] = None,
    supervised: bool = False,
) -> PipelineProfile:
    """Drive ``commands`` PCRRead frames through the full split-driver stack.

    ``batch_size`` > 1 uses the batched ring submission path (one
    event-channel kick per batch); 1 uses the classic one-frame protocol.
    ``tracer`` (if given) is installed for the timed loop only, so the
    measured ops/s includes span-collection overhead — that is how the
    pipeline benchmark records its traced-vs-untraced delta.
    ``supervised`` puts the back-end under the resilience supervisor, so
    the measured ops/s includes the health/breaker/admission hooks — the
    benchmark records that delta too (and asserts the hooks charge zero
    virtual time on the fault-free path).
    """
    if commands <= 0:
        raise ReproError(f"need a positive command count, got {commands}")
    fresh_timing_context()
    platform = build_platform(mode, seed=seed, name="profile")
    guest = platform.add_guest("bench-guest")
    if supervised:
        platform.enable_supervision()
    wire = _pcr_read_wire()
    # Sanity: the frame must round-trip successfully before we time anything.
    first = marshal.parse_response(guest.frontend.transport(wire))
    if first.return_code != TPM_SUCCESS:
        raise ReproError(
            f"pipeline warm-up failed with TPM code {first.return_code:#x}"
        )

    clock = get_context().clock
    virtual_start = clock.now_us
    scope = (
        obs_trace.tracer_scope(tracer)
        if tracer is not None
        else contextlib.nullcontext()
    )
    # A cycle collection landing inside one variant's timed loop but not
    # another's would skew the traced/supervised overhead ratios, so the
    # collector is paused (never triggered, still re-enabled) while the
    # clock runs.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        with scope:
            if batch_size <= 1:
                transport = guest.frontend.transport
                # repro: allow[virtual-time] -- wall-clock profiler measures host time by design
                start = time.perf_counter()
                for _ in range(commands):
                    transport(wire)
                # repro: allow[virtual-time] -- wall-clock profiler measures host time by design
                wall = time.perf_counter() - start
            else:
                transport_batch = getattr(
                    guest.frontend, "transport_batch", None
                )
                if transport_batch is None:
                    raise ReproError("this build has no batched transport")
                full, rest = divmod(commands, batch_size)
                batch = [wire] * batch_size
                tail = [wire] * rest
                # repro: allow[virtual-time] -- wall-clock profiler measures host time by design
                start = time.perf_counter()
                for _ in range(full):
                    transport_batch(batch)
                if tail:
                    transport_batch(tail)
                # repro: allow[virtual-time] -- wall-clock profiler measures host time by design
                wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    virtual_us = clock.now_us - virtual_start

    monitor = platform.monitor
    chain_ok: Optional[bool] = None
    if mode is AccessMode.IMPROVED and verify_audit:
        chain_ok = platform.audit.verify_chain()
    return PipelineProfile(
        mode=mode.value,
        commands=commands,
        batch_size=batch_size,
        wall_seconds=wall,
        virtual_us=virtual_us,
        cache_hits=getattr(monitor, "cache_hits", 0),
        cache_misses=getattr(monitor, "cache_misses", 0),
        audit_records=len(platform.audit),
        chain_ok=chain_ok,
    )
