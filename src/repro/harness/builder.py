"""Platform assembly: one call builds a whole machine, either regime.

A :class:`Platform` is a booted Xen machine with a hardware TPM, a vTPM
manager (baseline or improved), storage, and helpers to add guests with
attached vTPMs and ready-to-use TPM clients.  Every test, example and
benchmark builds platforms through here, so the two regimes differ in
exactly one switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.audit import AuditLog
from repro.core.config import AccessControlConfig, AccessMode
from repro.core.identity import IdentityRegistry
from repro.core.monitor import AccessControlMonitor, BaselineMonitor, Monitor
from repro.core.policy import PolicyEngine
from repro.core.protection import MemoryProtector
from repro.core.sealing import StateSealer
from repro.crypto.random_source import RandomSource
from repro.sim.clock import VirtualClock
from repro.sim.timing import CostModel, TimingContext, set_context
from repro.tpm.client import TpmClient
from repro.tpm.device import TpmDevice
from repro.util.errors import ReproError
from repro.vtpm.backend import VtpmBackend, attach_vtpm
from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.manager import VtpmManager
from repro.vtpm.migration import MigrationEndpoint
from repro.vtpm.storage import DiskStore, VtpmStorage
from repro.xen.domain import Domain
from repro.xen.hypercall import HypercallInterface
from repro.xen.hypervisor import DOM0_ID, Xen

#: key size used throughout simulations; virtual-time cost is billed at the
#: declared size class, so small real keys keep host time low without
#: touching results.
SIM_KEY_BITS = 512

OWNER_AUTH = b"platform-owner-auth!"  # 20 bytes
SRK_AUTH = b"platform-srk-auth!!!"    # 20 bytes


@dataclass
class GuestHandle:
    """Everything a test needs to drive one guest."""

    domain: Domain
    frontend: VtpmFrontend
    backend: VtpmBackend
    client: TpmClient
    instance_id: int


class Platform:
    """One machine: hypervisor + hardware TPM + vTPM subsystem."""

    def __init__(
        self,
        mode: AccessMode,
        seed: int = 2010,
        ac_config: Optional[AccessControlConfig] = None,
        key_bits: int = SIM_KEY_BITS,
        name: str = "platform",
        nv_capacity: Optional[int] = None,
        stub_manager: bool = False,
    ) -> None:
        self.mode = mode
        self.name = name
        self.rng = RandomSource(f"{name}-{seed}".encode())
        self.xen = Xen(self.rng.fork("xen"))
        self.stub_manager = stub_manager
        # Optionally host the manager in a dedicated unprivileged stub
        # domain (the TCB-reduction deployment) rather than Dom0.
        if stub_manager:
            self._manager_domain = self.xen.create_domain(
                "vtpm-stubdom", kernel_image=b"mini-os-vtpm-manager", pages=128
            )
            manager_domid = self._manager_domain.domid
        else:
            self._manager_domain = self.xen.dom0
            manager_domid = DOM0_ID
        self.ac_config = ac_config or (
            AccessControlConfig.all_on()
            if mode is AccessMode.IMPROVED
            else AccessControlConfig.all_off()
        )

        # -- hardware TPM, owned by the platform administrator ---------------
        self.hw_tpm = TpmDevice(self.rng.fork("hw-tpm"), key_bits=key_bits, name="hwtpm")
        self.hw_tpm.power_on()
        self.hw_client = TpmClient(self.hw_tpm.execute, self.rng.fork("hw-client"))
        ek_pub = self.hw_client.read_pubek()
        self.hw_client.take_ownership(OWNER_AUTH, SRK_AUTH, ek_pub)
        # Boot measurements into the hardware PCRs (BIOS/loader/dom0 chain).
        for index, stage in enumerate((b"bios", b"bootloader", b"xen+dom0")):
            import hashlib

            self.hw_client.extend(index, hashlib.sha1(stage).digest())

        # -- access-control plumbing ------------------------------------------
        self.identities = IdentityRegistry()
        self.policy = PolicyEngine()
        self.audit = AuditLog()
        self.disk = DiskStore()
        self.sealer: Optional[StateSealer] = None
        self.protector: Optional[MemoryProtector] = None
        monitor: Monitor
        if mode is AccessMode.IMPROVED:
            monitor = AccessControlMonitor(
                self.identities, self.policy, self.audit, self.ac_config
            )
            if self.ac_config.seal_storage:
                self.sealer = StateSealer(
                    self.hw_client, SRK_AUTH, self.rng.fork("sealer")
                )
                self.sealer.initialize(pcr_indices=(0, 1, 2))
            self.protector = MemoryProtector(
                self.xen.memory, enabled=self.ac_config.protect_memory
            )
        else:
            monitor = BaselineMonitor()
        self.monitor = monitor
        self.storage = VtpmStorage(self.disk, sealer=self.sealer)
        self.manager = VtpmManager(
            self.xen,
            manager_domid=manager_domid,
            storage=self.storage,
            monitor=monitor,
            mode=mode,
            identities=self.identities if mode is AccessMode.IMPROVED else None,
            protector=self.protector,
            key_bits=key_bits,
            nv_capacity=nv_capacity,
            rng=self.rng.fork("manager"),
        )
        self.migration = MigrationEndpoint(
            self.manager,
            self.rng.fork("migration"),
            hw_client=self.hw_client,
            srk_auth=SRK_AUTH,
        )
        # Deep-attestation certifier (improved mode): endorses vTPM keys
        # with a hardware-TPM AIK.
        self.certifier = None
        if mode is AccessMode.IMPROVED:
            from repro.core.certification import VtpmCertifier

            self.certifier = VtpmCertifier(
                self.hw_client, OWNER_AUTH, SRK_AUTH,
                aik_auth=b"certifier-aik-auth!!",
            )
        self.guests: Dict[str, GuestHandle] = {}
        self._key_bits = key_bits
        #: the resilience supervisor, installed by :meth:`enable_supervision`
        self.supervisor = None

    # -- supervision ---------------------------------------------------------------

    def enable_supervision(self, **kwargs):
        """Install a resilience supervisor over this platform's backends.

        Every already-attached guest is placed under supervision, as is
        every guest added afterwards.  ``kwargs`` are forwarded to
        :class:`~repro.resilience.supervisor.Supervisor` (thresholds,
        breaker tuning, admission budgets).  Returns the supervisor.
        """
        if self.supervisor is not None:
            raise ReproError(f"{self.name} is already supervised")
        from repro.resilience.supervisor import Supervisor

        self.supervisor = Supervisor(
            self.manager, self.rng.fork("supervisor"), **kwargs
        )
        self.monitor.health_gate = self.supervisor.gate
        self.monitor.health_index = self.supervisor.unhealthy_instances
        for handle in self.guests.values():
            self.supervisor.attach(handle.backend)
        return self.supervisor

    # -- guests ---------------------------------------------------------------------

    def add_guest(
        self,
        name: str,
        kernel_image: Optional[bytes] = None,
        config: Optional[Dict[str, str]] = None,
        profile=None,
    ) -> GuestHandle:
        """Create a guest domain with an attached vTPM and a TPM client.

        ``profile`` optionally narrows the policy grant (improved mode);
        see :mod:`repro.core.profiles`.
        """
        if name in self.guests:
            raise ReproError(f"guest {name!r} already exists on {self.name}")
        domain = self.xen.create_domain(
            name,
            kernel_image=kernel_image or f"linux-2.6.18-{name}".encode(),
            config=config or {"vtpm": "1"},
        )
        if self.mode is AccessMode.IMPROVED:
            self.identities.register(domain)
        frontend, backend = attach_vtpm(
            self.xen, self.manager, domain, profile=profile
        )
        client = TpmClient(frontend.transport, self.rng.fork(f"client-{name}"))
        handle = GuestHandle(
            domain=domain,
            frontend=frontend,
            backend=backend,
            client=client,
            instance_id=backend.instance_id,
        )
        self.guests[name] = handle
        if self.supervisor is not None:
            self.supervisor.attach(backend)
        return handle

    def remove_guest(self, name: str, persist_vtpm: bool = True) -> None:
        handle = self.guests.pop(name)
        handle.frontend.close()
        self.manager.destroy_instance(handle.instance_id, persist=persist_vtpm)
        if self.mode is AccessMode.IMPROVED:
            self.identities.forget(handle.domain.domid)
        self.xen.destroy_domain(handle.domain.domid)

    def audit_anchor(self):
        """Hardware-anchored audit checkpointing (improved mode, lazy)."""
        if self.mode is not AccessMode.IMPROVED:
            raise ReproError("audit anchoring needs the improved regime")
        if not hasattr(self, "_audit_anchor"):
            from repro.core.anchor import AuditAnchor

            self._audit_anchor = AuditAnchor(
                self.hw_client,
                OWNER_AUTH,
                area_auth=b"platform-anchor-a!!!",
                counter_auth=b"platform-anchor-c!!!",
            )
        return self._audit_anchor

    # -- hotplug path --------------------------------------------------------------

    def hotplug_agent(self):
        """The xend-style watch-driven device controller (created lazily)."""
        if not hasattr(self, "_hotplug_agent"):
            from repro.vtpm.hotplug import VtpmHotplugAgent

            self._hotplug_agent = VtpmHotplugAgent(self.xen, self.manager)
        return self._hotplug_agent

    def add_guest_hotplug(self, name: str,
                          kernel_image: Optional[bytes] = None) -> GuestHandle:
        """Add a guest whose vTPM connects via the XenStore watch protocol
        instead of the explicit attach path."""
        if name in self.guests:
            raise ReproError(f"guest {name!r} already exists on {self.name}")
        agent = self.hotplug_agent()
        domain = self.xen.create_domain(
            name,
            kernel_image=kernel_image or f"linux-2.6.18-{name}".encode(),
            config={"vtpm": "1"},
        )
        if self.mode is AccessMode.IMPROVED:
            self.identities.register(domain)
        frontend = VtpmFrontend(self.xen, domain, backend_domid=DOM0_ID)
        agent.register_frontend(frontend)
        backend = agent.backend_for(domain.domid)
        if backend is None:
            raise ReproError(f"hotplug agent failed to connect {name!r}")
        client = TpmClient(frontend.transport, self.rng.fork(f"client-{name}"))
        handle = GuestHandle(
            domain=domain,
            frontend=frontend,
            backend=backend,
            client=client,
            instance_id=backend.instance_id,
        )
        self.guests[name] = handle
        return handle

    # -- crash recovery ----------------------------------------------------------

    def restart_manager(self, clean: bool = True) -> int:
        """Simulate a vTPM-manager daemon crash and restart.

        Every instance's volatile object is lost; the new daemon reloads
        state from persistent storage (through the hardware-TPM-gated
        sealer in improved mode) and the back-ends reconnect.  Returns how
        many instances were recovered.

        ``clean=True`` models an orderly shutdown (state flushed first);
        ``clean=False`` models a hard crash — whatever the last successful
        save committed is what the restart recovers, which is exactly what
        the generation-stamped storage guarantees exists.

        Fails closed: if the sealer cannot unlock (platform PCRs moved),
        the restore raises and no plaintext state ever materialises.
        """
        if clean:
            self.manager.save_all()
        if self.sealer is not None:
            # The daemon's in-memory root dies with the process...
            self.sealer.lock()
            # ...and the replacement must re-earn it from the hardware TPM.
            self.sealer.unlock()
        old_instances = {
            name: handle.instance_id for name, handle in self.guests.items()
        }
        for handle in self.guests.values():
            self.manager.destroy_instance(handle.instance_id, persist=False)
        recovered = 0
        for name, handle in self.guests.items():
            instance = self.manager.restore_instance(handle.domain)
            handle.backend.rebind(instance.instance_id)
            handle.instance_id = instance.instance_id
            recovered += 1
        return recovered

    def dom0_hypercalls(self) -> HypercallInterface:
        return HypercallInterface(self.xen, DOM0_ID)

    def hypercalls_for(self, domid: int) -> HypercallInterface:
        return HypercallInterface(self.xen, domid)


def fresh_timing_context(cpu_scale: float = 1.0) -> TimingContext:
    """Install a fresh clock+model; returns the new context.

    Experiments call this first so measurements start at t=0 with no
    charges leaked from module import or previous runs.
    """
    ctx = TimingContext(model=CostModel(cpu_scale=cpu_scale), clock=VirtualClock())
    set_context(ctx)
    return ctx


def build_platform(
    mode: AccessMode,
    seed: int = 2010,
    ac_config: Optional[AccessControlConfig] = None,
    name: Optional[str] = None,
    nv_capacity: Optional[int] = None,
    stub_manager: bool = False,
) -> Platform:
    """The one-liner used by tests, examples and benchmarks."""
    return Platform(
        mode=mode,
        seed=seed,
        ac_config=ac_config,
        name=name or f"{mode.value}-platform",
        nv_capacity=nv_capacity,
        stub_manager=stub_manager,
    )
