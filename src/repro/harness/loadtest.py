"""Open-loop load experiment: command latency vs offered load.

Guests submit commands at Poisson arrival times from a synthetic trace
regardless of completion (open loop); the vTPM manager serves them through
a FIFO :class:`~repro.sim.engine.Resource`, exactly like the real daemon's
single dispatch thread.  As offered load approaches the manager's service
capacity, queueing delay dominates — the classic hockey-stick — and the
question is whether the access-control layer moves the knee.

This is Figure 5 of the reconstructed evaluation (an extension beyond the
core table set, exercising the event engine's process machinery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.config import AccessMode
from repro.harness.builder import build_platform, fresh_timing_context
from repro.metrics.stats import Summary, summarize
from repro.metrics.tables import format_table
from repro.obs import trace as obs_trace
from repro.sim.engine import Simulator
from repro.sim.timing import get_context
from repro.workloads.mixes import MIX_MEASUREMENT, CommandMix, GuestSession
from repro.workloads.traces import SyntheticTrace


@dataclass
class LoadPoint:
    mode: str
    offered_per_sec: float
    completed: int
    latency: Summary


@dataclass
class LatencyLoadResult:
    points: List[LoadPoint]

    def series(self, mode: str) -> List[LoadPoint]:
        return sorted(
            (p for p in self.points if p.mode == mode),
            key=lambda p: p.offered_per_sec,
        )

    def rows(self) -> List[tuple]:
        rows = []
        for b, i in zip(self.series("baseline"), self.series("improved")):
            rows.append(
                (
                    b.offered_per_sec,
                    b.latency.mean,
                    i.latency.mean,
                    b.latency.p95,
                    i.latency.p95,
                )
            )
        return rows

    def render(self) -> str:
        return format_table(
            [
                "offered (cmds/s)",
                "baseline mean (us)",
                "improved mean (us)",
                "baseline p95 (us)",
                "improved p95 (us)",
            ],
            self.rows(),
            title="Figure 5 — command latency vs offered load (open loop)",
        )


def run_latency_under_load(
    offered_rates: Sequence[float] = (5_000, 15_000, 25_000, 32_000),
    guests: int = 4,
    duration_s: float = 0.4,
    mix: CommandMix = MIX_MEASUREMENT,
    seed: int = 97,
) -> LatencyLoadResult:
    """Sweep offered load in both regimes; measure per-command sojourn time.

    Uses the discrete-event engine: one generator process per guest walks
    the trace, queueing on the manager resource; service time is the real
    virtual-time cost of executing the command through the monitored path.
    """
    from repro.crypto.random_source import RandomSource

    points: List[LoadPoint] = []
    for mode in (AccessMode.BASELINE, AccessMode.IMPROVED):
        for rate in offered_rates:
            fresh_timing_context()
            platform = build_platform(mode, seed=seed, name=f"load-{mode.value}-{rate}")
            sessions = [
                GuestSession(
                    platform.add_guest(f"g{i:02d}"),
                    platform.rng.fork(f"sess{i}"),
                )
                for i in range(guests)
            ]
            # Mode-independent trace so both regimes see identical arrivals.
            trace = SyntheticTrace.poisson(
                RandomSource(f"load-trace-{seed}-{rate}".encode()),
                guests=guests,
                rate_per_guest_per_sec=rate / guests,
                duration_s=duration_s,
                mix=mix,
            )
            by_guest: Dict[int, List] = {i: [] for i in range(guests)}
            for entry in trace:
                by_guest[entry.guest_index].append(entry)

            sim = Simulator(clock=get_context().clock)
            manager_thread = sim.resource("vtpm-managerd")
            latencies: List[float] = []

            def guest_proc(session: GuestSession, entries):
                clock = sim.clock
                epoch = clock.now_us
                for entry in entries:
                    target = epoch + entry.time_us
                    if target > clock.now_us:
                        yield target - clock.now_us
                    submitted = clock.now_us
                    yield manager_thread.acquire()
                    # Service: the command's real virtual-time cost accrues
                    # on the shared clock while we hold the manager.
                    with obs_trace.span(
                        "loadtest.op", op=entry.operation,
                        guest=entry.guest_index,
                    ):
                        session.run_operation(entry.operation)
                    manager_thread.release()
                    latencies.append(clock.now_us - submitted)

            for i, session in enumerate(sessions):
                sim.spawn(guest_proc(session, by_guest[i]), name=f"g{i}")
            sim.run()
            points.append(
                LoadPoint(
                    mode=mode.value,
                    offered_per_sec=rate,
                    completed=len(latencies),
                    latency=summarize(latencies),
                )
            )
    return LatencyLoadResult(points=points)
