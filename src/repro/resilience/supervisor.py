"""The supervisor: watchdog, breaker owner, and restart driver.

One :class:`Supervisor` oversees every supervised back-end on a platform.
Per guest it owns an :class:`~repro.resilience.health.InstanceHealth`
record, a :class:`~repro.resilience.breaker.CircuitBreaker` and an
:class:`~repro.resilience.admission.AdmissionController`; the back-end
feeds it outcome observations, the ring asks it for admission verdicts,
and the reference monitor consults its :meth:`gate` for the authoritative
degraded-mode ordinal gating.

**Supervised restart.**  When a record reaches ``quarantined`` the
supervisor immediately drives the recovery leg, inline and in virtual
time: best-effort state flush, teardown, restore through the manager's
crash-consistent :meth:`~repro.vtpm.manager.VtpmManager.restore_instance`
path, **re-attestation** of the restored instance against the guest's
measured launch identity, re-bind of the back-end (itself fail-closed),
and a health probe (``TPM_GetTestResult``).  Only a probed, re-attested
instance returns to ``healthy`` — and even then its breaker is forced
open so traffic re-earns the path through a cooldown and a half-open
probe.  A failed re-attestation, a failed restore, or an exhausted
restart budget moves the record to ``failed``, where every ordinal is
refused forever.

Every hook on the fault-free path is charge-free: supervision observes
the clock but never advances it unless a fault actually fired (the same
neutrality discipline tracing follows).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.policy import CommandClass
from repro.crypto.random_source import RandomSource
from repro.faults import FaultKind, fire, with_retry
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.health import (
    HealthState,
    HealthThresholds,
    InstanceHealth,
)
from repro.sim.timing import charge
from repro.tpm.constants import TPM_ORD_GetTestResult, TPM_FAIL, TPM_SUCCESS
from repro.tpm.marshal import build_command
from repro.util.errors import (
    IdentityError,
    ReproError,
    RetryExhausted,
    SupervisionError,
)

#: a command slower than this (virtual us) counts as a deadline miss —
#: far above any healthy single command, but a retry storm trips it
DEFAULT_COMMAND_DEADLINE_US = 100_000.0

#: the probe everyone agrees is harmless: TPM_GetTestResult (READ class,
#: serialization-neutral, no auth)
PROBE_WIRE = build_command(TPM_ORD_GetTestResult, b"")


def _return_code(response: bytes) -> int:
    return int.from_bytes(response[6:10], "big") if len(response) >= 10 else -1


class Supervisor:
    """Platform-wide resilience coordinator."""

    def __init__(
        self,
        manager,
        rng: RandomSource,
        thresholds: Optional[HealthThresholds] = None,
        admission: Optional[AdmissionConfig] = None,
        breaker_failure_threshold: int = 3,
        breaker_cooldown_us: float = 50_000.0,
        command_deadline_us: float = DEFAULT_COMMAND_DEADLINE_US,
    ) -> None:
        self.manager = manager
        self._rng = rng
        self.thresholds = thresholds or HealthThresholds()
        self.default_admission = admission or AdmissionConfig()
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_cooldown_us = breaker_cooldown_us
        self.command_deadline_us = command_deadline_us
        self._records: Dict[str, InstanceHealth] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._admission: Dict[str, AdmissionController] = {}
        self._backends: Dict[str, object] = {}
        self._by_instance: Dict[int, InstanceHealth] = {}
        #: instance id -> health record, for every record NOT currently
        #: healthy.  Shared with the access-control monitor
        #: (``Monitor.health_index``) so its per-command resilience check
        #: is one dict-membership test in the all-green steady state; the
        #: full :meth:`gate` walk runs only for instances listed here.
        #: Kept in sync by the ``InstanceHealth.on_transition`` observer.
        self.unhealthy_instances: Dict[int, InstanceHealth] = {}

    # -- wiring ------------------------------------------------------------------

    def attach(self, backend, admission: Optional[AdmissionConfig] = None) -> None:
        """Put one back-end under supervision (idempotent per guest)."""
        vm = backend.frontend.guest
        if vm.uuid in self._records:
            raise SupervisionError(f"guest {vm.name} is already supervised")
        record = InstanceHealth(
            vm_uuid=vm.uuid,
            instance_id=backend.instance_id,
            thresholds=self.thresholds,
        )
        self._records[vm.uuid] = record
        self._by_instance[backend.instance_id] = record
        record.on_transition = self._reindex_health
        self._breakers[vm.uuid] = CircuitBreaker(
            name=vm.name,
            rng=self._rng.fork(f"breaker-{vm.uuid}"),
            failure_threshold=self.breaker_failure_threshold,
            cooldown_us=self.breaker_cooldown_us,
        )
        self._admission[vm.uuid] = AdmissionController(
            vm.uuid, admission or self.default_admission
        )
        self._backends[vm.uuid] = backend
        # Cache the per-guest objects on the back-end: the admit and
        # observe hooks run once per frame, and resolving four dicts by
        # uuid there is measurable at bench rates.  The admission budgets
        # are per-instance constants (AdmissionConfig never mutates after
        # attach), so their values are flattened too.
        backend._sup_record = record
        backend._sup_breaker = self._breakers[vm.uuid]
        admission = self._admission[vm.uuid]
        backend._sup_admission = admission
        backend._sup_alpha = admission.config.ewma_alpha
        backend._sup_deadline_us = self.command_deadline_us
        backend._sup_admit_fast = (
            admission.config.max_depth > 0
            and admission.config.deadline_us >= 0.0
        )
        backend.attach_supervision(self)

    def _reindex_health(self, record: InstanceHealth) -> None:
        """Transition observer: keep :attr:`unhealthy_instances` exact."""
        if record.state is HealthState.HEALTHY:
            self.unhealthy_instances.pop(record.instance_id, None)
        else:
            self.unhealthy_instances[record.instance_id] = record

    def record_for(self, vm_uuid: str) -> InstanceHealth:
        return self._records[vm_uuid]

    def breaker_for(self, vm_uuid: str) -> CircuitBreaker:
        return self._breakers[vm_uuid]

    def admission_for(self, vm_uuid: str) -> AdmissionController:
        return self._admission[vm_uuid]

    # -- ring-side: admission ------------------------------------------------------

    def admit(self, backend, wires: List[bytes]) -> List[Optional[bytes]]:
        """Verdicts for one ring notify's frames (None = admitted)."""
        record = backend._sup_record
        if record is None:
            vm_uuid = backend.frontend.guest.uuid
            record = self._records.get(vm_uuid)
            if record is None:
                return [None] * len(wires)
            return self._admission[vm_uuid].verdicts(
                wires, record, self._breakers[vm_uuid]
            )
        admission = backend._sup_admission
        n = len(wires)
        if (
            record.state is HealthState.HEALTHY
            and backend._sup_breaker.state is BreakerState.CLOSED
            and n <= admission.config.max_depth
            and (n - 1) * admission.service_estimate_us
            <= admission.config.deadline_us
        ):
            # All-green fast path.  Under these conditions the verdict
            # loop admits every frame: the health gates pass, the backlog
            # never reaches the depth or deadline bound (frame k waits
            # k x estimate, maximal at k = n-1), and a closed breaker's
            # allow() returns True with zero side effects.  Bulk-admit
            # with identical state effects and skip the per-frame walk.
            if n:
                admission.fast_admit(n)
            return [None] * n
        return admission.verdicts(wires, record, backend._sup_breaker)

    def admit_one(self, backend, wire: bytes) -> Optional[bytes]:
        """Single-frame :meth:`admit` (the ring's unbatched path).

        A lone frame has backlog 0, so the depth and deadline bounds are
        trivially satisfied; all-green reduces to the health and breaker
        checks.
        """
        record = backend._sup_record
        if (
            backend._sup_admit_fast
            and record is not None
            and record.state is HealthState.HEALTHY
            and backend._sup_breaker.state is BreakerState.CLOSED
        ):
            admission = backend._sup_admission
            admission.admitted += 1
            admission._admitted_counter.inc()
            return None
        (verdict,) = self.admit(backend, [wire])
        return verdict

    # -- monitor-side: the authoritative ordinal gate ------------------------------

    def gate(self, instance_id: int, command_class: CommandClass
             ) -> Optional[str]:
        """Deny reason for (instance, class) under its health state, or None."""
        record = self._by_instance.get(instance_id)
        if record is None:
            return None
        state = record.state
        if state is HealthState.HEALTHY:
            return None
        if state is HealthState.FAILED:
            return f"instance {instance_id} is failed: all ordinals refused"
        if state is HealthState.QUARANTINED:
            return (
                f"instance {instance_id} is quarantined pending supervised "
                f"restart"
            )
        if (
            state in (HealthState.DEGRADED, HealthState.RESTARTING)
            and command_class is not CommandClass.READ
        ):
            return (
                f"instance {instance_id} is {state.value}: only read-only "
                f"ordinals admitted"
            )
        return None

    # -- backend-side: outcome observations ----------------------------------------

    def observe_response(
        self, backend, wire: bytes, response: bytes, elapsed_us: float
    ) -> None:
        """One forwarded command completed; update health and breaker.

        The breaker measures *responsiveness*: any answered frame except a
        degraded ``TPM_FAIL`` counts as breaker success (an auth denial
        still proves the instance alive).  Health is stricter: only
        ``TPM_SUCCESS`` inside the deadline feeds the recovery streak.
        """
        record = backend._sup_record
        if record is None:
            vm_uuid = backend.frontend.guest.uuid
            record = self._records.get(vm_uuid)
            if record is None:
                return
            admission = self._admission[vm_uuid]
            breaker = self._breakers[vm_uuid]
        else:
            admission = backend._sup_admission
            breaker = backend._sup_breaker
        # The EWMA always sees the observation, fast path or slow.
        admission.observe_service_us(elapsed_us)
        if (
            record.state is HealthState.HEALTHY
            and breaker.state is BreakerState.CLOSED
            and elapsed_us <= self.command_deadline_us
            and len(response) >= 10
            and response[6:10] == b"\x00\x00\x00\x00"
        ):
            # All-green fast path: a TPM_SUCCESS inside the deadline on a
            # healthy record with a closed breaker.  record_success() on a
            # closed breaker and note_success() on a healthy record reduce
            # to exactly these three assignments (no transition is
            # reachable), so the streaks stay byte-identical to the slow
            # path.
            breaker.consecutive_failures = 0
            record.consecutive_failures = 0
            record.consecutive_successes += 1
            return
        rc = _return_code(response)
        if rc == TPM_FAIL:
            record.note_failure("tpm-fail")
            breaker.record_failure()
        else:
            breaker.record_success()
            if elapsed_us > self.command_deadline_us:
                record.note_failure("deadline-miss")
            elif rc == TPM_SUCCESS:
                record.note_success()
        if record.state is HealthState.QUARANTINED:
            self._supervised_restart(backend)

    def on_exhausted(self, backend, exc: RetryExhausted) -> None:
        """A ``with_retry`` episode burned its whole budget."""
        vm_uuid = backend.frontend.guest.uuid
        record = self._records.get(vm_uuid)
        if record is None:
            return
        record.note_failure("retry-exhausted")
        self._breakers[vm_uuid].record_failure()
        if record.state is HealthState.QUARANTINED:
            self._supervised_restart(backend)

    def on_rebind(self, backend, new_instance_id: int) -> None:
        """The back-end was re-pointed (supervised restart or manager
        crash-recovery): key the health record to the new instance."""
        record = self._records.get(backend.frontend.guest.uuid)
        if record is None:
            return
        if self._by_instance.get(record.instance_id) is record:
            del self._by_instance[record.instance_id]
        if self.unhealthy_instances.pop(record.instance_id, None) is not None:
            self.unhealthy_instances[new_instance_id] = record
        record.instance_id = new_instance_id
        self._by_instance[new_instance_id] = record

    # -- the supervised restart leg -------------------------------------------------

    def _reattest(self, vm, restored) -> bool:
        """The restored instance must still belong to the measured identity."""
        if restored.bound_identity_hex is None or self.manager.identities is None:
            return True  # baseline regime: no identity to attest against
        try:
            identity = self.manager.identities.verify_current(vm)
        except IdentityError:
            return False
        return identity.hex == restored.bound_identity_hex

    def _run_probe(self, vm, instance_id: int) -> bool:
        """Health-probe one instance through the monitored command path."""
        with obs_trace.span("supervisor.probe", instance=instance_id):
            event = fire("vtpm.supervisor.probe", vm=vm.name,
                         instance=instance_id)
            if event is not None and event.kind is FaultKind.FLAP:
                obs_trace.span_event("probe_flap", instance=instance_id)
                return False
            try:
                response = with_retry(
                    self.manager.handle_command,
                    vm.domid, instance_id, PROBE_WIRE, 0,
                    site="vtpm.supervisor.probe",
                )
            except RetryExhausted:
                return False
            return _return_code(response) == TPM_SUCCESS

    def _supervised_restart(self, backend) -> None:
        """Drive ``quarantined → restarting → healthy|failed``, retrying
        flapped restarts until the budget runs out."""
        vm = backend.frontend.guest
        record = self._records[vm.uuid]
        breaker = self._breakers[vm.uuid]
        while record.state is HealthState.QUARANTINED:
            if record.restarts >= record.thresholds.max_restarts:
                record.transition(HealthState.FAILED,
                                  "restart-budget-exhausted")
                obs_counters.inc("resilience.restarts", outcome="failed",
                                 vm=vm.uuid)
                return
            record.restarts += 1
            record.transition(HealthState.RESTARTING,
                              f"supervised-restart-{record.restarts}")
            charge("supervisor.restart")
            with obs_trace.span("supervisor.restart", vm=vm.name,
                                attempt=record.restarts):
                try:
                    self.manager.save_instance(record.instance_id)
                except ReproError:
                    # A wedged flush loses nothing — restore uses the last
                    # committed, generation-stamped checkpoint — but the
                    # skipped checkpoint is counted so a restart that ran
                    # from stale state is visible in the exposition.
                    obs_counters.inc("resilience.checkpoint_skipped",
                                     vm=vm.uuid)
                self.manager.destroy_instance(record.instance_id,
                                              persist=False)
                try:
                    restored = self.manager.restore_instance(vm)
                except ReproError as exc:
                    record.transition(HealthState.FAILED,
                                      f"restore-failed: {exc}")
                    obs_counters.inc("resilience.restarts", outcome="failed",
                                     vm=vm.uuid)
                    return
                if not self._reattest(vm, restored):
                    record.transition(HealthState.FAILED,
                                      "re-attestation-failed")
                    obs_counters.inc("resilience.restarts", outcome="failed",
                                     vm=vm.uuid)
                    return
                backend.rebind(restored.instance_id)  # keys the record too
                if self._run_probe(vm, restored.instance_id):
                    record.transition(HealthState.HEALTHY, "restart-probe-ok")
                    record.consecutive_failures = 0
                    record.consecutive_successes = 0
                    # Traffic still re-earns the path: cooldown, then one
                    # half-open probe, then the breaker closes.
                    breaker.force_open()
                    obs_counters.inc("resilience.restarts",
                                     outcome="recovered", vm=vm.uuid)
                else:
                    record.transition(HealthState.QUARANTINED, "probe-flap")
                    obs_counters.inc("resilience.restarts", outcome="flap",
                                     vm=vm.uuid)

    # -- end-of-run settling ---------------------------------------------------------

    def drain(self, max_wait_us: float = 1_000_000.0) -> None:
        """Settle every guest: wait out cooldowns (charged as
        ``supervisor.wait``) and probe until each record is ``healthy``
        with a closed breaker, or terminally ``failed``.  Bounded by
        ``max_wait_us`` of waiting plus a probe-count safety cap."""
        budget = max_wait_us
        with obs_trace.span("supervisor.drain"):
            for vm_uuid, record in self._records.items():
                backend = self._backends[vm_uuid]
                breaker = self._breakers[vm_uuid]
                for _ in range(64):  # probe cap per guest
                    if record.terminal:
                        break
                    if record.state is HealthState.QUARANTINED:
                        self._supervised_restart(backend)
                        continue
                    if (
                        breaker.state is BreakerState.CLOSED
                        and record.state is HealthState.HEALTHY
                    ):
                        break
                    wait = breaker.remaining_cooldown_us()
                    if wait > 0.0:
                        if wait > budget:
                            break
                        charge("supervisor.wait", wait)
                        budget -= wait
                    # A real probe through the full forwarded path: its
                    # outcome feeds back via observe_response.
                    if breaker.state is BreakerState.OPEN:
                        breaker.allow()  # cooldown elapsed → half-open slot
                    backend._forward(PROBE_WIRE)

    # -- exposition -------------------------------------------------------------------

    def settled(self) -> bool:
        """True when every record is healthy-with-closed-breaker or failed."""
        for vm_uuid, record in self._records.items():
            if record.terminal:
                continue
            if record.state is not HealthState.HEALTHY:
                return False
            if self._breakers[vm_uuid].state is not BreakerState.CLOSED:
                return False
        return True

    def status(self) -> List[Dict[str, object]]:
        """One dict per supervised guest (CLI ``health`` exposition)."""
        out = []
        for vm_uuid, record in self._records.items():
            breaker = self._breakers[vm_uuid]
            admission = self._admission[vm_uuid]
            entry = record.describe()
            entry.update(
                {
                    "guest": self._backends[vm_uuid].frontend.guest.name,
                    "breaker": breaker.state.value,
                    "breaker_events": [
                        f"{state}@{t_us:.0f}us" for state, t_us in breaker.events
                    ],
                    "shed": dict(admission.shed_counts),
                    "admitted": admission.admitted,
                    "service_estimate_us": round(
                        admission.service_estimate_us, 2
                    ),
                }
            )
            out.append(entry)
        return out
