"""Per-guest circuit breaker over the back-end forwarding path.

A failing instance must stop consuming ring transfers, manager dispatch
and retry backoff for commands that are doomed anyway.  The breaker sits
in front of :meth:`VtpmBackend._forward`/:meth:`_forward_batch` (via the
supervisor's admission verdict): while **open**, commands are shed at the
ring with busy responses and never reach the manager.

States follow the classic pattern, scheduled entirely in virtual time:

* **closed** — traffic flows; consecutive hard failures are counted.
* **open** — entered after ``failure_threshold`` consecutive failures
  (or forced by a supervised restart).  A cooldown with bounded seeded
  jitter is drawn from the breaker's own forked DRBG, so N breakers
  opened by one fault storm re-probe at staggered, reproducible times.
* **half-open** — after the cooldown elapses, exactly one probe command
  is admitted; its success closes the breaker, its failure re-opens it
  with a fresh cooldown.

Every state change is appended to :attr:`events` with its virtual
timestamp — the chaos demo asserts two same-seed runs produce identical
sequences.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.crypto.random_source import RandomSource
from repro.obs import counters as obs_counters
from repro.sim.timing import get_context

#: consecutive hard failures that open a closed breaker
DEFAULT_FAILURE_THRESHOLD = 3
#: base cooldown before a half-open probe is allowed (virtual us)
DEFAULT_COOLDOWN_US = 50_000.0
#: cooldown jitter: up to this fraction added on top (never subtracted)
COOLDOWN_JITTER_FRAC = 0.5


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker, owned by the supervisor, keyed by guest."""

    def __init__(
        self,
        name: str,
        rng: RandomSource,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        cooldown_us: float = DEFAULT_COOLDOWN_US,
    ) -> None:
        self.name = name
        self._rng = rng
        self.failure_threshold = failure_threshold
        self.cooldown_us = cooldown_us
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_us = 0.0
        self.current_cooldown_us = 0.0
        self._probe_outstanding = False
        #: (state, virtual us) trail — the determinism oracle
        self.events: List[Tuple[str, float]] = []

    # -- internals -----------------------------------------------------------

    def _now_us(self) -> float:
        return get_context().clock.now_us

    def _enter(self, state: BreakerState) -> None:
        self.state = state
        self.events.append((state.value, self._now_us()))
        obs_counters.inc("resilience.breaker", breaker=self.name,
                         event=state.value)

    def _open(self) -> None:
        self.opened_at_us = self._now_us()
        # Seeded jitter staggers re-probes across breakers opened by the
        # same storm; drawn from this breaker's private DRBG stream, so
        # the schedule is reproducible per seed yet distinct per guest.
        self.current_cooldown_us = self.cooldown_us * (
            1.0 + self._rng.uniform(0.0, COOLDOWN_JITTER_FRAC)
        )
        self._probe_outstanding = False
        self._enter(BreakerState.OPEN)

    # -- the admission-side API ------------------------------------------------

    def allow(self) -> bool:
        """May one command pass right now?  (May move OPEN → HALF_OPEN.)"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self._now_us() - self.opened_at_us >= self.current_cooldown_us:
                self._enter(BreakerState.HALF_OPEN)
                self._probe_outstanding = True
                return True
            return False
        # HALF_OPEN: exactly one probe in flight at a time.
        if self._probe_outstanding:
            return False
        self._probe_outstanding = True
        return True

    def remaining_cooldown_us(self) -> float:
        """Virtual time until an open breaker will admit its probe."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(
            0.0,
            self.current_cooldown_us - (self._now_us() - self.opened_at_us),
        )

    # -- the outcome-side API ---------------------------------------------------

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self._probe_outstanding = False
            self._enter(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._open()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def force_open(self) -> None:
        """Supervisor override: a restarted instance re-earns traffic via
        a cooldown + probe, whatever the failure count said."""
        self._open()

    # -- oracles ------------------------------------------------------------------

    def sequence(self) -> Tuple[Tuple[str, float], ...]:
        """The full (state, virtual us) trail, for determinism asserts."""
        return tuple(self.events)
