"""Per-instance health state machine.

Every supervised vTPM instance carries one :class:`InstanceHealth` record.
The watchdog signals it observes are the three failure modes the pipeline
can already produce — a ``with_retry`` episode burning its whole budget, a
``TPM_FAIL`` degraded response, and a per-command deadline miss — plus
plain successes.  Consecutive failures walk the instance down
``healthy → degraded → quarantined``; the supervisor then drives the
``quarantined → restarting → healthy|failed`` leg (see
:mod:`repro.resilience.supervisor`).

The transition table is closed and enforced: any transition outside it
raises :class:`~repro.util.errors.SupervisionError`.  That strictness is
the security invariant the property tests lean on — a supervisor bug can
never silently route traffic to a half-recovered instance, because the
only paths back to ``healthy`` run through a completed, re-attested
restart or an observed success streak.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.obs import counters as obs_counters
from repro.util.errors import SupervisionError


class HealthState(enum.Enum):
    """Where an instance sits in its supervised lifecycle."""

    #: full service, every granted ordinal class admitted
    HEALTHY = "healthy"
    #: failure streak under way: only read-only ordinals admitted
    DEGRADED = "degraded"
    #: pulled from service; the supervisor owes it a restart
    QUARANTINED = "quarantined"
    #: torn down and restored; awaiting re-attestation + probe
    RESTARTING = "restarting"
    #: terminal: re-attestation or the restart budget failed — deny all
    FAILED = "failed"


#: the complete set of legal transitions; everything else is a bug
LEGAL_TRANSITIONS: FrozenSet[Tuple[HealthState, HealthState]] = frozenset(
    {
        (HealthState.HEALTHY, HealthState.DEGRADED),
        (HealthState.HEALTHY, HealthState.QUARANTINED),
        (HealthState.DEGRADED, HealthState.HEALTHY),
        (HealthState.DEGRADED, HealthState.QUARANTINED),
        (HealthState.QUARANTINED, HealthState.RESTARTING),
        (HealthState.QUARANTINED, HealthState.FAILED),
        (HealthState.RESTARTING, HealthState.HEALTHY),
        # a restart that flaps (probe failure) goes back to quarantine
        (HealthState.RESTARTING, HealthState.QUARANTINED),
        (HealthState.RESTARTING, HealthState.FAILED),
    }
)

#: watchdog failure signals (the ``kind`` argument of ``note_failure``)
FAILURE_KINDS = ("retry-exhausted", "tpm-fail", "deadline-miss")


@dataclass
class HealthThresholds:
    """How many consecutive observations drive each transition."""

    #: consecutive failures before ``healthy → degraded``
    degrade_after: int = 2
    #: consecutive failures before ``→ quarantined``
    quarantine_after: int = 4
    #: consecutive successes before ``degraded → healthy``
    recover_after: int = 6
    #: supervised restarts allowed before the instance is declared failed
    max_restarts: int = 3


@dataclass
class InstanceHealth:
    """The watchdog record for one supervised instance.

    ``instance_id`` tracks the *current* instance id — a supervised
    restart replaces the instance object (and id) while the health record,
    keyed by the owning VM, persists across it.
    """

    vm_uuid: str
    instance_id: int
    thresholds: HealthThresholds = field(default_factory=HealthThresholds)
    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    restarts: int = 0
    #: append-only transition trail: (from, to, cause) — the property
    #: tests audit it against LEGAL_TRANSITIONS
    history: List[Tuple[HealthState, HealthState, str]] = field(
        default_factory=list
    )
    failure_counts: Dict[str, int] = field(default_factory=dict)
    #: observer invoked after every state change — the supervisor uses it
    #: to keep its unhealthy-instance index in sync (see
    #: ``Supervisor.unhealthy_instances``)
    on_transition: Optional[Callable[["InstanceHealth"], None]] = field(
        default=None, repr=False, compare=False
    )

    # -- transitions ---------------------------------------------------------

    def transition(self, to: HealthState, cause: str) -> None:
        """Move to ``to``; illegal moves raise :class:`SupervisionError`."""
        frm = self.state
        if (frm, to) not in LEGAL_TRANSITIONS:
            raise SupervisionError(
                f"illegal health transition {frm.value} → {to.value} "
                f"for vm {self.vm_uuid} (cause: {cause})"
            )
        self.state = to
        self.history.append((frm, to, cause))
        obs_counters.inc("resilience.transitions", frm=frm.value, to=to.value)
        if self.on_transition is not None:
            self.on_transition(self)

    # -- watchdog signals -----------------------------------------------------

    def note_failure(self, kind: str) -> None:
        """One failure observation; may degrade or quarantine the instance.

        Signals arriving in terminal or supervisor-owned states are
        recorded but drive no transition — the supervisor owns those legs.
        """
        if kind not in FAILURE_KINDS:
            raise SupervisionError(f"unknown failure kind {kind!r}")
        self.failure_counts[kind] = self.failure_counts.get(kind, 0) + 1
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        t = self.thresholds
        if (
            self.state is HealthState.HEALTHY
            and self.consecutive_failures >= t.degrade_after
        ):
            self.transition(HealthState.DEGRADED, kind)
        if (
            self.state is HealthState.DEGRADED
            and self.consecutive_failures >= t.quarantine_after
        ):
            self.transition(HealthState.QUARANTINED, kind)

    def note_success(self) -> None:
        """One successful command; a streak heals a degraded instance."""
        self.consecutive_failures = 0
        self.consecutive_successes += 1
        if (
            self.state is HealthState.DEGRADED
            and self.consecutive_successes >= self.thresholds.recover_after
        ):
            self.transition(HealthState.HEALTHY, "success-streak")

    # -- queries --------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state is HealthState.FAILED

    def describe(self) -> Dict[str, object]:
        return {
            "vm": self.vm_uuid,
            "instance": self.instance_id,
            "state": self.state.value,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "failure_counts": dict(self.failure_counts),
            "transitions": [
                f"{frm.value}->{to.value}[{cause}]"
                for frm, to, cause in self.history
            ],
        }
