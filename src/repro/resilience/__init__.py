"""Resilience: supervised instance lifecycle for the vTPM subsystem.

The paper's monitor decides *who may talk to which instance*; this layer
decides *whether an instance is fit to be talked to at all*, and fails
closed when it is not:

* :mod:`repro.resilience.health` — per-instance health state machine
  (``healthy → degraded → quarantined → restarting → healthy|failed``)
  with a closed, enforced transition table;
* :mod:`repro.resilience.breaker` — per-guest circuit breaker with
  seeded deterministic probe scheduling;
* :mod:`repro.resilience.admission` — bounded queues, deadline
  propagation and deterministic load shedding at the ring;
* :mod:`repro.resilience.supervisor` — the coordinator that quarantines,
  restarts through the crash-consistent path, re-attests against the
  measured identity, and only then lets traffic back in.

Everything is charge-free on the fault-free path and fully deterministic
under a seed — the same discipline as fault injection and tracing.
"""

from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    SHED_REASONS,
)
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.health import (
    FAILURE_KINDS,
    HealthState,
    HealthThresholds,
    InstanceHealth,
    LEGAL_TRANSITIONS,
)
from repro.resilience.supervisor import PROBE_WIRE, Supervisor

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerState",
    "CircuitBreaker",
    "FAILURE_KINDS",
    "HealthState",
    "HealthThresholds",
    "InstanceHealth",
    "LEGAL_TRANSITIONS",
    "PROBE_WIRE",
    "SHED_REASONS",
    "Supervisor",
]
