"""Admission control: bounded queues, deadline propagation, load shedding.

The ring consults the supervisor *before* forwarding frames (see
``TpmRing.set_admission``).  Each frame gets a verdict: ``None`` admits
it; a pre-built response frame sheds it.  Shedding is deterministic and
always answered — a shed command receives exactly one well-formed
``TPM_RESOURCES`` busy frame (``TPM_FAIL`` for a terminally failed
instance), never a silent drop, so the front-end's driver can back off
and retry like it would against a busy hardware part.

The queue model: frames admitted from one ring notify form the
instance's backlog.  Position ``k`` in the backlog expects to wait
``k × service_estimate_us`` — an EWMA over observed per-command virtual
latencies — and a frame whose expected wait exceeds the instance's
deadline budget is shed (*deadline propagation*: the shed happens at
admission, before the frame consumes manager capacity).  Depth is bounded
independently, so a flood of cheap commands still cannot grow the backlog
without limit.

Degradation matrix (enforced here for the fast path and again inside the
reference monitor as the authoritative gate):

============  =======================================================
health state  admitted ordinal classes
============  =======================================================
healthy       all granted classes
degraded      READ only (status / PCR-read class); rest shed busy
restarting    READ only (lets the supervisor's probes through)
quarantined   none (shed busy)
failed        none (refused with ``TPM_FAIL``)
============  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.policy import CommandClass, classify_ordinal
from repro.obs import counters as obs_counters
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.health import HealthState, InstanceHealth
from repro.tpm.constants import TPM_FAIL, TPM_RESOURCES
from repro.tpm.marshal import build_response

#: shed reasons, in the order they are checked
SHED_REASONS = ("failed", "quarantined", "breaker", "degraded", "depth",
                "deadline")


@dataclass
class AdmissionConfig:
    """Per-instance queue budgets."""

    #: most frames admitted from one ring notify
    max_depth: int = 8
    #: a frame expecting to queue longer than this is shed (virtual us)
    deadline_us: float = 20_000.0
    #: starting per-command service estimate (virtual us)
    service_estimate_us: float = 30.0
    #: EWMA weight for new observations (0 freezes the estimate)
    ewma_alpha: float = 0.2


def _ordinal_of(wire: bytes) -> int:
    return int.from_bytes(wire[6:10], "big") if len(wire) >= 10 else -1


class AdmissionController:
    """Computes shed-or-admit verdicts for one instance's frames."""

    def __init__(self, vm_uuid: str, config: Optional[AdmissionConfig] = None
                 ) -> None:
        self.vm_uuid = vm_uuid
        self.config = config or AdmissionConfig()
        self.service_estimate_us = self.config.service_estimate_us
        self.admitted = 0
        self.shed_counts: dict = {}
        #: pre-resolved handle for the hot admitted counter (one per vm)
        self._admitted_counter = obs_counters.counter(
            "resilience.admitted", vm=vm_uuid
        )

    def fast_admit(self, count: int) -> None:
        """Bulk-admit ``count`` frames (the supervisor's all-green fast
        path); state effects identical to :meth:`verdicts` admitting every
        frame of the batch."""
        self.admitted += count
        self._admitted_counter.add(count)

    # -- feedback ----------------------------------------------------------------

    def observe_service_us(self, elapsed_us: float) -> None:
        """Feed one observed per-command latency into the EWMA."""
        alpha = self.config.ewma_alpha
        if alpha > 0.0:
            self.service_estimate_us += alpha * (
                elapsed_us - self.service_estimate_us
            )

    # -- the verdict --------------------------------------------------------------

    def _shed(self, reason: str, return_code: int) -> bytes:
        self.shed_counts[reason] = self.shed_counts.get(reason, 0) + 1
        obs_counters.inc("resilience.shed", reason=reason, vm=self.vm_uuid)
        return build_response(return_code)

    def verdicts(
        self,
        wires: List[bytes],
        health: InstanceHealth,
        breaker: CircuitBreaker,
    ) -> List[Optional[bytes]]:
        """One verdict per frame, in submission order.

        ``None`` = admitted; otherwise the response frame to return in the
        admitted frames' stead.  The backlog position used for deadline
        propagation counts only frames admitted *from this batch* — the
        split driver is synchronous, so the previous notify's backlog has
        fully drained by the time the next one arrives.
        """
        out: List[Optional[bytes]] = []
        cfg = self.config
        backlog = 0
        for wire in wires:
            state = health.state
            if state is HealthState.FAILED:
                out.append(self._shed("failed", TPM_FAIL))
                continue
            if state is HealthState.QUARANTINED:
                out.append(self._shed("quarantined", TPM_RESOURCES))
                continue
            if state in (HealthState.DEGRADED, HealthState.RESTARTING):
                cls = classify_ordinal(_ordinal_of(wire))
                if cls is not CommandClass.READ:
                    out.append(self._shed("degraded", TPM_RESOURCES))
                    continue
            if backlog >= cfg.max_depth:
                out.append(self._shed("depth", TPM_RESOURCES))
                continue
            if backlog * self.service_estimate_us > cfg.deadline_us:
                out.append(self._shed("deadline", TPM_RESOURCES))
                continue
            # The breaker check is last: allow() may consume the single
            # half-open probe slot, so a frame it admits must actually run.
            if not breaker.allow():
                out.append(self._shed("breaker", TPM_RESOURCES))
                continue
            backlog += 1
            self.admitted += 1
            out.append(None)
        if backlog:
            self._admitted_counter.add(backlog)
        return out
