"""vTPM live migration between platforms.

The stock protocol ships the instance state to the destination manager in
plaintext — anyone on the migration path reads the guest's EK/SRK.  The
improved protocol:

1. destination mints a single-use **bind key in its hardware TPM** and a
   fresh anti-replay nonce (the *offer*);
2. source encrypts a random session key to that bind key, encrypts the
   state under the session key (authenticated), and echoes the nonce;
3. destination recovers the session key via ``TPM_UnBind`` — i.e. only
   the real destination hardware TPM can open the package — verifies the
   nonce (one shot) and the owning identity, then instantiates.

Both paths charge network time per byte so Figure 3 compares like with
like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.sim.timing import charge
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KEY_BIND, TPM_KH_SRK
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import MigrationError
from repro.vtpm.manager import VtpmManager
from repro.xen.domain import Domain

NONCE_SIZE = 20
SESSION_KEY_SIZE = 32

MAGIC_PLAIN = b"VTPMMIG0"
MAGIC_SEALED = b"VTPMMIG1"


@dataclass
class MigrationOffer:
    """Destination's single-use landing pad."""

    offer_id: int
    bind_public: RsaPublicKey
    nonce: bytes
    bind_key_handle: int
    bind_key_auth: bytes


@dataclass
class MigrationPackage:
    """What actually crosses the wire (and what an interceptor captures)."""

    payload: bytes  # fully serialized, self-describing

    def __len__(self) -> int:
        return len(self.payload)


class MigrationEndpoint:
    """Migration logic bolted onto one platform's vTPM manager."""

    def __init__(
        self,
        manager: VtpmManager,
        rng: RandomSource,
        hw_client: Optional[TpmClient] = None,
        srk_auth: Optional[bytes] = None,
    ) -> None:
        self.manager = manager
        self._rng = rng
        self._hw = hw_client
        self._srk_auth = srk_auth
        self._offers: Dict[int, MigrationOffer] = {}
        self._next_offer = 1
        self._seen_nonces: set[bytes] = set()

    # -- destination side -----------------------------------------------------------

    def prepare_target(self, key_bits: int = 512) -> MigrationOffer:
        """Mint a hardware-TPM bind key + nonce for one incoming migration."""
        if self._hw is None or self._srk_auth is None:
            raise MigrationError("improved migration needs a hardware TPM client")
        bind_auth = self._rng.bytes(20)
        blob = self._hw.create_wrap_key(
            TPM_KH_SRK, self._srk_auth, bind_auth, TPM_KEY_BIND, key_bits
        )
        handle = self._hw.load_key2(TPM_KH_SRK, self._srk_auth, blob)
        public = self._hw.get_pub_key(handle, bind_auth)
        offer = MigrationOffer(
            offer_id=self._next_offer,
            bind_public=public,
            nonce=self._rng.bytes(NONCE_SIZE),
            bind_key_handle=handle,
            bind_key_auth=bind_auth,
        )
        self._next_offer += 1
        self._offers[offer.offer_id] = offer
        return offer

    # -- source side -------------------------------------------------------------------

    def export_plaintext(self, vm_uuid: str) -> MigrationPackage:
        """Stock protocol: raw state on the wire."""
        instance = self.manager.instance_for_vm(vm_uuid)
        state = instance.device.save_state_blob()
        w = ByteWriter()
        w.raw(MAGIC_PLAIN)
        w.sized(vm_uuid.encode("utf-8"))
        w.sized(state)
        payload = w.getvalue()
        charge("vtpm.migration.net", len(payload))
        self.manager.destroy_instance(instance.instance_id, persist=False)
        return MigrationPackage(payload=payload)

    def export_sealed(self, vm_uuid: str, offer: MigrationOffer) -> MigrationPackage:
        """Improved protocol: session key bound to the destination TPM."""
        instance = self.manager.instance_for_vm(vm_uuid)
        state = instance.device.save_state_blob()
        session_key = self._rng.bytes(SESSION_KEY_SIZE)
        enc_session = offer.bind_public.encrypt(session_key, self._rng)
        enc_state = SymmetricKey(session_key).encrypt(state, self._rng)
        w = ByteWriter()
        w.raw(MAGIC_SEALED)
        w.u32(offer.offer_id)
        w.raw(offer.nonce)
        w.sized(vm_uuid.encode("utf-8"))
        w.sized((instance.bound_identity_hex or "").encode("ascii"))
        w.sized(enc_session)
        w.sized(enc_state.serialize())
        payload = w.getvalue()
        charge("vtpm.migration.net", len(payload))
        self.manager.destroy_instance(instance.instance_id, persist=False)
        return MigrationPackage(payload=payload)

    # -- destination import ----------------------------------------------------------------

    def import_plaintext(self, package: MigrationPackage, target_vm: Domain):
        """Accept a stock-protocol package."""
        r = ByteReader(package.payload)
        if r.raw(8) != MAGIC_PLAIN:
            raise MigrationError("not a plaintext migration package")
        r.sized(max_size=64)  # vm uuid (informational)
        state = r.sized(max_size=1 << 22)
        r.expect_end()
        return self._instantiate(state, target_vm)

    def import_sealed(self, package: MigrationPackage, target_vm: Domain):
        """Accept an improved-protocol package (nonce single-use, TPM-gated)."""
        if self._hw is None:
            raise MigrationError("improved migration needs a hardware TPM client")
        r = ByteReader(package.payload)
        if r.raw(8) != MAGIC_SEALED:
            raise MigrationError("not a sealed migration package")
        offer_id = r.u32()
        nonce = r.raw(NONCE_SIZE)
        r.sized(max_size=64)  # vm uuid
        identity_hex = r.sized(max_size=128).decode("ascii")
        enc_session = r.sized(max_size=1 << 12)
        enc_state = EncryptedBlob.deserialize(r.sized(max_size=1 << 22))
        r.expect_end()
        offer = self._offers.pop(offer_id, None)
        if offer is None:
            raise MigrationError(f"no outstanding migration offer {offer_id}")
        if nonce != offer.nonce or nonce in self._seen_nonces:
            raise MigrationError("migration nonce mismatch or replay")
        self._seen_nonces.add(nonce)
        session_key = self._hw.unbind(
            offer.bind_key_handle, offer.bind_key_auth, enc_session
        )
        if len(session_key) != SESSION_KEY_SIZE:
            raise MigrationError("recovered session key has wrong size")
        try:
            state = SymmetricKey(session_key).decrypt(enc_state)
        except Exception as exc:
            raise MigrationError(f"state decrypt failed: {exc}") from exc
        # Identity continuity: the VM landing here must measure identically.
        if self.manager.identities is not None and identity_hex:
            identity = self.manager.identities.lookup(target_vm.domid)
            if identity is None:
                identity = self.manager.identities.register(target_vm)
            if identity.hex != identity_hex:
                raise MigrationError(
                    "target VM identity does not match the migrated instance"
                )
        finally_handle = offer.bind_key_handle
        self._hw.evict_key(finally_handle)
        return self._instantiate(state, target_vm)

    def _instantiate(self, state: bytes, target_vm: Domain):
        """Common tail: rebuild the instance on this platform."""
        from repro.tpm.device import TpmDevice
        from repro.vtpm.instance import VtpmInstance
        from repro.xen.memory import MemoryRegion

        manager = self.manager
        charge("vtpm.instance.create")
        identity_hex = None
        if manager.identities is not None and manager.mode.value == "improved":
            identity = (
                manager.identities.lookup(target_vm.domid)
                or manager.identities.register(target_vm)
            )
            identity_hex = identity.hex
        instance = VtpmInstance.__new__(VtpmInstance)
        instance.instance_id = next(manager._ids)
        instance.vm_uuid = target_vm.uuid
        instance.bound_identity_hex = identity_hex
        instance.device = TpmDevice.from_state_blob(
            state,
            rng=manager._rng.fork(f"vtpm-mig-{target_vm.uuid}"),
            name=f"vtpm{instance.instance_id}",
        )
        instance.commands_handled = 0
        frames = manager.xen.memory.allocate(
            manager.manager_domid, max(1, (len(state) + 4 + 4095) // 4096)
        )
        instance.state_region = MemoryRegion(
            manager.xen.memory, manager.manager_domid, frames
        )
        instance._memory = manager.xen.memory
        instance.sync_to_memory()
        manager._instances[instance.instance_id] = instance
        manager._by_vm[target_vm.uuid] = instance.instance_id
        if manager.protector is not None:
            manager.protector.protect_region(
                ("vtpm", instance.instance_id), instance.state_region
            )
        manager.monitor.on_instance_created(instance.instance_id, identity_hex or "")
        return instance
