"""vTPM live migration between platforms.

The stock protocol ships the instance state to the destination manager in
plaintext — anyone on the migration path reads the guest's EK/SRK.  The
improved protocol:

1. destination mints a single-use **bind key in its hardware TPM** and a
   fresh anti-replay nonce (the *offer*);
2. source encrypts a random session key to that bind key, encrypts the
   state under the session key (authenticated), and echoes the nonce;
3. destination recovers the session key via ``TPM_UnBind`` — i.e. only
   the real destination hardware TPM can open the package — verifies the
   nonce (one shot) and the owning identity, then instantiates.

Both paths charge network time per byte so Figure 3 compares like with
like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.faults import FaultKind, fire, note_recovery, note_retry
from repro.obs import inc, span
from repro.sim.timing import charge, get_context
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KEY_BIND, TPM_KH_SRK
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import FaultInjected, MigrationError, RetryExhausted
from repro.vtpm.manager import VtpmManager
from repro.xen.domain import Domain

NONCE_SIZE = 20
SESSION_KEY_SIZE = 32

MAGIC_PLAIN = b"VTPMMIG0"
MAGIC_SEALED = b"VTPMMIG1"

#: how long (virtual us) a minted offer stays redeemable
DEFAULT_OFFER_TTL_US = 5_000_000.0


@dataclass
class MigrationOffer:
    """Destination's single-use landing pad.

    An offer is good for exactly one import and only until ``expires_us``
    on the shared virtual clock — a captured package replayed after the
    original import (or a stale offer dug up later) must fail closed, so
    both violations raise and leave an audit record on the destination.
    """

    offer_id: int
    bind_public: RsaPublicKey
    nonce: bytes
    bind_key_handle: int
    bind_key_auth: bytes
    created_us: float = 0.0
    expires_us: float = float("inf")
    consumed: bool = False

    def expired(self, now_us: float) -> bool:
        return now_us > self.expires_us


@dataclass
class MigrationPackage:
    """What actually crosses the wire (and what an interceptor captures)."""

    payload: bytes  # fully serialized, self-describing

    def __len__(self) -> int:
        return len(self.payload)


@dataclass
class ExportTransaction:
    """A migration in flight, seen from the source.

    The source keeps the instance alive (and on its books) until the
    destination acknowledges a successful import — an interrupted
    migration then *rolls back* to a working vTPM instead of destroying
    the only copy of the guest's keys mid-wire.
    """

    txn_id: int
    vm_uuid: str
    instance_id: int
    package: MigrationPackage


class MigrationEndpoint:
    """Migration logic bolted onto one platform's vTPM manager."""

    def __init__(
        self,
        manager: VtpmManager,
        rng: RandomSource,
        hw_client: Optional[TpmClient] = None,
        srk_auth: Optional[bytes] = None,
    ) -> None:
        self.manager = manager
        self._rng = rng
        self._hw = hw_client
        self._srk_auth = srk_auth
        self._offers: Dict[int, MigrationOffer] = {}
        self._next_offer = 1
        self._seen_nonces: set[bytes] = set()
        self._pending: Dict[int, ExportTransaction] = {}
        self._next_txn = 1

    # -- destination side -----------------------------------------------------------

    def prepare_target(
        self, key_bits: int = 512, ttl_us: float = DEFAULT_OFFER_TTL_US
    ) -> MigrationOffer:
        """Mint a hardware-TPM bind key + nonce for one incoming migration."""
        if self._hw is None or self._srk_auth is None:
            raise MigrationError("improved migration needs a hardware TPM client")
        bind_auth = self._rng.bytes(20)
        blob = self._hw.create_wrap_key(
            TPM_KH_SRK, self._srk_auth, bind_auth, TPM_KEY_BIND, key_bits
        )
        handle = self._hw.load_key2(TPM_KH_SRK, self._srk_auth, blob)
        public = self._hw.get_pub_key(handle, bind_auth)
        now_us = get_context().clock.now_us
        offer = MigrationOffer(
            offer_id=self._next_offer,
            bind_public=public,
            nonce=self._rng.bytes(NONCE_SIZE),
            bind_key_handle=handle,
            bind_key_auth=bind_auth,
            created_us=now_us,
            expires_us=now_us + ttl_us,
        )
        self._next_offer += 1
        self._offers[offer.offer_id] = offer
        return offer

    def _reject_offer(self, offer_id: int, why: str) -> None:
        """Fail closed on an invalid offer: audit, count, raise."""
        audit = getattr(self.manager.monitor, "audit", None)
        if audit is not None:
            audit.append(
                subject="migration",
                instance=offer_id,
                operation="VTPM_MigrateOffer",
                allowed=False,
                reason=why,
            )
        inc("vtpm.migration.offer_rejected", why=why.split(" ")[-1])
        raise MigrationError(f"migration offer {offer_id} {why}")

    def _redeem_offer(self, offer_id: int) -> MigrationOffer:
        """Look up an offer and enforce single-use + virtual-time expiry."""
        offer = self._offers.get(offer_id)
        if offer is None:
            raise MigrationError(f"no outstanding migration offer {offer_id}")
        if offer.consumed:
            self._reject_offer(offer_id, "already consumed: replay")
        if offer.expired(get_context().clock.now_us):
            del self._offers[offer_id]
            if self._hw is not None:
                self._hw.evict_key(offer.bind_key_handle)
            self._reject_offer(offer_id, "expired")
        return offer

    def cancel_offer(self, offer_id: int) -> None:
        """Withdraw an unconsumed offer and release its bind key."""
        offer = self._offers.pop(offer_id, None)
        if offer is not None and not offer.consumed and self._hw is not None:
            self._hw.evict_key(offer.bind_key_handle)

    def crash(self) -> None:
        """Model a destination crash: all in-memory offers are lost.

        The seen-nonce set is deliberately *kept* — forgetting it on crash
        would reopen the replay window the nonces exist to close.
        """
        for offer_id in list(self._offers):
            self.cancel_offer(offer_id)

    # -- source side -------------------------------------------------------------------

    def begin_export_plaintext(self, vm_uuid: str) -> ExportTransaction:
        """Stock protocol: raw state on the wire; instance retained until
        :meth:`commit_export`."""
        with span("vtpm.migrate", op="export", protocol="plaintext", vm=vm_uuid) as sp:
            instance = self.manager.instance_for_vm(vm_uuid)
            state = instance.device.save_state_blob()
            w = ByteWriter()
            w.raw(MAGIC_PLAIN)
            w.sized(vm_uuid.encode("utf-8"))
            w.sized(state)
            payload = w.getvalue()
            sp.set("bytes", len(payload))
            inc("vtpm.migration.export_begun", protocol="plaintext")
            inc("vtpm.migration.bytes_moved", len(payload))
            charge("vtpm.migration.net", len(payload))
            return self._open_txn(vm_uuid, instance.instance_id, payload)

    def begin_export_sealed(
        self, vm_uuid: str, offer: MigrationOffer
    ) -> ExportTransaction:
        """Improved protocol: session key bound to the destination TPM;
        instance retained until :meth:`commit_export`."""
        # The clock is shared fleet-wide, so the source can refuse to do
        # the crypto work for an offer the destination will reject anyway.
        if offer.consumed:
            raise MigrationError(
                f"migration offer {offer.offer_id} already consumed: replay"
            )
        if offer.expired(get_context().clock.now_us):
            raise MigrationError(f"migration offer {offer.offer_id} expired")
        with span("vtpm.migrate", op="export", protocol="sealed", vm=vm_uuid) as sp:
            instance = self.manager.instance_for_vm(vm_uuid)
            state = instance.device.save_state_blob()
            session_key = self._rng.bytes(SESSION_KEY_SIZE)
            enc_session = offer.bind_public.encrypt(session_key, self._rng)
            enc_state = SymmetricKey(session_key).encrypt(state, self._rng)
            w = ByteWriter()
            w.raw(MAGIC_SEALED)
            w.u32(offer.offer_id)
            w.raw(offer.nonce)
            w.sized(vm_uuid.encode("utf-8"))
            w.sized((instance.bound_identity_hex or "").encode("ascii"))
            w.sized(enc_session)
            w.sized(enc_state.serialize())
            payload = w.getvalue()
            sp.set("bytes", len(payload))
            inc("vtpm.migration.export_begun", protocol="sealed")
            inc("vtpm.migration.bytes_moved", len(payload))
            charge("vtpm.migration.net", len(payload))
            return self._open_txn(vm_uuid, instance.instance_id, payload)

    def _open_txn(
        self, vm_uuid: str, instance_id: int, payload: bytes
    ) -> ExportTransaction:
        txn = ExportTransaction(
            txn_id=self._next_txn,
            vm_uuid=vm_uuid,
            instance_id=instance_id,
            package=MigrationPackage(payload=payload),
        )
        self._next_txn += 1
        self._pending[txn.txn_id] = txn
        return txn

    def commit_export(self, txn: ExportTransaction) -> None:
        """Destination acked: the source copy may now be destroyed."""
        if self._pending.pop(txn.txn_id, None) is None:
            raise MigrationError(f"no pending export transaction {txn.txn_id}")
        inc("vtpm.migration.export_committed")
        self.manager.destroy_instance(txn.instance_id, persist=False)

    def abort_export(self, txn: ExportTransaction) -> None:
        """Roll back an interrupted migration; the instance keeps serving."""
        if self._pending.pop(txn.txn_id, None) is not None:
            inc("vtpm.migration.export_aborted")

    @property
    def pending_exports(self) -> int:
        return len(self._pending)

    # -- one-shot wrappers (non-transactional legacy surface) ----------------------

    def export_plaintext(self, vm_uuid: str) -> MigrationPackage:
        """Stock protocol, fire-and-forget: export and destroy in one step."""
        txn = self.begin_export_plaintext(vm_uuid)
        self.commit_export(txn)
        return txn.package

    def export_sealed(self, vm_uuid: str, offer: MigrationOffer) -> MigrationPackage:
        """Improved protocol, fire-and-forget: export and destroy in one step."""
        txn = self.begin_export_sealed(vm_uuid, offer)
        self.commit_export(txn)
        return txn.package

    # -- destination import ----------------------------------------------------------------

    def _maybe_crash_on_import(self, target_vm: Domain) -> None:
        """Fault hook: the destination host dies after receiving the
        package but before instantiating — its in-memory offers are lost
        and the source must roll back and renegotiate."""
        event = fire("vtpm.migration.dest", vm=target_vm.uuid)
        if event is not None and event.kind is FaultKind.MIGRATION_DEST_CRASH:
            self.crash()
            event.raise_fault()

    def import_plaintext(self, package: MigrationPackage, target_vm: Domain):
        """Accept a stock-protocol package."""
        with span(
            "vtpm.migrate", op="import", protocol="plaintext",
            vm=target_vm.uuid, bytes=len(package),
        ):
            self._maybe_crash_on_import(target_vm)
            r = ByteReader(package.payload)
            if r.raw(8) != MAGIC_PLAIN:
                raise MigrationError("not a plaintext migration package")
            r.sized(max_size=64)  # vm uuid (informational)
            state = r.sized(max_size=1 << 22)
            r.expect_end()
            inc("vtpm.migration.imported", protocol="plaintext")
            return self._instantiate(state, target_vm)

    def import_sealed(self, package: MigrationPackage, target_vm: Domain):
        """Accept an improved-protocol package (nonce single-use, TPM-gated)."""
        if self._hw is None:
            raise MigrationError("improved migration needs a hardware TPM client")
        with span(
            "vtpm.migrate", op="import", protocol="sealed",
            vm=target_vm.uuid, bytes=len(package),
        ):
            self._maybe_crash_on_import(target_vm)
            r = ByteReader(package.payload)
            if r.raw(8) != MAGIC_SEALED:
                raise MigrationError("not a sealed migration package")
            offer_id = r.u32()
            nonce = r.raw(NONCE_SIZE)
            r.sized(max_size=64)  # vm uuid
            identity_hex = r.sized(max_size=128).decode("ascii")
            enc_session = r.sized(max_size=1 << 12)
            enc_state = EncryptedBlob.deserialize(r.sized(max_size=1 << 22))
            r.expect_end()
            offer = self._redeem_offer(offer_id)
            if nonce != offer.nonce or nonce in self._seen_nonces:
                raise MigrationError("migration nonce mismatch or replay")
            # The offer is spent the moment its nonce is accepted — kept on
            # the books (consumed=True) so a later replay is *recognised*
            # as a replay and audited, not mistaken for an unknown offer.
            offer.consumed = True
            self._seen_nonces.add(nonce)
            session_key = self._hw.unbind(
                offer.bind_key_handle, offer.bind_key_auth, enc_session
            )
            if len(session_key) != SESSION_KEY_SIZE:
                raise MigrationError("recovered session key has wrong size")
            try:
                state = SymmetricKey(session_key).decrypt(enc_state)
            except Exception as exc:
                raise MigrationError(f"state decrypt failed: {exc}") from exc
            # Identity continuity: the VM landing here must measure identically.
            if self.manager.identities is not None and identity_hex:
                identity = self.manager.identities.lookup(target_vm.domid)
                if identity is None:
                    identity = self.manager.identities.register(target_vm)
                if identity.hex != identity_hex:
                    raise MigrationError(
                        "target VM identity does not match the migrated instance"
                    )
            self._hw.evict_key(offer.bind_key_handle)
            inc("vtpm.migration.imported", protocol="sealed")
            return self._instantiate(state, target_vm)

    def _instantiate(self, state: bytes, target_vm: Domain):
        """Common tail: rebuild the instance on this platform."""
        from repro.tpm.device import TpmDevice
        from repro.vtpm.instance import VtpmInstance
        from repro.xen.memory import MemoryRegion

        manager = self.manager
        charge("vtpm.instance.create")
        identity_hex = None
        if manager.identities is not None and manager.mode.value == "improved":
            identity = (
                manager.identities.lookup(target_vm.domid)
                or manager.identities.register(target_vm)
            )
            identity_hex = identity.hex
        instance = VtpmInstance.__new__(VtpmInstance)
        instance.instance_id = next(manager._ids)
        instance.vm_uuid = target_vm.uuid
        instance.bound_identity_hex = identity_hex
        instance.device = TpmDevice.from_state_blob(
            state,
            rng=manager._rng.fork(f"vtpm-mig-{target_vm.uuid}"),
            name=f"vtpm{instance.instance_id}",
        )
        instance.commands_handled = 0
        frames = manager.xen.memory.allocate(
            manager.manager_domid, max(1, (len(state) + 4 + 4095) // 4096)
        )
        instance.state_region = MemoryRegion(
            manager.xen.memory, manager.manager_domid, frames
        )
        instance._memory = manager.xen.memory
        instance.sync_to_memory()
        manager._instances[instance.instance_id] = instance
        manager._by_vm[target_vm.uuid] = instance.instance_id
        if manager.protector is not None:
            manager.protector.protect_region(
                ("vtpm", instance.instance_id), instance.state_region
            )
        manager.monitor.on_instance_created(instance.instance_id, identity_hex or "")
        return instance


#: transfer attempts before an interrupted migration is declared dead
MIGRATION_ATTEMPTS = 4


def migrate_with_recovery(
    source: MigrationEndpoint,
    destination: MigrationEndpoint,
    vm_uuid: str,
    target_vm: Domain,
    sealed: bool = True,
    attempts: int = MIGRATION_ATTEMPTS,
):
    """Drive one migration end-to-end, surviving injected interruptions.

    Each attempt is a full transaction: (fresh offer if sealed) → export →
    transfer → import → source commit.  The fault injector can drop the
    package on the wire (``vtpm.migration.net``) or crash the destination
    after it received it (``vtpm.migration.dest``); either way the source
    *aborts* the transaction — the guest's vTPM keeps serving — pays the
    retry cost in virtual time, and renegotiates from scratch (new offer,
    new nonce, new session key; the single-use nonce rules out replaying
    the interrupted attempt).  Returns the destination's new instance.
    """
    start_us = get_context().clock.now_us
    interrupted = 0
    last: Exception | None = None
    for _attempt in range(attempts):
        offer = destination.prepare_target() if sealed else None
        txn = (
            source.begin_export_sealed(vm_uuid, offer)
            if sealed
            else source.begin_export_plaintext(vm_uuid)
        )
        try:
            event = fire("vtpm.migration.net", vm=vm_uuid, size=len(txn.package))
            if event is not None and event.kind is FaultKind.MIGRATION_NET_DROP:
                event.raise_fault()
            instance = (
                destination.import_sealed(txn.package, target_vm)
                if sealed
                else destination.import_plaintext(txn.package, target_vm)
            )
        except FaultInjected as exc:
            if not exc.transient:
                source.abort_export(txn)
                raise
            last = exc
            interrupted += 1
            source.abort_export(txn)
            if offer is not None:
                destination.cancel_offer(offer.offer_id)
            note_retry("vtpm.migration")
            charge("vtpm.migration.retry")
            continue
        source.commit_export(txn)
        if interrupted:
            note_recovery(
                "vtpm.migration", get_context().clock.now_us - start_us
            )
        return instance
    raise RetryExhausted(
        "vtpm.migration",
        attempts,
        last or MigrationError(f"migration of {vm_uuid} kept failing"),
    )
