"""Watch-driven vTPM hotplug: the xend device-controller role.

In real Xen no guest calls ``connect_backend`` by hand: the front-end
driver writes its ring parameters under
``/local/domain/<id>/device/vtpm/0`` and xend's device controller — woken
by a XenStore watch — creates the instance, attaches the back-end and
flips the state node.  This module reproduces that control loop so guests
connect by *publishing*, exactly like the real stack, and disconnect the
same way (state 6 = Closed).
"""

from __future__ import annotations

import re
from typing import Dict, Optional

from repro.obs import counters as obs_counters
from repro.util.errors import VtpmError
from repro.vtpm.backend import VtpmBackend
from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.manager import VtpmManager
from repro.xen.hypervisor import Xen

_DEVICE_RE = re.compile(r"^/local/domain/(\d+)/device/vtpm/0/(.+)$")

#: teardown errors surfaced on the hotplug control loop's degraded path
_HOTPLUG_ERROR = obs_counters.counter("vtpm.hotplug.error", op="disconnect")


class VtpmHotplugAgent:
    """Auto-connects vTPM front-ends as they appear in XenStore."""

    def __init__(self, xen: Xen, manager: VtpmManager) -> None:
        self.xen = xen
        self.manager = manager
        #: frontends register here when constructed (the "kernel module
        #: loaded" step); the agent needs the object to hand the ring to
        #: the back-end.
        self._frontends: Dict[int, VtpmFrontend] = {}
        self._backends: Dict[int, VtpmBackend] = {}
        self.connects = 0
        self.disconnects = 0
        xen.store.watch("/local/domain", self._on_store_change)

    # -- registration -------------------------------------------------------------

    def register_frontend(self, frontend: VtpmFrontend) -> None:
        """Make a front-end's ring object reachable by the agent.

        (Models the kernel object the real backend finds through the
        grant reference; our simulation needs the Python handle.)
        """
        self._frontends[frontend.guest.domid] = frontend
        # The nodes may already be in the store; try to connect now.
        self._try_connect(frontend.guest.domid)

    def backend_for(self, domid: int) -> Optional[VtpmBackend]:
        return self._backends.get(domid)

    # -- the watch ------------------------------------------------------------------

    def _on_store_change(self, path: str, value: Optional[str]) -> None:
        match = _DEVICE_RE.match(path)
        if not match:
            return
        domid = int(match.group(1))
        leaf = match.group(2)
        if leaf == "state" and value == "6":
            self._disconnect(domid)
        elif leaf in ("ring-ref", "event-channel", "state"):
            self._try_connect(domid)

    def _device_ready(self, domid: int) -> bool:
        base = f"/local/domain/{domid}/device/vtpm/0"
        for leaf in ("ring-ref", "event-channel", "state"):
            if not self.xen.store.exists(f"{base}/{leaf}"):
                return False
        state = self.xen.store.read(0, f"{base}/state", privileged=True)
        return state == "1"  # XenbusStateInitialising

    def _try_connect(self, domid: int) -> None:
        if domid in self._backends or domid not in self._frontends:
            return
        if not self._device_ready(domid):
            return
        frontend = self._frontends[domid]
        guest = self.xen.domain(domid)
        try:
            instance = self.manager.instance_for_vm(guest.uuid)
        except VtpmError:
            instance = self.manager.create_instance(guest)
        backend = VtpmBackend(self.xen, self.manager, frontend, instance.instance_id)
        self._backends[domid] = backend
        self.connects += 1

    def _disconnect(self, domid: int) -> None:
        backend = self._backends.pop(domid, None)
        self._frontends.pop(domid, None)
        if backend is None:
            return
        # The front-end already tore its ring down on close; just retire
        # the instance (persisting state, as xend's destroy path does).
        # A teardown failure must not wedge the control loop — the guest
        # is gone either way — but it is a degraded path, not a no-op:
        # the audit chain records it and the error counter ticks, so a
        # retire that silently lost state is distinguishable from a
        # clean one.
        try:
            self.manager.destroy_instance(backend.instance_id, persist=True)
        except VtpmError as exc:
            _HOTPLUG_ERROR.inc()
            self.manager.monitor.on_fault(backend.instance_id, exc)
        self.disconnects += 1
