"""The Xen vTPM subsystem (the design the paper improves).

Manager daemon, per-guest instances, tpmfront/tpmback split driver,
persistent storage and live migration — runnable in two regimes:
``AccessMode.BASELINE`` (stock Xen behaviour) and ``AccessMode.IMPROVED``
(with the :mod:`repro.core` access-control layer installed).
"""

from repro.vtpm.backend import VtpmBackend, attach_vtpm
from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.instance import VtpmInstance
from repro.vtpm.manager import VtpmManager
from repro.vtpm.migration import MigrationEndpoint, MigrationOffer, MigrationPackage
from repro.vtpm.storage import DiskStore, VtpmStorage

__all__ = [
    "VtpmBackend",
    "attach_vtpm",
    "VtpmFrontend",
    "VtpmInstance",
    "VtpmManager",
    "MigrationEndpoint",
    "MigrationOffer",
    "MigrationPackage",
    "DiskStore",
    "VtpmStorage",
]
