"""The vTPM manager daemon.

Runs inside the manager domain (Dom0 in the stock design), owns every
vTPM instance, and demultiplexes command packets arriving from back-end
drivers.  :meth:`handle_command` is the paper's interposition point: the
installed :class:`~repro.core.monitor.Monitor` sees every packet before
an instance does.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.core.config import AccessControlConfig, AccessMode
from repro.core.identity import IdentityRegistry
from repro.core.monitor import AccessControlMonitor, BaselineMonitor, Monitor
from repro.core.protection import MemoryProtector
from repro.faults import injector as _injector
from repro.faults import with_retry
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_SPAN
from repro.sim.timing import charge
from repro.tpm import marshal
from repro.tpm.constants import TPM_AUTHFAIL, TPM_FAIL
from repro.util.errors import FaultInjected, RetryExhausted, VtpmError
from repro.vtpm.instance import VtpmInstance
from repro.vtpm.storage import VtpmStorage
from repro.xen.domain import Domain
from repro.xen.hypervisor import Xen

_VTPM_BATCHES = obs_counters.counter("vtpm.batches")
_VTPM_BATCHED_COMMANDS = obs_counters.counter("vtpm.batched_commands")
_VTPM_FAULT_RESPONSES = obs_counters.counter("vtpm.fault_responses")


class VtpmManager:
    """vtpm_managerd: instance lifecycle plus the command path."""

    def __init__(
        self,
        xen: Xen,
        manager_domid: int,
        storage: VtpmStorage,
        monitor: Monitor,
        *,
        mode: AccessMode,
        identities: Optional[IdentityRegistry] = None,
        protector: Optional[MemoryProtector] = None,
        key_bits: int = 1024,
        nv_capacity: Optional[int] = None,
        rng=None,
    ) -> None:
        self.xen = xen
        self.manager_domid = manager_domid
        self.storage = storage
        self.monitor = monitor
        self.mode = mode
        self.identities = identities
        self.protector = protector
        self.key_bits = key_bits
        self.nv_capacity = nv_capacity
        self._rng = rng if rng is not None else xen.rng.fork("vtpm-manager")
        self._instances: Dict[int, VtpmInstance] = {}
        self._by_vm: Dict[str, int] = {}
        self._ids = itertools.count(1)
        self.commands_dispatched = 0
        self.commands_denied = 0
        self.faults_surfaced = 0

    # -- instance lifecycle ------------------------------------------------------

    def create_instance(self, vm: Domain, profile=None) -> VtpmInstance:
        """Create and bind a vTPM for a guest domain.

        ``profile`` optionally narrows the policy grant installed for the
        owning identity (see :mod:`repro.core.profiles`).
        """
        if vm.uuid in self._by_vm:
            raise VtpmError(f"VM {vm.name} already has vTPM instance "
                            f"{self._by_vm[vm.uuid]}")
        charge("vtpm.instance.create")
        identity_hex: Optional[str] = None
        if self.mode is AccessMode.IMPROVED and self.identities is not None:
            identity = self.identities.lookup(vm.domid) or self.identities.register(vm)
            identity_hex = identity.hex
        instance = VtpmInstance(
            instance_id=next(self._ids),
            vm_uuid=vm.uuid,
            rng=self._rng.fork(f"vtpm-{vm.uuid}"),
            memory=self.xen.memory,
            manager_domid=self.manager_domid,
            key_bits=self.key_bits,
            bound_identity_hex=identity_hex,
            nv_capacity=self.nv_capacity,
        )
        self._instances[instance.instance_id] = instance
        self._by_vm[vm.uuid] = instance.instance_id
        if self.protector is not None:
            self.protector.protect_region(
                ("vtpm", instance.instance_id), instance.state_region
            )
        self.monitor.on_instance_created(
            instance.instance_id, identity_hex or "", profile=profile
        )
        # Publish the binding the way xend did, for tooling parity.  A
        # stub-domain manager is unprivileged and publishes under its own
        # XenStore subtree instead of the global /vtpm.
        manager_privileged = self.xen.domain(self.manager_domid).privileged
        binding_path = (
            f"/vtpm/{vm.uuid}/instance"
            if manager_privileged
            else f"/local/domain/{self.manager_domid}/vtpm/{vm.uuid}/instance"
        )
        self.xen.store.write(
            self.manager_domid,
            binding_path,
            str(instance.instance_id),
            privileged=manager_privileged,
        )
        return instance

    def destroy_instance(self, instance_id: int, persist: bool = True) -> None:
        instance = self.instance(instance_id)
        if persist:
            self.save_instance(instance_id)
        if self.protector is not None:
            self.protector.unprotect(("vtpm", instance_id))
        instance.teardown()
        self.monitor.on_instance_destroyed(instance_id)
        del self._instances[instance_id]
        self._by_vm.pop(instance.vm_uuid, None)

    def instance(self, instance_id: int) -> VtpmInstance:
        charge("vtpm.instance.lookup")
        try:
            return self._instances[instance_id]
        except KeyError:
            raise VtpmError(f"no vTPM instance {instance_id}") from None

    def instance_for_vm(self, vm_uuid: str) -> VtpmInstance:
        instance_id = self._by_vm.get(vm_uuid)
        if instance_id is None:
            raise VtpmError(f"VM {vm_uuid} has no vTPM instance")
        return self._instances[instance_id]

    @property
    def instance_count(self) -> int:
        return len(self._instances)

    def instances(self) -> list[VtpmInstance]:
        return [self._instances[i] for i in sorted(self._instances)]

    # -- the command path (where the monitor interposes) ----------------------------

    def handle_command(
        self, caller_domid: int, instance_id: int, wire: bytes, locality: int = 0
    ) -> bytes:
        """One packet from a back-end: authorize, execute, respond.

        ``caller_domid`` is hypervisor ground truth (the ring's front-end
        domain), not a backend claim; ``instance_id`` *is* a backend claim,
        which is exactly what the monitor's binding check validates.
        """
        charge("vtpm.dispatch")
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self._dispatch_one(caller_domid, instance_id, wire, locality)
        with tracer.start_span("manager.dispatch", {"instance": instance_id}):
            return self._dispatch_one(caller_domid, instance_id, wire, locality)

    def handle_batch(
        self,
        caller_domid: int,
        instance_id: int,
        wires: list,
        locality: int = 0,
    ) -> list:
        """A batch of packets that arrived on one ring notify.

        The per-notify demux cost (``vtpm.dispatch``) is charged once for
        the whole batch — that amortization is the point of batching — but
        **every** command is still individually authorized, so a policy
        change or a rogue re-bind mid-batch is caught on the very next
        frame.  Each wire gets the back-end's usual bounded-retry envelope;
        a command that exhausts its retries degrades to a fault response
        without poisoning the rest of the batch.
        """
        charge("vtpm.dispatch")
        _VTPM_BATCHES.inc()
        _VTPM_BATCHED_COMMANDS.add(len(wires))
        tracer = obs_trace._current_tracer
        # The injector cannot be (un)installed mid-batch — the driver loop
        # is synchronous — so one check covers the whole notify.  Without
        # an injector, _dispatch_one can never raise an injected fault and
        # the per-wire retry envelope is pure overhead.
        faultless = _injector._current_injector is None
        responses = []
        for wire in wires:
            span = (
                NULL_SPAN if tracer is None
                else tracer.start_span("manager.dispatch",
                                       {"instance": instance_id})
            )
            with span:
                if faultless:
                    responses.append(
                        self._dispatch_one(
                            caller_domid, instance_id, wire, locality
                        )
                    )
                    continue
                try:
                    responses.append(
                        with_retry(
                            self._dispatch_one, caller_domid, instance_id,
                            wire, locality, site="vtpm.manager.batch",
                            jitter_token=instance_id,
                        )
                    )
                except RetryExhausted as exc:
                    responses.append(self.fault_response(instance_id, exc))
        return responses

    def _dispatch_one(
        self, caller_domid: int, instance_id: int, wire: bytes, locality: int = 0
    ) -> bytes:
        """The monitor-interposed command path for one already-demuxed wire."""
        self.commands_dispatched += 1
        try:
            instance = self.instance(instance_id)
        except VtpmError:
            return marshal.build_response(TPM_AUTHFAIL)
        caller = self.xen.domain(caller_domid)
        verdict = self.monitor.authorize(
            caller, instance_id, instance.bound_identity_hex, wire
        )
        if not verdict.allowed:
            self.commands_denied += 1
            return marshal.build_response(TPM_AUTHFAIL)
        self._load_working_registers(instance)
        try:
            return instance.execute(wire, locality=locality, parsed=verdict.parsed)
        except FaultInjected as exc:
            if exc.transient:
                raise  # the back-end's bounded retry resends the same wire
            return self.fault_response(instance_id, exc)
        finally:
            if self.protector is not None and self.protector.enabled:
                self._scrub_working_registers()

    def fault_response(self, instance_id: int, exc: Exception) -> bytes:
        """Graceful degradation: a subsystem failure becomes a ``TPM_FAIL``
        response frame plus an audit event — never a dead manager."""
        self.faults_surfaced += 1
        _VTPM_FAULT_RESPONSES.inc()
        obs_trace.span_event("fault_degraded", instance=instance_id,
                             error=str(exc))
        self.monitor.on_fault(instance_id, exc)
        return marshal.build_response(TPM_FAIL)

    # -- CPU-residency modelling ---------------------------------------------------

    def _load_working_registers(self, instance: VtpmInstance) -> None:
        """Model crypto in flight: key fragments transit the manager's vCPU.

        Real RSA code schedules private-key material through registers;
        this puts the first 32 bytes of the instance EK into rax..rdx so a
        vCPU dump sees what a real dump would see.  The register values are
        pure functions of the (immutable) EK, so they are computed once per
        instance and bulk-assigned on every subsequent command.
        """
        vcpu = self.xen.domain(self.manager_domid).vcpu
        packed = instance.working_registers
        if packed is None:
            ek = instance.device.state.keys.ek
            if ek is None:
                return
            fragment = ek.keypair.serialize_private()[:32]
            packed = {
                reg: int.from_bytes(fragment[i * 8 : (i + 1) * 8], "big")
                for i, reg in enumerate(("rax", "rbx", "rcx", "rdx"))
            }
            instance.working_registers = packed
        vcpu.registers.update(packed)

    _ZERO_REGISTERS = {"rax": 0, "rbx": 0, "rcx": 0, "rdx": 0}

    def _scrub_working_registers(self) -> None:
        """The improved manager zeroes key-bearing registers after use."""
        vcpu = self.xen.domain(self.manager_domid).vcpu
        vcpu.registers.update(self._ZERO_REGISTERS)

    # -- persistence ---------------------------------------------------------------------

    def save_instance(self, instance_id: int) -> str:
        instance = self.instance(instance_id)
        return self.storage.save_instance_state(
            instance.vm_uuid,
            instance.bound_identity_hex,
            instance.device.save_state_blob(),
        )

    def save_all(self) -> int:
        for instance_id in list(self._instances):
            self.save_instance(instance_id)
        return len(self._instances)

    def restore_instance(self, vm: Domain) -> VtpmInstance:
        """Re-create a guest's vTPM from persistent state after reboot."""
        identity_hex: Optional[str] = None
        if self.mode is AccessMode.IMPROVED and self.identities is not None:
            identity = self.identities.lookup(vm.domid) or self.identities.register(vm)
            identity_hex = identity.hex
        blob = self.storage.load_instance_state(vm.uuid, identity_hex)
        charge("vtpm.instance.create")
        instance = VtpmInstance.__new__(VtpmInstance)
        instance.instance_id = next(self._ids)
        instance.vm_uuid = vm.uuid
        instance.bound_identity_hex = identity_hex
        from repro.tpm.device import TpmDevice

        # Restore is recovery code: it must itself survive transient device
        # faults (the resumed TPM runs a Startup command on power-on).
        instance.device = with_retry(
            lambda: TpmDevice.from_state_blob(
                blob, rng=self._rng.fork(f"vtpm-restore-{vm.uuid}"),
                name=f"vtpm{instance.instance_id}",
            ),
            site="vtpm.manager.restore",
        )
        instance.commands_handled = 0
        frames = self.xen.memory.allocate(
            self.manager_domid, max(1, (len(blob) + 4 + 4095) // 4096)
        )
        from repro.xen.memory import MemoryRegion

        instance.state_region = MemoryRegion(self.xen.memory, self.manager_domid, frames)
        instance._memory = self.xen.memory
        instance.sync_to_memory()
        self._instances[instance.instance_id] = instance
        self._by_vm[vm.uuid] = instance.instance_id
        if self.protector is not None:
            self.protector.protect_region(
                ("vtpm", instance.instance_id), instance.state_region
            )
        self.monitor.on_instance_created(instance.instance_id, identity_hex or "")
        return instance
