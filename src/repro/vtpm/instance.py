"""One virtual TPM instance.

An instance owns a full software TPM (:class:`~repro.tpm.device.TpmDevice`)
plus the manager-domain memory pages its serialized state lives in — the
pages a memory-dump attack reads, and the pages the improved design
hypervisor-protects.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.random_source import RandomSource
from repro.obs import trace as obs_trace
from repro.sim import timing as _timing
from repro.sim.timing import get_context
from repro.tpm import constants as tc
from repro.tpm.device import TpmDevice
from repro.util.errors import VtpmError
from repro.xen.memory import PAGE_SIZE, MemoryRegion, PhysicalMemory

#: pages reserved per instance for the in-memory state image
STATE_PAGES = 8

#: Ordinals that cannot change the *serialized* TPM state: pure reads, plus
#: session setup (auth sessions and the RNG are volatile — deliberately not
#: part of the state blob, see ``TpmState.serialize``).  After one of these
#: the in-memory image is already current, so the re-serialize is skipped.
_SERIALIZATION_NEUTRAL = frozenset(
    {
        tc.TPM_ORD_PcrRead,
        tc.TPM_ORD_GetRandom,
        tc.TPM_ORD_GetCapability,
        tc.TPM_ORD_ReadPubek,
        tc.TPM_ORD_DirRead,
        tc.TPM_ORD_GetTestResult,
        tc.TPM_ORD_ReadCounter,
        tc.TPM_ORD_OIAP,
        tc.TPM_ORD_OSAP,
    }
)


class VtpmInstance:
    """A per-VM virtual TPM, resident in the manager domain."""

    #: memoized EK-fragment register image, filled lazily by the manager's
    #: working-register model (class default covers restored instances too)
    working_registers = None

    #: virtual timestamp of the last executed command (class default covers
    #: restored instances); the supervisor's watchdog reads it to tell a
    #: quiet instance from a wedged one
    last_activity_us = 0.0

    def __init__(
        self,
        instance_id: int,
        vm_uuid: str,
        rng: RandomSource,
        memory: PhysicalMemory,
        manager_domid: int,
        key_bits: int,
        bound_identity_hex: Optional[str] = None,
        nv_capacity: Optional[int] = None,
    ) -> None:
        self.instance_id = instance_id
        self.vm_uuid = vm_uuid
        self.bound_identity_hex = bound_identity_hex
        self.device = TpmDevice(
            rng, key_bits=key_bits, name=f"vtpm{instance_id}", nv_capacity=nv_capacity
        )
        self.device.power_on()
        self.commands_handled = 0
        # The state image lives in real (simulated) manager-domain frames so
        # dump tooling sees exactly what a live manager process would hold.
        frames = memory.allocate(manager_domid, STATE_PAGES)
        self.state_region = MemoryRegion(memory, manager_domid, frames)
        self._memory = memory
        self.sync_to_memory()

    def sync_to_memory(self) -> int:
        """Mirror the serialized TPM state into the manager's frames.

        Models the manager daemon's heap residency of instance state; no
        virtual time is charged because the real daemon holds this state
        in place rather than copying it per command.
        """
        blob = self.device.save_state_blob()
        if len(blob) + 4 > self.state_region.size:
            # Grow: allocate more frames (the daemon's heap growing).
            needed = (len(blob) + 4 + PAGE_SIZE - 1) // PAGE_SIZE
            old_frames = self.state_region.frames
            was_protected = self._memory.page(old_frames[0]).protected
            frames = self._memory.allocate(self.state_region.domid, needed)
            self._memory.free(old_frames)
            self.state_region = MemoryRegion(self._memory, self.state_region.domid, frames)
            if was_protected:
                self.state_region.set_protected(True)
        self.state_region.write(0, len(blob).to_bytes(4, "big") + blob)
        return len(blob)

    def memory_image(self) -> bytes:
        """The state bytes as resident in memory (owner view, for tests)."""
        length = int.from_bytes(self.state_region.read(0, 4), "big")
        return self.state_region.read(4, length)

    def execute(self, wire: bytes, locality: int = 0, parsed=None) -> bytes:
        """Run one TPM command on this instance and refresh the image.

        ``parsed`` optionally carries the already-parsed frame (the monitor
        parses every command once); it also lets us skip the state-image
        refresh for ordinals that cannot alter the serialized state.
        """
        tracer = obs_trace._current_tracer
        if tracer is None:
            response = self.device.execute(wire, locality=locality, parsed=parsed)
        else:
            with tracer.start_span("engine", {"instance": self.instance_id}):
                response = self.device.execute(
                    wire, locality=locality, parsed=parsed
                )
        self.commands_handled += 1
        self.last_activity_us = _timing._current_context.clock.now_us
        if parsed is not None:
            ordinal = parsed.ordinal
        elif len(wire) >= 10:
            ordinal = int.from_bytes(wire[6:10], "big")
        else:
            ordinal = -1
        if ordinal not in _SERIALIZATION_NEUTRAL:
            if tracer is None:
                self.sync_to_memory()
            else:
                with tracer.start_span(
                    "serialize", {"instance": self.instance_id}
                ):
                    self.sync_to_memory()
        return response

    def idle_us(self) -> float:
        """Virtual time since the last executed command (watchdog input)."""
        return get_context().clock.now_us - self.last_activity_us

    def teardown(self) -> None:
        """Scrub and free the state frames."""
        self.state_region.write(0, b"\x00" * self.state_region.size)
        self._memory.free(self.state_region.frames)

    def __repr__(self) -> str:
        bound = (
            self.bound_identity_hex[:12] + "…" if self.bound_identity_hex else None
        )
        return (
            f"VtpmInstance(id={self.instance_id}, vm={self.vm_uuid[:8]}, "
            f"bound={bound})"
        )
