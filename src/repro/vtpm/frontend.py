"""tpmfront: the guest-side half of the vTPM split driver.

Performs the XenStore handshake (publish ring gref and event-channel port
under the guest's device subtree), owns the shared-page transport, and
exposes a bytes-in/bytes-out callable for :class:`~repro.tpm.TpmClient`.
"""

from __future__ import annotations

from repro.obs import trace as obs_trace
from repro.util.errors import VtpmError
from repro.xen.domain import Domain
from repro.xen.hypervisor import Xen
from repro.xen.ring import TpmRing


class VtpmFrontend:
    """The guest's /dev/tpm0 path down to the shared ring."""

    def __init__(
        self, xen: Xen, guest: Domain, backend_domid: int, locality: int = 0
    ) -> None:
        if not 0 <= locality <= 4:
            raise VtpmError(f"TPM locality must be 0-4, got {locality}")
        self.xen = xen
        self.guest = guest
        self.backend_domid = backend_domid
        #: TPM locality this front-end's commands execute at (set by the
        #: platform configuration; guests cannot raise it themselves)
        self.locality = locality
        self.ring = TpmRing(
            xen.memory, xen.grants, xen.events, guest.domid, backend_domid
        )
        self.device_path = f"/local/domain/{guest.domid}/device/vtpm/0"
        # Publish the connection parameters, as the real driver does.
        xen.store.write(guest.domid, f"{self.device_path}/ring-ref", str(self.ring.gref))
        xen.store.write(
            guest.domid, f"{self.device_path}/event-channel", str(self.ring.port)
        )
        xen.store.write(guest.domid, f"{self.device_path}/state", "1")  # Initialising
        self.connected = False

    def mark_connected(self) -> None:
        self.xen.store.write(self.guest.domid, f"{self.device_path}/state", "4")
        self.connected = True

    def transport(self, wire: bytes) -> bytes:
        """Send one TPM command through the split driver."""
        if not self.connected:
            raise VtpmError(
                f"vTPM front-end of {self.guest.name} is not connected"
            )
        self.guest.require_running()
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self.ring.send_command(wire)
        if tracer._stack or tracer.keep_root():
            with tracer.start_span(
                "frontend.command", {"domid": self.guest.domid}
            ):
                return self.ring.send_command(wire)
        # Sampled-out root: hide the tracer for the whole tree so every
        # nested guarded site takes its free tracer-is-None path.
        obs_trace._current_tracer = None
        try:
            return self.ring.send_command(wire)
        finally:
            obs_trace._current_tracer = tracer

    def transport_batch(self, wires: list) -> list:
        """Send several TPM commands in one ring submission (one kick)."""
        if not self.connected:
            raise VtpmError(
                f"vTPM front-end of {self.guest.name} is not connected"
            )
        self.guest.require_running()
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self.ring.send_batch(wires)
        if tracer._stack or tracer.keep_root():
            with tracer.start_span(
                "frontend.batch",
                {"domid": self.guest.domid, "frames": len(wires)},
            ):
                return self.ring.send_batch(wires)
        obs_trace._current_tracer = None
        try:
            return self.ring.send_batch(wires)
        finally:
            obs_trace._current_tracer = tracer

    def close(self) -> None:
        self.xen.store.write(self.guest.domid, f"{self.device_path}/state", "6")
        self.ring.teardown()
        self.connected = False
