"""tpmback: the driver-domain half of the vTPM split driver.

Reads the front-end's ring parameters from XenStore, maps the grant, and
forwards each command to the manager **prefixed with an instance number**
— which in stock Xen is whatever the backend's configuration says.  That
configuration is exactly what the rogue re-binding attack edits, so the
backend exposes ``rebind`` to let the attack toolkit do what a compromised
Dom0 would do.  In the improved regime ``rebind`` fails closed: a new
instance number is accepted only if the target instance is bound to the
very identity this ring's front-end domain measures to.

A backend can additionally be placed under supervision
(:meth:`attach_supervision`): the supervisor then issues admission
verdicts at the ring, observes every forwarded command's outcome, and
drives quarantine/restart when the instance goes bad.  Unsupervised
backends keep the exact original behaviour.
"""

from __future__ import annotations

import functools

from repro.faults import injector as _injector
from repro.faults import with_retry
from repro.obs import trace as obs_trace
from repro.resilience.breaker import BreakerState
from repro.resilience.health import HealthState
from repro.sim import timing as _timing
from repro.sim.timing import get_context
from repro.util.errors import IdentityError, RetryExhausted, VtpmError
from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.manager import VtpmManager
from repro.xen.hypervisor import Xen


class VtpmBackend:
    """One back-end connection: (guest ring) → (manager, instance id)."""

    #: the owning :class:`~repro.resilience.supervisor.Supervisor`, if any
    supervision = None
    #: per-guest supervision objects, cached here by ``Supervisor.attach``
    #: so the per-command hooks skip the uuid dict lookups
    _sup_record = None
    _sup_breaker = None
    _sup_admission = None
    #: flattened per-instance admission constants (see Supervisor.attach)
    _sup_alpha = 0.0
    _sup_deadline_us = 0.0
    _sup_admit_fast = False

    def __init__(
        self,
        xen: Xen,
        manager: VtpmManager,
        frontend: VtpmFrontend,
        instance_id: int,
    ) -> None:
        self.xen = xen
        self.manager = manager
        self.frontend = frontend
        self.instance_id = instance_id
        self.front_domid = frontend.guest.domid
        # Read the handshake nodes, as the real driver does.
        ring_ref = int(xen.store.read(0, f"{frontend.device_path}/ring-ref",
                                      privileged=True))
        if ring_ref != frontend.ring.gref:
            raise VtpmError("xenstore ring-ref does not match the front-end ring")
        frontend.ring.connect_backend(self._forward, self._forward_batch)
        # Record the binding where xend kept it.
        xen.store.write(
            0,
            f"/local/domain/0/backend/vtpm/{self.front_domid}/0/instance",
            str(instance_id),
            privileged=True,
        )
        frontend.mark_connected()

    # -- supervision -------------------------------------------------------------

    def attach_supervision(self, supervisor) -> None:
        """Route this ring's frames through the supervisor's admission
        control and report every forwarded outcome back to it."""
        self.supervision = supervisor
        self.frontend.ring.set_admission(
            functools.partial(supervisor.admit, self),
            functools.partial(supervisor.admit_one, self),
        )

    # -- the forwarding path --------------------------------------------------------

    def _forward(self, wire: bytes) -> bytes:
        """Prefix the configured instance number and hand to the manager.

        ``front_domid`` comes from the ring itself (hypervisor ground
        truth); ``instance_id`` is backend configuration (attacker-editable
        in the baseline threat model).

        Transient faults below the manager (an aborted device transaction)
        abort the command *before* it touches TPM state, so the back-end
        resends the identical wire bytes with bounded virtual-time backoff
        — the real driver's interrupt-retry path.  The backoff is jittered
        per instance so a storm hitting many instances does not retry in
        lockstep.  A fault that outlives the budget degrades into a
        ``TPM_FAIL`` frame, never a dead ring.
        """
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self._forward_inner(wire)
        with tracer.start_span(
            "backend.forward", {"instance": self.instance_id}
        ):
            return self._forward_inner(wire)

    def _forward_inner(self, wire: bytes) -> bytes:
        supervisor = self.supervision
        # The latency clock read exists only for the supervisor's
        # deadline watchdog; the unsupervised hot path skips it.
        start_us = (
            _timing._current_context.clock._now_us
            if supervisor is not None else 0.0
        )
        if _injector._current_injector is None:
            # Fault-free fast path: handle_command can only raise an
            # injected fault through the ambient injector, so with no
            # injector installed the retry envelope (clock read, loop
            # frame, backoff bookkeeping) is pure overhead.
            response = self.manager.handle_command(
                self.front_domid, self.instance_id, wire,
                self.frontend.locality,
            )
            if supervisor is not None:
                elapsed_us = (
                    _timing._current_context.clock._now_us - start_us
                )
                record = self._sup_record
                breaker = self._sup_breaker
                if (
                    record is not None
                    and record.state is HealthState.HEALTHY
                    and breaker.state is BreakerState.CLOSED
                    and elapsed_us <= self._sup_deadline_us
                    and len(response) >= 10
                    and response.startswith(b"\x00\x00\x00\x00", 6)
                ):
                    # Inlined all-green observation (see
                    # Supervisor.observe_response): EWMA update plus the
                    # exact success-streak assignments the slow path makes
                    # when everything is healthy.
                    admission = self._sup_admission
                    alpha = self._sup_alpha
                    if alpha > 0.0:
                        admission.service_estimate_us += alpha * (
                            elapsed_us - admission.service_estimate_us
                        )
                    breaker.consecutive_failures = 0
                    record.consecutive_failures = 0
                    record.consecutive_successes += 1
                else:
                    supervisor.observe_response(
                        self, wire, response, elapsed_us
                    )
            return response
        try:
            response = with_retry(
                self.manager.handle_command,
                self.front_domid, self.instance_id, wire,
                self.frontend.locality,
                site="vtpm.backend.forward",
                jitter_token=self.instance_id,
            )
        except RetryExhausted as exc:
            if supervisor is not None:
                supervisor.on_exhausted(self, exc)
            return self.manager.fault_response(self.instance_id, exc)
        if supervisor is not None:
            supervisor.observe_response(
                self, wire, response,
                get_context().clock.now_us - start_us,
            )
        return response

    def _forward_batch(self, wires: list) -> list:
        """Hand a whole ring batch to the manager in one call.

        The manager applies the bounded-retry envelope per command inside
        the batch, so this path has the same fault-degradation behaviour
        as :meth:`_forward` — just one ``vtpm.dispatch`` demux for the lot.
        Under supervision each frame's outcome is observed with the
        batch-average latency (individual frames are not separately
        clocked inside one notify).
        """
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self._forward_batch_inner(wires)
        with tracer.start_span(
            "backend.forward_batch",
            {"instance": self.instance_id, "frames": len(wires)},
        ):
            return self._forward_batch_inner(wires)

    def _forward_batch_inner(self, wires: list) -> list:
        supervisor = self.supervision
        start_us = (
            get_context().clock.now_us if supervisor is not None else 0.0
        )
        responses = self.manager.handle_batch(
            self.front_domid, self.instance_id, wires,
            locality=self.frontend.locality,
        )
        if supervisor is not None and wires:
            per_frame_us = (
                get_context().clock.now_us - start_us
            ) / len(wires)
            for wire, response in zip(wires, responses):
                supervisor.observe_response(
                    self, wire, response, per_frame_us
                )
        return responses

    # -- re-binding (the attack knob, now fail-closed) -------------------------------

    def rebind(self, new_instance_id: int) -> None:
        """Point this connection at a different instance.

        This is the knob a compromised Dom0 turns in the rogue re-binding
        attack — and in the baseline regime it still works exactly that
        way.  When the target instance carries a measured-identity binding
        (improved regime), the backend re-checks it here: the ring's
        front-end domain must *currently measure* to the identity the
        target instance is bound to.  A mismatch raises — fail closed —
        and is reported to the monitor for the audit trail; the old
        binding stays in force.
        """
        manager = self.manager
        target = manager._instances.get(new_instance_id)
        if (
            target is not None
            and target.bound_identity_hex is not None
            and manager.identities is not None
        ):
            subject = f"dom{self.front_domid}"
            try:
                identity = manager.identities.verify_current(
                    self.frontend.guest
                )
                subject = identity.hex
            except IdentityError as exc:
                reason = (
                    f"rebind refused: instance {new_instance_id} is bound "
                    f"to identity {target.bound_identity_hex[:12]}… but the "
                    f"front-end identity is unverifiable: {exc}"
                )
                manager.monitor.on_rebind_denied(
                    subject, new_instance_id, reason
                )
                raise VtpmError(reason) from None
            if identity.hex != target.bound_identity_hex:
                reason = (
                    f"rebind refused: instance {new_instance_id} is bound "
                    f"to identity {target.bound_identity_hex[:12]}…, ring "
                    f"front-end dom{self.front_domid} measures to "
                    f"{identity.hex[:12]}…"
                )
                manager.monitor.on_rebind_denied(
                    subject, new_instance_id, reason
                )
                raise VtpmError(reason)
        self.instance_id = new_instance_id
        self.xen.store.write(
            0,
            f"/local/domain/0/backend/vtpm/{self.front_domid}/0/instance",
            str(new_instance_id),
            privileged=True,
        )
        if self.supervision is not None:
            self.supervision.on_rebind(self, new_instance_id)

    def disconnect(self) -> None:
        self.frontend.ring.disconnect_backend()


def attach_vtpm(
    xen: Xen, manager: VtpmManager, guest, backend_domid: int = 0,
    profile=None,
) -> tuple[VtpmFrontend, VtpmBackend]:
    """Full attach path: create instance, front-end, back-end, handshake."""
    instance = manager.create_instance(guest, profile=profile)
    frontend = VtpmFrontend(xen, guest, backend_domid)
    backend = VtpmBackend(xen, manager, frontend, instance.instance_id)
    return frontend, backend
