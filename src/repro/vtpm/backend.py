"""tpmback: the driver-domain half of the vTPM split driver.

Reads the front-end's ring parameters from XenStore, maps the grant, and
forwards each command to the manager **prefixed with an instance number**
— which in stock Xen is whatever the backend's configuration says.  That
configuration is exactly what the rogue re-binding attack edits, so the
backend exposes ``rebind`` to let the attack toolkit do what a compromised
Dom0 would do.
"""

from __future__ import annotations

from repro.faults import with_retry
from repro.obs import trace as obs_trace
from repro.util.errors import RetryExhausted, VtpmError
from repro.vtpm.frontend import VtpmFrontend
from repro.vtpm.manager import VtpmManager
from repro.xen.hypervisor import Xen


class VtpmBackend:
    """One back-end connection: (guest ring) → (manager, instance id)."""

    def __init__(
        self,
        xen: Xen,
        manager: VtpmManager,
        frontend: VtpmFrontend,
        instance_id: int,
    ) -> None:
        self.xen = xen
        self.manager = manager
        self.frontend = frontend
        self.instance_id = instance_id
        self.front_domid = frontend.guest.domid
        # Read the handshake nodes, as the real driver does.
        ring_ref = int(xen.store.read(0, f"{frontend.device_path}/ring-ref",
                                      privileged=True))
        if ring_ref != frontend.ring.gref:
            raise VtpmError("xenstore ring-ref does not match the front-end ring")
        frontend.ring.connect_backend(self._forward, self._forward_batch)
        # Record the binding where xend kept it.
        xen.store.write(
            0,
            f"/local/domain/0/backend/vtpm/{self.front_domid}/0/instance",
            str(instance_id),
            privileged=True,
        )
        frontend.mark_connected()

    def _forward(self, wire: bytes) -> bytes:
        """Prefix the configured instance number and hand to the manager.

        ``front_domid`` comes from the ring itself (hypervisor ground
        truth); ``instance_id`` is backend configuration (attacker-editable
        in the baseline threat model).

        Transient faults below the manager (an aborted device transaction)
        abort the command *before* it touches TPM state, so the back-end
        resends the identical wire bytes with bounded virtual-time backoff
        — the real driver's interrupt-retry path.  A fault that outlives
        the budget degrades into a ``TPM_FAIL`` frame, never a dead ring.
        """
        with obs_trace.span("backend.forward", instance=self.instance_id):
            try:
                return with_retry(
                    self.manager.handle_command,
                    self.front_domid, self.instance_id, wire,
                    self.frontend.locality,
                    site="vtpm.backend.forward",
                )
            except RetryExhausted as exc:
                return self.manager.fault_response(self.instance_id, exc)

    def _forward_batch(self, wires: list) -> list:
        """Hand a whole ring batch to the manager in one call.

        The manager applies the bounded-retry envelope per command inside
        the batch, so this path has the same fault-degradation behaviour
        as :meth:`_forward` — just one ``vtpm.dispatch`` demux for the lot.
        """
        with obs_trace.span(
            "backend.forward_batch", instance=self.instance_id,
            frames=len(wires),
        ):
            return self.manager.handle_batch(
                self.front_domid, self.instance_id, wires,
                locality=self.frontend.locality,
            )

    def rebind(self, new_instance_id: int) -> None:
        """Point this connection at a different instance (the attack knob)."""
        self.instance_id = new_instance_id
        self.xen.store.write(
            0,
            f"/local/domain/0/backend/vtpm/{self.front_domid}/0/instance",
            str(new_instance_id),
            privileged=True,
        )

    def disconnect(self) -> None:
        self.frontend.ring.disconnect_backend()


def attach_vtpm(
    xen: Xen, manager: VtpmManager, guest, backend_domid: int = 0,
    profile=None,
) -> tuple[VtpmFrontend, VtpmBackend]:
    """Full attach path: create instance, front-end, back-end, handshake."""
    instance = manager.create_instance(guest, profile=profile)
    frontend = VtpmFrontend(xen, guest, backend_domid)
    backend = VtpmBackend(xen, manager, frontend, instance.instance_id)
    return frontend, backend
