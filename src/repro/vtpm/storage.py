"""Persistent vTPM state storage: sealed, generation-stamped, crash-consistent.

The stock design writes each instance's state to a file in the manager
domain (``/var/vtpm/tpm<N>``) in **plaintext** — stealing the disk (or the
file) steals the guest's keys.  The improved design routes every blob
through the :class:`~repro.core.sealing.StateSealer`.

On top of either regime sits a crash-consistency layer: every save is a
new **generation file** (``vtpm-state-<uuid>.gen-<n>``) framed with a
magic, the generation number, the payload length and a SHA-256 checksum.
A save that dies mid-write (a torn write, an out-of-disk error, a manager
crash) leaves the previous generation untouched, so restore always yields
the latest *committed* state — never a corrupt blob.  Old generations are
pruned only after the replacement is fully on disk.

``DiskStore`` models the manager's filesystem, including the attacker's
view of it (raw bytes of every file) and the fault injector's grip on it
(torn writes, ENOSPC, transient read corruption).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Tuple

from repro.core.sealing import StateSealer
from repro.faults import FaultKind, fire, note_recovery, note_retry
from repro.sim.timing import charge, get_context
from repro.util.errors import FaultInjected, RetryExhausted, VtpmError

#: frame magic for generation-stamped state files
GEN_MAGIC = b"VTPMGEN1"
_GEN_HEADER = struct.Struct(">8sII")
_DIGEST_SIZE = 32

#: committed generations retained per instance (latest + one fallback)
KEEP_GENERATIONS = 2
#: write/read attempts against transient storage faults
STORAGE_ATTEMPTS = 3


class ChecksumMismatch(VtpmError):
    """A structurally complete generation frame failed its checksum —
    possibly transient corruption on the read path; worth a re-read."""


class DiskStore:
    """A flat name→bytes 'filesystem' with an attacker-visible raw view."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self.writes = 0
        self.reads = 0
        self.torn_writes = 0

    def write(self, name: str, data: bytes) -> None:
        event = fire("vtpm.storage.write", name=name, size=len(data))
        if event is not None and event.kind is FaultKind.STORAGE_ENOSPC:
            # Nothing hits the medium; the caller may garbage-collect and retry.
            event.raise_fault()
        if event is not None and event.kind is FaultKind.STORAGE_TORN_WRITE:
            # The write dies mid-flush: a deterministic prefix lands on disk.
            cut = max(1, (len(data) * (1 + event.seq % 3)) // 4)
            charge("vtpm.storage.write", cut)
            charge("fault.storage.torn")
            self._files[name] = bytes(data[:cut])
            self.writes += 1
            self.torn_writes += 1
            event.raise_fault()
        charge("vtpm.storage.write", len(data))
        self._files[name] = bytes(data)
        self.writes += 1

    def read(self, name: str) -> bytes:
        charge("vtpm.storage.read", len(self._files.get(name, b"")))
        try:
            data = self._files[name]
        except KeyError:
            raise VtpmError(f"no stored file {name!r}") from None
        self.reads += 1
        event = fire("vtpm.storage.read", name=name, size=len(data))
        if event is not None and event.kind is FaultKind.STORAGE_READ_CORRUPT and data:
            # Transient controller error: the returned copy has a flipped
            # byte; the medium itself is intact, so a re-read can heal.
            # The flip lands in the back half of the file — body, not
            # framing — so consumers see data corruption, not truncation.
            corrupted = bytearray(data)
            half = len(corrupted) // 2
            corrupted[half + event.seq % (len(corrupted) - half)] ^= 0x80
            return bytes(corrupted)
        return data

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def raw_contents(self) -> Dict[str, bytes]:
        """What a disk thief gets: every file, byte for byte (no charge —
        the thief copies the medium, not through the manager)."""
        return dict(self._files)


# -- generation framing ----------------------------------------------------------


def encode_generation(generation: int, payload: bytes) -> bytes:
    """Frame one payload: magic | gen | length | payload | SHA-256."""
    header = _GEN_HEADER.pack(GEN_MAGIC, generation, len(payload))
    charge("hash.sha256", len(payload))
    return header + payload + hashlib.sha256(header + payload).digest()


def decode_generation(raw: bytes, verify: bool = True) -> Tuple[int, bytes]:
    """Parse a generation frame; raises :class:`VtpmError` on torn/corrupt.

    Structural damage (short file, bad magic, truncated payload) means a
    torn write — the frame is unrecoverable.  A checksum mismatch on a
    structurally complete frame means corrupt data *in flight*, which a
    re-read may heal; callers distinguish via the error message.
    """
    if len(raw) < _GEN_HEADER.size + _DIGEST_SIZE:
        raise VtpmError("torn state file: shorter than frame header")
    magic, generation, length = _GEN_HEADER.unpack_from(raw)
    if magic != GEN_MAGIC:
        raise VtpmError("torn state file: bad magic")
    if len(raw) != _GEN_HEADER.size + length + _DIGEST_SIZE:
        raise VtpmError("torn state file: payload length mismatch")
    payload = raw[_GEN_HEADER.size:_GEN_HEADER.size + length]
    if verify:
        charge("hash.sha256", length)
        expected = hashlib.sha256(raw[: _GEN_HEADER.size + length]).digest()
        if raw[_GEN_HEADER.size + length:] != expected:
            raise ChecksumMismatch("corrupt state file: checksum mismatch")
    return generation, payload


def latest_raw_payload(files: Dict[str, bytes], vm_uuid: str) -> Optional[bytes]:
    """The attacker's (or a forensic tool's) view of a stolen disk image:
    the newest structurally complete state payload for one VM, with the
    generation frame stripped.  Checksums are not required — a thief will
    happily take slightly damaged loot."""
    prefix = f"vtpm-state-{vm_uuid}.gen-"
    best: Tuple[int, Optional[bytes]] = (-1, None)
    for name, raw in files.items():
        if not name.startswith(prefix):
            continue
        try:
            generation, payload = decode_generation(raw, verify=False)
        except VtpmError:
            continue
        if generation > best[0]:
            best = (generation, payload)
    return best[1]


class VtpmStorage:
    """State persistence for the manager: plaintext or sealed, always atomic."""

    def __init__(self, disk: DiskStore, sealer: Optional[StateSealer] = None) -> None:
        self.disk = disk
        self.sealer = sealer
        self.saves = 0
        self.recoveries = 0
        self.fallbacks = 0

    @staticmethod
    def _prefix(vm_uuid: str) -> str:
        return f"vtpm-state-{vm_uuid}.gen-"

    @classmethod
    def _gen_name(cls, vm_uuid: str, generation: int) -> str:
        return f"{cls._prefix(vm_uuid)}{generation:08d}"

    def generations(self, vm_uuid: str) -> List[int]:
        """On-disk generation numbers for one VM, ascending (incl. torn)."""
        prefix = self._prefix(vm_uuid)
        found = []
        for name in self.disk.list_files():
            if name.startswith(prefix):
                try:
                    found.append(int(name[len(prefix):]))
                except ValueError:
                    continue
        return sorted(found)

    # -- save ------------------------------------------------------------------

    def save_instance_state(
        self, vm_uuid: str, identity_hex: Optional[str], state: bytes
    ) -> str:
        """Persist one instance's state; returns the committed file name.

        The new generation is written beside its predecessors and older
        files are pruned only after the write fully lands — a crash at any
        point leaves the last committed generation restorable.  Transient
        faults (torn write, ENOSPC) are retried with virtual-time backoff;
        ENOSPC additionally garbage-collects stale generations first.
        """
        if self.sealer is not None:
            blob = self.sealer.seal_state(vm_uuid, identity_hex or "", state)
        else:
            blob = state  # stock behaviour: cleartext at rest
        existing = self.generations(vm_uuid)
        generation = (existing[-1] + 1) if existing else 1
        name = self._gen_name(vm_uuid, generation)
        frame = encode_generation(generation, blob)
        start_us = get_context().clock.now_us
        last: Optional[Exception] = None
        for attempt in range(STORAGE_ATTEMPTS):
            try:
                self.disk.write(name, frame)
            except FaultInjected as exc:
                if not exc.transient:
                    raise  # a hard crash mid-save; recovery happens at restore
                last = exc
                note_retry("vtpm.storage.save")
                if exc.kind == FaultKind.STORAGE_ENOSPC.value:
                    self._garbage_collect(vm_uuid, keep_from=generation)
                charge("fault.retry.backoff", 500.0 * (2.0 ** attempt))
                continue
            if last is not None:
                note_recovery(
                    "vtpm.storage.save", get_context().clock.now_us - start_us
                )
                self.recoveries += 1
            self._prune(vm_uuid, committed=generation)
            self.saves += 1
            return name
        raise RetryExhausted("vtpm.storage.save", STORAGE_ATTEMPTS, last or
                             VtpmError("storage write kept failing"))

    def _prune(self, vm_uuid: str, committed: int) -> None:
        """Drop generations older than the retention window.  Runs only
        after ``committed`` is fully on disk, so the invariant — at least
        one committed generation always present — holds through crashes."""
        for generation in self.generations(vm_uuid):
            if generation <= committed - KEEP_GENERATIONS:
                self.disk.delete(self._gen_name(vm_uuid, generation))

    def _garbage_collect(self, vm_uuid: str, keep_from: int) -> None:
        """ENOSPC recovery: reclaim every generation but the newest
        *restorable* one, then let the caller retry the write.  A torn
        leftover from an earlier failed save is reclaimed space, not a
        fallback — keeping it instead of a committed predecessor would
        let this GC delete the only recoverable copy."""
        kept = 0
        for generation in reversed(self.generations(vm_uuid)):
            if generation >= keep_from:
                continue
            name = self._gen_name(vm_uuid, generation)
            if kept == 0 and self._structurally_complete(name):
                kept += 1
                continue
            self.disk.delete(name)

    def _structurally_complete(self, name: str) -> bool:
        """Frame-level validity only (no checksum): torn files fail, but
        in-flight read corruption — which flips body bytes, never framing
        — cannot make a committed generation look reclaimable."""
        try:
            decode_generation(self.disk.read(name), verify=False)
        except VtpmError:
            return False
        return True

    # -- load ------------------------------------------------------------------

    def load_instance_state(
        self, vm_uuid: str, identity_hex: Optional[str]
    ) -> bytes:
        """Restore the newest committed state, healing what it can.

        Walks generations newest-first.  A checksum mismatch (transient
        read corruption) is re-read up to :data:`STORAGE_ATTEMPTS` times;
        a torn frame is skipped in favour of the previous generation.  The
        result is always a committed generation's exact payload — the
        crash-consistency contract the property tests pin down.
        """
        existing = self.generations(vm_uuid)
        if not existing:
            raise VtpmError(f"no stored state for VM {vm_uuid}")
        start_us = get_context().clock.now_us
        healed = False
        for generation in reversed(existing):
            name = self._gen_name(vm_uuid, generation)
            payload = self._read_generation(name)
            if payload is None:
                # Torn or unhealably corrupt: fall back one generation.
                self.fallbacks += 1
                healed = True
                continue
            if healed:
                note_recovery(
                    "vtpm.storage.load", get_context().clock.now_us - start_us
                )
                self.recoveries += 1
            if self.sealer is not None:
                return self.sealer.unseal_state(vm_uuid, identity_hex or "", payload)
            return payload
        raise VtpmError(
            f"no recoverable state generation for VM {vm_uuid} "
            f"({len(existing)} on disk, all torn or corrupt)"
        )

    def _read_generation(self, name: str) -> Optional[bytes]:
        """One generation file → payload, retrying transient corruption."""
        for attempt in range(STORAGE_ATTEMPTS):
            raw = self.disk.read(name)
            try:
                _generation, payload = decode_generation(raw)
            except ChecksumMismatch:
                if attempt + 1 < STORAGE_ATTEMPTS:
                    # In-flight corruption: the medium may still be good.
                    note_retry("vtpm.storage.load")
                    charge("fault.retry.backoff", 400.0 * (2.0 ** attempt))
                    continue
                return None
            except VtpmError:
                return None  # torn frame: no amount of re-reading helps
            return payload
        return None

    # -- bookkeeping ------------------------------------------------------------

    def delete_instance_state(self, vm_uuid: str) -> None:
        for generation in self.generations(vm_uuid):
            self.disk.delete(self._gen_name(vm_uuid, generation))

    def has_state(self, vm_uuid: str) -> bool:
        return bool(self.generations(vm_uuid))
