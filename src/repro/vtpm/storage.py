"""Persistent vTPM state storage.

The stock design writes each instance's state to a file in the manager
domain (``/var/vtpm/tpm<N>``) in **plaintext** — stealing the disk (or the
file) steals the guest's keys.  The improved design routes every blob
through the :class:`~repro.core.sealing.StateSealer`.

``DiskStore`` models the manager's filesystem, including the attacker's
view of it (raw bytes of every file).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.sealing import StateSealer
from repro.sim.timing import charge
from repro.util.errors import VtpmError


class DiskStore:
    """A flat name→bytes 'filesystem' with an attacker-visible raw view."""

    def __init__(self) -> None:
        self._files: Dict[str, bytes] = {}
        self.writes = 0
        self.reads = 0

    def write(self, name: str, data: bytes) -> None:
        charge("vtpm.storage.write", len(data))
        self._files[name] = bytes(data)
        self.writes += 1

    def read(self, name: str) -> bytes:
        charge("vtpm.storage.read", len(self._files.get(name, b"")))
        try:
            data = self._files[name]
        except KeyError:
            raise VtpmError(f"no stored file {name!r}") from None
        self.reads += 1
        return data

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def raw_contents(self) -> Dict[str, bytes]:
        """What a disk thief gets: every file, byte for byte (no charge —
        the thief copies the medium, not through the manager)."""
        return dict(self._files)


class VtpmStorage:
    """State persistence for the manager: plaintext or sealed."""

    def __init__(self, disk: DiskStore, sealer: Optional[StateSealer] = None) -> None:
        self.disk = disk
        self.sealer = sealer

    @staticmethod
    def _file_name(vm_uuid: str) -> str:
        return f"vtpm-state-{vm_uuid}"

    def save_instance_state(
        self, vm_uuid: str, identity_hex: Optional[str], state: bytes
    ) -> str:
        """Persist one instance's state; returns the file name."""
        name = self._file_name(vm_uuid)
        if self.sealer is not None:
            blob = self.sealer.seal_state(vm_uuid, identity_hex or "", state)
        else:
            blob = state  # stock behaviour: cleartext at rest
        self.disk.write(name, blob)
        return name

    def load_instance_state(
        self, vm_uuid: str, identity_hex: Optional[str]
    ) -> bytes:
        name = self._file_name(vm_uuid)
        blob = self.disk.read(name)
        if self.sealer is not None:
            return self.sealer.unseal_state(vm_uuid, identity_hex or "", blob)
        return blob

    def delete_instance_state(self, vm_uuid: str) -> None:
        self.disk.delete(self._file_name(vm_uuid))

    def has_state(self, vm_uuid: str) -> bool:
        return self.disk.exists(self._file_name(vm_uuid))
