"""Key derivation for the sealing layer.

A simple HKDF-style extract-and-expand over HMAC-SHA256.  Used to derive the
per-instance vTPM state-encryption keys from the manager's root secret plus
the owning domain's identity measurement — so a state blob can only be
decrypted for (and by) the correct identity.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.sim.timing import charge
from repro.util.errors import CryptoError


def derive_key(secret: bytes, salt: bytes, info: bytes, length: int = 32) -> bytes:
    """HKDF-SHA256 extract-and-expand (RFC 5869 construction)."""
    if length <= 0 or length > 255 * 32:
        raise CryptoError(f"cannot derive {length} bytes")
    charge("ac.seal.derive")
    charge("mac.hmac", len(secret))
    prk = _hmac.new(salt or b"\x00" * 32, secret, "sha256").digest()
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        charge("mac.hmac", len(block) + len(info) + 1)
        block = _hmac.new(prk, block + info + bytes([counter]), "sha256").digest()
        okm += block
        counter += 1
    return okm[:length]


def fingerprint(data: bytes) -> bytes:
    """Cheap stable 16-byte identifier for blobs (not charged: test helper)."""
    return hashlib.sha256(data).digest()[:16]
