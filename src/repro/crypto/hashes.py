"""Hash functions with virtual-time accounting.

TPM 1.2 is a SHA-1 device (PCRs, auth HMACs, signatures all use SHA-1); the
access-control layer uses SHA-256 for identity measurements and state
sealing.  Both wrappers charge the cost model per input byte.
"""

from __future__ import annotations

import hashlib

from repro.sim.timing import charge

SHA1_SIZE = 20
SHA256_SIZE = 32

#: digest sizes by algorithm name, used by marshalling code
HASH_SIZES = {"sha1": SHA1_SIZE, "sha256": SHA256_SIZE}


def sha1(data: bytes) -> bytes:
    """SHA-1 digest (the TPM 1.2 hash)."""
    charge("hash.sha1", len(data))
    return hashlib.sha1(data).digest()


def sha256(data: bytes) -> bytes:
    """SHA-256 digest (identity measurement / sealing hash)."""
    charge("hash.sha256", len(data))
    return hashlib.sha256(data).digest()


def sha1_hex(data: bytes) -> str:
    """Hex form of :func:`sha1` (log- and XenStore-friendly)."""
    return sha1(data).hex()


def sha256_hex(data: bytes) -> str:
    """Hex form of :func:`sha256`."""
    return sha256(data).hex()
