"""Crypto substrate for the TPM emulator and the access-control layer.

Everything is implemented on the Python standard library (``hashlib``) plus
a pure-Python RSA — no external crypto dependency.  All primitives charge
their cost to the ambient :mod:`repro.sim.timing` context, so virtual-time
results reflect crypto work without depending on host speed.

Randomness is deterministic: every consumer draws from a seeded
:class:`~repro.crypto.random_source.RandomSource` (a SHA-256 counter DRBG),
making whole experiments bit-reproducible.
"""

from repro.crypto.hashes import sha1, sha256, HASH_SIZES
from repro.crypto.hmac_util import hmac_sha1, hmac_sha256, constant_time_equal
from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.symmetric import SymmetricKey, EncryptedBlob
from repro.crypto.kdf import derive_key

__all__ = [
    "sha1",
    "sha256",
    "HASH_SIZES",
    "hmac_sha1",
    "hmac_sha256",
    "constant_time_equal",
    "RandomSource",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "SymmetricKey",
    "EncryptedBlob",
    "derive_key",
]
