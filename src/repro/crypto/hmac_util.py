"""HMAC and constant-time comparison.

TPM 1.2 authorization (OIAP/OSAP) proves knowledge of an AuthData secret by
HMAC-SHA1 over the command digest and session nonces; the vTPM storage layer
integrity-protects sealed state with HMAC-SHA256.
"""

from __future__ import annotations

import hmac as _hmac

from repro.sim.timing import charge


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA1 (TPM 1.2 authorization MAC)."""
    charge("mac.hmac", len(data))
    return _hmac.new(key, data, "sha1").digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 (state-integrity MAC)."""
    charge("mac.hmac", len(data))
    return _hmac.new(key, data, "sha256").digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe equality, as a real TPM must use for auth digests."""
    return _hmac.compare_digest(a, b)
