"""Pure-Python RSA with PKCS#1 v1.5 signing and encryption.

The TPM 1.2 key hierarchy (EK, SRK, AIKs, storage and signing keys) is RSA.
This module provides key generation (Miller-Rabin primes), CRT-accelerated
private operations, EMSA-PKCS1-v1_5 signatures over SHA-1 digests (what a
TPM 1.2 emits for quotes and TPM_Sign) and EME-PKCS1-v1_5 encryption (what
seals/binds use).

Virtual-time cost is charged by the key's *declared* size class, so
experiments can simulate 2048-bit timing even when tests run small keys for
host speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.random_source import RandomSource
from repro.sim.timing import charge
from repro.util.errors import CryptoError

# ASN.1 DigestInfo prefix for SHA-1 (RFC 3447 section 9.2 notes).
_SHA1_DIGEST_INFO = bytes.fromhex("3021300906052b0e03021a05000414")

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
]

PUBLIC_EXPONENT = 65537


def _is_probable_prime(n: int, rng: RandomSource, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with random bases."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rng.randint_below(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: RandomSource) -> int:
    """Random prime of exactly ``bits`` bits, coprime to the public exponent."""
    while True:
        candidate = rng.randint_bits(bits) | 1
        if candidate % PUBLIC_EXPONENT == 1:
            continue  # would make e non-invertible mod p-1
        if _is_probable_prime(candidate, rng):
            return candidate


def _size_class(bits: int) -> str:
    """Timing size class: everything ≤1024 bills as 1024, else as 2048."""
    return "1024" if bits <= 1024 else "2048"


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public half: modulus ``n`` and exponent ``e``."""

    n: int
    e: int
    bits: int

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    def modulus_bytes(self) -> bytes:
        return self.n.to_bytes(self.byte_length, "big")

    def fingerprint(self) -> bytes:
        """SHA-256 of the modulus — used as a stable key identifier."""
        import hashlib

        return hashlib.sha256(self.modulus_bytes()).digest()

    # -- raw operations -----------------------------------------------------

    def _encrypt_int(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise CryptoError("plaintext representative out of range")
        return pow(m, self.e, self.n)

    # -- PKCS#1 v1.5 --------------------------------------------------------

    def verify_sha1(self, digest: bytes, signature: bytes) -> bool:
        """Verify an EMSA-PKCS1-v1_5 SHA-1 signature; False on any mismatch."""
        if len(digest) != 20:
            raise CryptoError(f"SHA-1 digest must be 20 bytes, got {len(digest)}")
        charge(f"rsa.verify.{_size_class(self.bits)}")
        if len(signature) != self.byte_length:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n).to_bytes(self.byte_length, "big")
        expected = _emsa_pkcs1_v15(digest, self.byte_length)
        return em == expected

    def encrypt(self, plaintext: bytes, rng: RandomSource) -> bytes:
        """EME-PKCS1-v1_5 encryption (TPM_ES_RSAESPKCSv15)."""
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise CryptoError(
                f"plaintext of {len(plaintext)} bytes exceeds max {k - 11} "
                f"for a {self.bits}-bit key"
            )
        charge(f"rsa.verify.{_size_class(self.bits)}")  # public op ≈ verify cost
        padding = b""
        while len(padding) < k - 3 - len(plaintext):
            # PS bytes must be nonzero.
            chunk = rng.bytes(k)
            padding += bytes(b for b in chunk if b != 0)
        padding = padding[: k - 3 - len(plaintext)]
        em = b"\x00\x02" + padding + b"\x00" + plaintext
        c = self._encrypt_int(int.from_bytes(em, "big"))
        return c.to_bytes(k, "big")


@dataclass(frozen=True)
class RsaKeyPair:
    """Full RSA key: public half plus CRT private material."""

    public: RsaPublicKey
    d: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        return self.public.bits

    # CRT exponents, computed lazily and memoized (the dataclass is frozen,
    # so derived values are smuggled into __dict__ via object.__setattr__ —
    # they are pure functions of the immutable fields).

    def _crt_params(self) -> tuple:
        cached = self.__dict__.get("_crt")
        if cached is None:
            cached = (
                self.d % (self.p - 1),
                self.d % (self.q - 1),
                pow(self.q, -1, self.p),
            )
            object.__setattr__(self, "_crt", cached)
        return cached

    def _private_op(self, c: int) -> int:
        if not 0 <= c < self.public.n:
            raise CryptoError("ciphertext representative out of range")
        dp, dq, qinv = self._crt_params()
        m1 = pow(c, dp, self.p)
        m2 = pow(c, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def sign_sha1(self, digest: bytes) -> bytes:
        """EMSA-PKCS1-v1_5 signature over a SHA-1 digest."""
        if len(digest) != 20:
            raise CryptoError(f"SHA-1 digest must be 20 bytes, got {len(digest)}")
        charge(f"rsa.sign.{_size_class(self.bits)}")
        k = self.public.byte_length
        em = _emsa_pkcs1_v15(digest, k)
        s = self._private_op(int.from_bytes(em, "big"))
        return s.to_bytes(k, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """EME-PKCS1-v1_5 decryption; raises :class:`CryptoError` on bad padding."""
        k = self.public.byte_length
        if len(ciphertext) != k:
            raise CryptoError(f"ciphertext must be {k} bytes, got {len(ciphertext)}")
        charge(f"rsa.sign.{_size_class(self.bits)}")  # private op ≈ sign cost
        em = self._private_op(int.from_bytes(ciphertext, "big")).to_bytes(k, "big")
        if em[0:2] != b"\x00\x02":
            raise CryptoError("PKCS#1 v1.5 decryption failure (bad header)")
        try:
            sep = em.index(b"\x00", 2)
        except ValueError:
            raise CryptoError("PKCS#1 v1.5 decryption failure (no separator)") from None
        if sep < 10:
            raise CryptoError("PKCS#1 v1.5 decryption failure (short padding)")
        return em[sep + 1 :]

    def serialize_private(self) -> bytes:
        """Private material as bytes (what a memory-dump attacker hunts for).

        Memoized: the key is immutable, and the manager re-serializes loaded
        keys on every state sync, so this sits on the per-command hot path.
        """
        cached = self.__dict__.get("_serialized")
        if cached is not None:
            return cached
        from repro.util.bytesio import ByteWriter

        w = ByteWriter()
        w.u32(self.public.bits)
        for value in (self.public.n, self.public.e, self.d, self.p, self.q):
            blob = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
            w.sized(blob)
        result = w.getvalue()
        object.__setattr__(self, "_serialized", result)
        return result

    @staticmethod
    def deserialize_private(data: bytes) -> "RsaKeyPair":
        from repro.util.bytesio import ByteReader

        r = ByteReader(data)
        bits = r.u32()
        n, e, d, p, q = (int.from_bytes(r.sized(), "big") for _ in range(5))
        r.expect_end()
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e, bits=bits), d=d, p=p, q=q)


def _emsa_pkcs1_v15(digest: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-1 digest."""
    t = _SHA1_DIGEST_INFO + digest
    if em_len < len(t) + 11:
        raise CryptoError(f"modulus too small for EMSA-PKCS1-v1_5 ({em_len} bytes)")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def generate_keypair(bits: int, rng: RandomSource) -> RsaKeyPair:
    """Generate an RSA key pair of ``bits`` modulus bits.

    ``bits`` ≥ 512; tests use small keys for host speed, while virtual-time
    cost is charged for the declared size class regardless.
    """
    if bits < 512:
        raise CryptoError(f"refusing to generate RSA keys under 512 bits ({bits})")
    if bits % 2 != 0:
        raise CryptoError(f"key size must be even, got {bits}")
    charge("rsa.keygen.2048")
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible; pick new primes
        public = RsaPublicKey(n=n, e=PUBLIC_EXPONENT, bits=bits)
        return RsaKeyPair(public=public, d=d, p=p, q=q)
