"""Authenticated symmetric encryption for vTPM state at rest.

The real implementation would use AES; with no crypto dependency available
we build a CTR-mode stream cipher from SHA-256 (keystream block ``i`` is
``SHA256(key || nonce || i)``) plus an encrypt-then-MAC HMAC-SHA256 tag.
This is a standard, sound construction for a *simulation substrate*: secrecy
rests on SHA-256 preimage resistance and integrity on HMAC.  Virtual-time
cost is charged at bulk-cipher rates so timing matches an AES deployment.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct
from dataclasses import dataclass

from repro.crypto.random_source import RandomSource
from repro.sim.timing import charge
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import CryptoError

KEY_SIZE = 32
NONCE_SIZE = 16
TAG_SIZE = 32


@dataclass(frozen=True)
class EncryptedBlob:
    """Wire form of an encrypted payload: nonce || ciphertext || tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(self.nonce)
        w.sized(self.ciphertext)
        w.raw(self.tag)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "EncryptedBlob":
        r = ByteReader(data)
        nonce = r.raw(NONCE_SIZE)
        ciphertext = r.sized(max_size=1 << 26)
        tag = r.raw(TAG_SIZE)
        r.expect_end()
        return EncryptedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)


class SymmetricKey:
    """A 256-bit key offering authenticated encrypt/decrypt."""

    def __init__(self, key: bytes) -> None:
        if len(key) != KEY_SIZE:
            raise CryptoError(f"symmetric key must be {KEY_SIZE} bytes, got {len(key)}")
        self._key = bytes(key)
        # Independent MAC key derived from the cipher key (EtM separation).
        self._mac_key = hashlib.sha256(b"mac" + self._key).digest()

    @staticmethod
    def generate(rng: RandomSource) -> "SymmetricKey":
        return SymmetricKey(rng.bytes(KEY_SIZE))

    def key_bytes(self) -> bytes:
        """Raw key material (needed for sealing the key into the TPM)."""
        return self._key

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for i in range((length + 31) // 32):
            blocks.append(
                hashlib.sha256(self._key + nonce + struct.pack(">Q", i)).digest()
            )
        return b"".join(blocks)[:length]

    def encrypt(self, plaintext: bytes, rng: RandomSource) -> EncryptedBlob:
        """Encrypt-then-MAC; a fresh nonce is drawn per call."""
        charge("cipher.sym", len(plaintext))
        nonce = rng.bytes(NONCE_SIZE)
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
        charge("mac.hmac", len(ciphertext))
        tag = _hmac.new(self._mac_key, nonce + ciphertext, "sha256").digest()
        return EncryptedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)

    def decrypt(self, blob: EncryptedBlob) -> bytes:
        """Verify the tag then decrypt; raises :class:`CryptoError` on tamper."""
        charge("mac.hmac", len(blob.ciphertext))
        expected = _hmac.new(
            self._mac_key, blob.nonce + blob.ciphertext, "sha256"
        ).digest()
        if not _hmac.compare_digest(expected, blob.tag):
            raise CryptoError("authentication tag mismatch (tampered or wrong key)")
        charge("cipher.sym", len(blob.ciphertext))
        stream = self._keystream(blob.nonce, len(blob.ciphertext))
        return bytes(a ^ b for a, b in zip(blob.ciphertext, stream))
