"""Deterministic randomness: a SHA-256 counter DRBG.

The real TPM has a hardware entropy source; for reproducibility every random
draw in the simulation (nonces, keys, workload arrival jitter) comes from a
seeded DRBG.  Output blocks are ``SHA256(state || counter)``; reseeding mixes
new material into the state, mirroring NIST SP 800-90A Hash-DRBG in spirit
(not a certified implementation — this is a simulation substrate).
"""

from __future__ import annotations

import hashlib
import struct

from repro.sim.timing import charge
from repro.util.errors import CryptoError


class RandomSource:
    """Seeded deterministic random generator.

    Parameters
    ----------
    seed:
        Bytes or int seed.  Two sources with the same seed produce the same
        stream forever, which is what makes experiments reproducible.
    """

    BLOCK = 32  # SHA-256 output size

    def __init__(self, seed: bytes | int = 0) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        if not isinstance(seed, (bytes, bytearray)):
            raise CryptoError(f"seed must be bytes or int, got {type(seed).__name__}")
        self._state = hashlib.sha256(b"repro-drbg-v1" + bytes(seed)).digest()
        self._counter = 0
        self._pool = b""
        self.bytes_generated = 0

    def fork(self, label: str) -> "RandomSource":
        """Derive an independent child stream (per-domain / per-component)."""
        return RandomSource(self._state + label.encode("utf-8"))

    def reseed(self, material: bytes) -> None:
        """Mix additional entropy material into the state."""
        self._state = hashlib.sha256(self._state + material).digest()
        self._pool = b""

    def bytes(self, count: int) -> bytes:
        """Return ``count`` deterministic pseudo-random bytes."""
        if count < 0:
            raise CryptoError(f"cannot draw {count} bytes")
        charge("rng.bytes", count)
        while len(self._pool) < count:
            block = hashlib.sha256(
                self._state + struct.pack(">Q", self._counter)
            ).digest()
            self._counter += 1
            self._pool += block
        out, self._pool = self._pool[:count], self._pool[count:]
        self.bytes_generated += count
        return out

    def nonce(self) -> bytes:
        """A 20-byte TPM nonce."""
        return self.bytes(20)

    def randint_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError(f"bound must be positive, got {bound}")
        nbytes = (bound.bit_length() + 7) // 8
        # Rejection sampling keeps the distribution exactly uniform.
        while True:
            candidate = int.from_bytes(self.bytes(nbytes), "big")
            candidate >>= max(0, nbytes * 8 - bound.bit_length())
            if candidate < bound:
                return candidate

    def randint_bits(self, bits: int) -> int:
        """Uniform integer with exactly ``bits`` bits (top bit set)."""
        if bits < 2:
            raise CryptoError(f"need at least 2 bits, got {bits}")
        raw = int.from_bytes(self.bytes((bits + 7) // 8), "big")
        raw &= (1 << bits) - 1
        raw |= 1 << (bits - 1)
        return raw

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)`` (workload jitter)."""
        if high < low:
            raise CryptoError(f"empty interval [{low}, {high})")
        frac = int.from_bytes(self.bytes(7), "big") / float(1 << 56)
        return low + (high - low) * frac

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival sample with the given rate (per us)."""
        import math

        if rate <= 0:
            raise CryptoError(f"rate must be positive, got {rate}")
        u = self.uniform(0.0, 1.0)
        # Guard the log: u == 0 has probability ~2^-56 but be safe anyway.
        u = max(u, 1e-18)
        return -math.log(u) / rate

    def choice(self, seq):
        """Pick one element of a non-empty sequence."""
        if not seq:
            raise CryptoError("choice from empty sequence")
        return seq[self.randint_below(len(seq))]

    def shuffle(self, items: list) -> list:
        """In-place Fisher-Yates shuffle; returns the list for chaining."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint_below(i + 1)
            items[i], items[j] = items[j], items[i]
        return items
