"""Virtual clock: the single source of time for the whole simulation."""

from __future__ import annotations

from repro.util.errors import SimulationError


class VirtualClock:
    """Monotonic virtual clock measured in microseconds.

    The clock only moves forward.  Components *charge* durations to it for
    sequential work; the event engine *sets* it when it dispatches events.
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise SimulationError(f"clock cannot start at negative time {start_us}")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_us / 1000.0

    def advance(self, delta_us: float) -> float:
        """Move the clock forward by ``delta_us`` microseconds.

        Returns the new time.  Negative deltas are a programming error.
        """
        if delta_us < 0:
            raise SimulationError(f"cannot advance clock by negative {delta_us}us")
        self._now_us += delta_us
        return self._now_us

    def jump_to(self, when_us: float) -> float:
        """Set the clock to an absolute time, which must not be in the past."""
        if when_us < self._now_us:
            raise SimulationError(
                f"cannot jump clock backwards: {when_us} < {self._now_us}"
            )
        self._now_us = when_us
        return self._now_us

    def __repr__(self) -> str:
        return f"VirtualClock(now_us={self._now_us:.3f})"
