"""Cost model and time-charging machinery.

Every operation with a performance consequence — a hash, an RSA signature, a
hypercall, a ring transfer, a policy lookup — is *charged* by name through
:func:`charge`.  The active :class:`CostModel` converts (operation, units)
into virtual microseconds; the ambient clock advances; and any open
:class:`CostLedger` scopes record the charge so experiments can break total
latency down by component (Table 4 ablation).

The default cost table is calibrated to published 2010-era numbers for a
software vTPM on a Xen host (Core 2-class server, OpenSSL software crypto,
Xen 3.x microbenchmarks).  Absolute values only set the scale; the
experiments report *relative* overheads, which depend on the ratios.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.sim.clock import VirtualClock
from repro.util.errors import SimulationError

# (fixed microseconds per call, microseconds per unit) — unit is op-specific:
# bytes for bulk ops, entries for lookups, 1 for fixed-cost ops.
_DEFAULT_COSTS: Dict[str, Tuple[float, float]] = {
    # -- crypto (software, 2010-era server core) ---------------------------
    "hash.sha1": (0.9, 0.0042),            # ~10.5 cycles/byte @ 2.5 GHz
    "hash.sha256": (1.0, 0.0062),          # ~15.5 cycles/byte
    "mac.hmac": (2.2, 0.0065),             # two hash passes + key schedule
    "cipher.sym": (1.1, 0.0080),           # AES-128-CBC-class bulk cipher
    "rsa.sign.1024": (0.0, 0.0),           # per-call costs below (units=1)
    "rsa.sign.2048": (0.0, 0.0),
    "rsa.verify.1024": (0.0, 0.0),
    "rsa.verify.2048": (0.0, 0.0),
    "rsa.keygen.2048": (0.0, 0.0),
    "rng.bytes": (0.6, 0.05),              # PRNG reseed amortised
    # -- Xen substrate ------------------------------------------------------
    "xen.hypercall": (0.45, 0.0),
    "xen.evtchn.notify": (1.1, 0.0),
    "xen.grant.map": (0.75, 0.0),
    "xen.grant.unmap": (0.70, 0.0),
    "xen.page.copy": (0.25, 0.00025),      # per byte; 4 KiB ~ 1.3 us
    "xen.ring.transfer": (0.8, 0.0011),    # shared-ring copy per byte
    "xen.ctx.switch": (3.0, 0.0),
    "xen.xenstore.op": (48.0, 0.0),        # RPC bounce through Dom0 daemon
    "xen.domain.build": (210_000.0, 0.0),  # domain creation path (~210 ms)
    # -- vTPM subsystem -----------------------------------------------------
    "vtpm.dispatch": (4.5, 0.0),           # manager packet demux + thread hop
    "vtpm.instance.lookup": (0.5, 0.0),
    "vtpm.instance.create": (950.0, 0.0),  # state init excl. crypto charges
    "vtpm.storage.write": (7800.0, 0.00055),  # HDD-era flush + per byte
    "vtpm.storage.read": (5200.0, 0.00045),
    "vtpm.migration.net": (120.0, 0.0105),    # per byte on GbE w/ setup
    # -- fault injection & recovery -----------------------------------------
    "fault.ring.stall": (4_000.0, 0.0),      # late kick: scheduler-tick class delay
    "fault.ring.timeout": (10_000.0, 0.0),   # tpmfront waits this long before re-kick
    "fault.retry.backoff": (0.0, 1.0),       # units = microseconds of backoff slept
    "fault.storage.torn": (1_100.0, 0.0),    # partial flush before the cut
    "fault.device.transient": (55.0, 0.0),   # aborted bus transaction
    "fault.device.wedge": (30_000.0, 0.0),   # wedged command: driver-timeout-class hang
    "vtpm.migration.retry": (6_500.0, 0.0),  # tear down + rebuild one transfer attempt
    # -- supervision (resilience layer; charges only on the fault path) -----
    "supervisor.wait": (0.0, 1.0),           # units = microseconds waited for a probe window
    "supervisor.restart": (1_500.0, 0.0),    # teardown + re-verify bookkeeping per restart
    # -- access-control layer (the contribution) ----------------------------
    "ac.identity.check": (0.35, 0.0),      # cached measurement compare
    "ac.identity.measure": (2.0, 0.0),     # plus explicit hash charges
    "ac.policy.lookup": (0.55, 0.0),       # hash-table rule match
    "ac.policy.cache_hit": (0.08, 0.0),    # epoch check + decision-cache hit
    "ac.policy.compile": (2.5, 0.9),       # per rule, build-time only
    "ac.audit.append": (1.4, 0.0008),      # buffered append per byte
    "ac.seal.derive": (3.0, 0.0),          # KDF invocation bookkeeping
    # -- TPM command fixed costs (software TPM execution overhead) ----------
    "tpm.cmd.base": (14.0, 0.0),           # parse + dispatch + build reply
    "tpm.pcr.extend": (0.8, 0.0),
    "tpm.nv.access": (2.0, 0.0),
}

# Per-call costs for RSA, charged with units=1 (microseconds per operation).
_RSA_CALL_US = {
    "rsa.sign.1024": 1_450.0,
    "rsa.sign.2048": 4_900.0,
    "rsa.verify.1024": 65.0,
    "rsa.verify.2048": 140.0,
    "rsa.keygen.2048": 165_000.0,
}


class CostModel:
    """Maps named operations to virtual-time costs.

    Parameters
    ----------
    overrides:
        Optional ``{op: (fixed_us, per_unit_us)}`` replacing defaults.
    cpu_scale:
        Multiplier applied to every cost (``0.5`` = a CPU twice as fast).
    """

    def __init__(
        self,
        overrides: Optional[Dict[str, Tuple[float, float]]] = None,
        cpu_scale: float = 1.0,
    ) -> None:
        if cpu_scale <= 0:
            raise SimulationError(f"cpu_scale must be positive, got {cpu_scale}")
        self._table: Dict[str, Tuple[float, float]] = dict(_DEFAULT_COSTS)
        for op, per_call in _RSA_CALL_US.items():
            self._table[op] = (0.0, per_call)
        if overrides:
            self._table.update(overrides)
        self.cpu_scale = cpu_scale
        # Pre-scaled (fixed, per-unit) tuples: the hot path is one dict
        # lookup plus a multiply-add, with no per-call scaling arithmetic.
        self._scaled: Dict[str, Tuple[float, float]] = {
            op: (fixed * cpu_scale, per_unit * cpu_scale)
            for op, (fixed, per_unit) in self._table.items()
        }

    def known_ops(self) -> frozenset[str]:
        return frozenset(self._table)

    def cost_us(self, op: str, units: float = 1.0) -> float:
        """Virtual microseconds for one call of ``op`` over ``units`` units."""
        try:
            fixed, per_unit = self._scaled[op]
        except KeyError:
            raise SimulationError(f"unknown cost-model operation {op!r}") from None
        if units < 0:
            raise SimulationError(f"negative units {units} for {op!r}")
        return fixed + per_unit * units


@dataclass
class CostLedger:
    """Accumulates charges, grouped by operation name.

    Used for the ablation breakdown: open a ledger scope around a component
    and read back exactly what that component cost.
    """

    name: str = "ledger"
    total_us: float = 0.0
    calls: Dict[str, int] = field(default_factory=dict)
    cost_by_op: Dict[str, float] = field(default_factory=dict)

    def record(self, op: str, cost_us: float) -> None:
        self.total_us += cost_us
        self.calls[op] = self.calls.get(op, 0) + 1
        self.cost_by_op[op] = self.cost_by_op.get(op, 0.0) + cost_us

    def cost_for_prefix(self, prefix: str) -> float:
        """Total cost of all ops whose name starts with ``prefix``."""
        return sum(c for op, c in self.cost_by_op.items() if op.startswith(prefix))

    def reset(self) -> None:
        self.total_us = 0.0
        self.calls.clear()
        self.cost_by_op.clear()


class TimingContext:
    """The ambient (model, clock, ledger-stack) triple used by :func:`charge`.

    The simulation is single-threaded, so a module-level current context is
    safe and saves plumbing a handle through every substrate call.
    """

    def __init__(self, model: Optional[CostModel] = None,
                 clock: Optional[VirtualClock] = None) -> None:
        self.model = model or CostModel()
        self.clock = clock or VirtualClock()
        self._ledgers: list[CostLedger] = []

    def charge(self, op: str, units: float = 1.0) -> float:
        """Charge one operation: advance the clock, feed open ledgers.

        This is the hottest function in the simulator (a dozen-plus calls
        per vTPM command), so it reads the pre-scaled cost tuple directly
        and only walks the ledger stack when a scope is actually open.
        """
        try:
            fixed, per_unit = self.model._scaled[op]
        except KeyError:
            raise SimulationError(f"unknown cost-model operation {op!r}") from None
        if units < 0:
            raise SimulationError(f"negative units {units} for {op!r}")
        cost = fixed + per_unit * units
        if cost < 0:
            raise SimulationError(f"negative cost {cost} for {op!r}")
        self.clock._now_us += cost
        if self._ledgers:
            for ledger in self._ledgers:
                ledger.record(op, cost)
        return cost

    def push_ledger(self, ledger: CostLedger) -> None:
        self._ledgers.append(ledger)

    def pop_ledger(self) -> CostLedger:
        if not self._ledgers:
            raise SimulationError("ledger stack underflow")
        return self._ledgers.pop()


_current_context = TimingContext()


def set_context(ctx: TimingContext) -> TimingContext:
    """Install ``ctx`` as the ambient timing context; returns the previous one."""
    global _current_context
    previous = _current_context
    _current_context = ctx
    return previous


def get_context() -> TimingContext:
    return _current_context


def charge(op: str, units: float = 1.0) -> float:
    """Charge an operation against the ambient context (main entry point).

    Inlines :meth:`TimingContext.charge` (rather than delegating) to save
    a call frame: this is the single hottest function in the simulator.
    """
    ctx = _current_context
    try:
        fixed, per_unit = ctx.model._scaled[op]
    except KeyError:
        raise SimulationError(f"unknown cost-model operation {op!r}") from None
    if units < 0:
        raise SimulationError(f"negative units {units} for {op!r}")
    cost = fixed + per_unit * units
    if cost < 0:
        raise SimulationError(f"negative cost {cost} for {op!r}")
    ctx.clock._now_us += cost
    if ctx._ledgers:
        for ledger in ctx._ledgers:
            ledger.record(op, cost)
    return cost


def current_ledger() -> Optional[CostLedger]:
    """The innermost open ledger, if any."""
    return _current_context._ledgers[-1] if _current_context._ledgers else None


@contextlib.contextmanager
def ledger_scope(ledger: Optional[CostLedger] = None,
                 name: str = "ledger") -> Iterator[CostLedger]:
    """Open a ledger scope: every charge inside is recorded into it."""
    led = ledger if ledger is not None else CostLedger(name=name)
    ctx = _current_context
    ctx.push_ledger(led)
    try:
        yield led
    finally:
        popped = ctx.pop_ledger()
        if popped is not led:
            raise SimulationError("mismatched ledger_scope nesting")


@contextlib.contextmanager
def context_scope(ctx: TimingContext) -> Iterator[TimingContext]:
    """Temporarily install ``ctx`` as the ambient context."""
    previous = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(previous)
