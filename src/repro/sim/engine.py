"""Generator-based discrete-event simulator.

Processes are Python generators that ``yield`` simulation directives:

* ``yield delay_us`` (a number) — sleep for that many virtual microseconds.
* ``yield resource.acquire()`` — queue on a FIFO :class:`Resource`; the
  process resumes once it holds the resource.

The engine dispatches events in (time, insertion-order) order, so runs are
fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Callable, Generator, Iterable, Optional

from repro.sim.clock import VirtualClock
from repro.util.errors import SimulationError

ProcessGen = Generator[object, object, object]


class _Acquire:
    """Directive: the yielding process wants ``resource``."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource


class Resource:
    """A FIFO-served exclusive resource (e.g. the vTPM manager thread).

    Processes acquire it by ``yield res.acquire()`` and must release it with
    ``res.release()`` when done.  Waiters are resumed strictly in arrival
    order, matching the single worker-thread dispatch loop of the Xen vTPM
    manager daemon.
    """

    def __init__(self, sim: "Simulator", name: str = "resource") -> None:
        self._sim = sim
        self.name = name
        self._busy = False
        self._waiters: deque[Process] = deque()
        self.total_acquisitions = 0
        self.total_wait_us = 0.0

    def acquire(self) -> _Acquire:
        return _Acquire(self)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def _try_grant(self, process: "Process") -> bool:
        """Grant immediately if free, otherwise enqueue.  Returns granted?"""
        if not self._busy:
            self._busy = True
            self.total_acquisitions += 1
            return True
        self._waiters.append(process)
        return False

    def release(self) -> None:
        if not self._busy:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.total_acquisitions += 1
            self.total_wait_us += self._sim.clock.now_us - nxt._wait_started_us
            # Resource stays busy; hand it straight to the next waiter.
            self._sim._schedule(0.0, nxt._resume, None)
        else:
            self._busy = False


class Process:
    """A running generator process inside a :class:`Simulator`."""

    _ids = itertools.count()

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.pid = next(Process._ids)
        self.name = name or f"proc{self.pid}"
        self.finished = False
        self.result: object = None
        self._wait_started_us = 0.0

    def _resume(self, value: object) -> None:
        """Advance the generator by one step, interpreting its directive."""
        if self.finished:
            return
        try:
            directive = self.gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.sim._process_done(self)
            return
        if isinstance(directive, (int, float)):
            if directive < 0:
                raise SimulationError(
                    f"process {self.name} yielded negative delay {directive}"
                )
            self.sim._schedule(float(directive), self._resume, None)
        elif isinstance(directive, _Acquire):
            self._wait_started_us = self.sim.clock.now_us
            if directive.resource._try_grant(self):
                directive.resource.total_wait_us += 0.0
                self.sim._schedule(0.0, self._resume, None)
            # else: parked in the waiter queue until release()
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported directive {directive!r}"
            )


class Simulator:
    """Deterministic event loop over a :class:`VirtualClock`."""

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock or VirtualClock()
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._live_processes = 0
        self.events_dispatched = 0

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, delay_us: float, fn: Callable[[object], None], arg: object) -> None:
        when = self.clock.now_us + delay_us
        heapq.heappush(self._heap, (when, next(self._seq), lambda: fn(arg)))

    def call_at(self, delay_us: float, fn: Callable[[], None]) -> None:
        """Schedule a bare callback ``delay_us`` from now."""
        if delay_us < 0:
            raise SimulationError(f"negative schedule delay {delay_us}")
        when = self.clock.now_us + delay_us
        heapq.heappush(self._heap, (when, next(self._seq), fn))

    def spawn(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a generator process; it is resumed at the current time."""
        proc = Process(self, gen, name)
        self._live_processes += 1
        self._schedule(0.0, proc._resume, None)
        return proc

    def resource(self, name: str = "resource") -> Resource:
        return Resource(self, name)

    def _process_done(self, _proc: Process) -> None:
        self._live_processes -= 1

    # -- running ------------------------------------------------------------

    def run(self, until_us: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Dispatch events until the queue drains or ``until_us`` is reached.

        Returns the final virtual time.
        """
        dispatched = 0
        while self._heap:
            when, _seq, fn = self._heap[0]
            if until_us is not None and when > until_us:
                self.clock.jump_to(until_us)
                return self.clock.now_us
            heapq.heappop(self._heap)
            # Synchronous work inside handlers (charge()) can advance the
            # shared clock past already-queued event times; such events
            # fire "late" at the current time, like interrupts delivered
            # after a busy period.
            self.clock.jump_to(max(when, self.clock.now_us))
            fn()
            self.events_dispatched += 1
            dispatched += 1
            if dispatched > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway simulation?")
        if until_us is not None and until_us > self.clock.now_us:
            self.clock.jump_to(until_us)
        return self.clock.now_us

    def run_all(self, procs: Iterable[ProcessGen]) -> list[Process]:
        """Convenience: spawn every generator, run to completion, return them."""
        handles = [self.spawn(g) for g in procs]
        self.run()
        unfinished = [p.name for p in handles if not p.finished]
        if unfinished:
            raise SimulationError(f"deadlock: processes never finished: {unfinished}")
        return handles
