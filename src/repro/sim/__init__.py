"""Deterministic discrete-event simulation kernel.

All latency and throughput numbers in the reproduction come from a virtual
clock, never from wall time, so results are bit-reproducible across machines.

Two styles of time accounting coexist:

* **Sequential charging** — synchronous code paths (a single TPM command
  travelling front-end → ring → manager → TPM) charge costs to the ambient
  :class:`~repro.sim.clock.VirtualClock` via :func:`~repro.sim.timing.charge`.
* **Process interleaving** — concurrent scenarios (many VMs sharing one vTPM
  manager) run as generator processes inside
  :class:`~repro.sim.engine.Simulator`, queueing on
  :class:`~repro.sim.engine.Resource` objects.
"""

from repro.sim.clock import VirtualClock
from repro.sim.engine import Simulator, Resource, Process
from repro.sim.timing import CostModel, CostLedger, current_ledger, ledger_scope

__all__ = [
    "VirtualClock",
    "Simulator",
    "Resource",
    "Process",
    "CostModel",
    "CostLedger",
    "current_ledger",
    "ledger_scope",
]
