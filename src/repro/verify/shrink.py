"""Counterexample minimizer and replayable repro artifacts.

Given a failing trace from the explorer, :func:`shrink_failure` first
re-validates that the *schedule* alone reproduces the violation on a
fresh platform (batched exploration means a violation can in principle
depend on earlier schedules' state; if it does, the whole platform trace
is minimized instead), then runs deterministic ddmin over the step list:
drop chunks, halve granularity, repeat until 1-minimal — every remaining
step is necessary.

The result is a JSON artifact (``repro-verify/1``) that
``python -m repro verify --replay FILE`` re-executes from scratch:

.. code-block:: json

    {"format": "repro-verify/1", "seed": 2010, "guests": 3,
     "supervised": false, "inject_bug": "cache-epoch",
     "steps": [{"guest": 0, "op": "extend", "arg": 3}, ...],
     "violation": {"kind": "oracle-mismatch", ...}}

Replay is exact: the same steps, a fresh platform built from the same
seed, the same test-only bug hook state — so a repro attached to a CI
failure is a one-command reproduction, not a log to squint at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.util.errors import ReproError
from repro.verify.explorer import FailingRun, ScheduleRunner, Step, Violation

REPRO_FORMAT = "repro-verify/1"


@dataclass
class Repro:
    """A minimal, replayable counterexample."""

    seed: int
    guests: int
    supervised: bool
    inject_bug: Optional[str]
    steps: Tuple[Step, ...]
    violation: Violation

    def to_json(self) -> dict:
        return {
            "format": REPRO_FORMAT,
            "seed": self.seed,
            "guests": self.guests,
            "supervised": self.supervised,
            "inject_bug": self.inject_bug,
            "steps": [step.to_json() for step in self.steps],
            "violation": self.violation.to_json(),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2) + "\n"

    @staticmethod
    def loads(text: str) -> "Repro":
        obj = json.loads(text)
        if obj.get("format") != REPRO_FORMAT:
            raise ReproError(
                f"not a {REPRO_FORMAT} artifact: format={obj.get('format')!r}"
            )
        violation = obj.get("violation") or {}
        step_obj = violation.get("step")
        return Repro(
            seed=int(obj["seed"]),
            guests=int(obj["guests"]),
            supervised=bool(obj.get("supervised", False)),
            inject_bug=obj.get("inject_bug"),
            steps=tuple(Step.from_json(s) for s in obj["steps"]),
            violation=Violation(
                kind=violation.get("kind", "unknown"),
                step_index=int(violation.get("step_index", 0)),
                step=Step.from_json(step_obj) if step_obj else None,
                predicted=violation.get("predicted", ""),
                observed=violation.get("observed", ""),
                detail=violation.get("detail", ""),
            ),
        )


def save_repro(path: str, repro: Repro) -> None:
    with open(path, "w") as stream:
        stream.write(repro.dumps())


def load_repro(path: str) -> Repro:
    with open(path) as stream:
        return Repro.loads(stream.read())


def replay(
    steps: Sequence[Step], seed: int, guests: int, supervised: bool = False
) -> Optional[Violation]:
    """Run ``steps`` as one schedule on a fresh platform; first violation
    or ``None``.  The caller owns any bug-hook state (see the CLI)."""
    runner = ScheduleRunner(guests=guests, seed=seed, supervised=supervised)
    violations = runner.run(list(steps))
    return violations[0] if violations else None


def replay_repro(repro: Repro) -> Optional[Violation]:
    """Replay an artifact, restoring its recorded bug-hook state."""
    from repro.core import monitor as monitor_mod

    previous = monitor_mod.INJECT_STALE_POLICY_EPOCH
    monitor_mod.INJECT_STALE_POLICY_EPOCH = repro.inject_bug == "cache-epoch"
    try:
        return replay(
            repro.steps, seed=repro.seed, guests=repro.guests,
            supervised=repro.supervised,
        )
    finally:
        monitor_mod.INJECT_STALE_POLICY_EPOCH = previous


def _still_fails(
    steps: Sequence[Step], seed: int, guests: int, supervised: bool
) -> Optional[Violation]:
    return replay(steps, seed=seed, guests=guests, supervised=supervised)


def ddmin(
    steps: Sequence[Step],
    fails: "callable[[Sequence[Step]], Optional[Violation]]",
) -> Tuple[Tuple[Step, ...], Violation]:
    """Classic deterministic delta debugging over a step list.

    ``fails`` returns the violation a candidate produces (or ``None``);
    the input must fail.  Returns a 1-minimal failing subsequence —
    removing any single remaining step makes the failure disappear.
    """
    current = list(steps)
    violation = fails(current)
    if violation is None:
        raise ReproError("ddmin needs a failing input to minimize")
    n = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // n)
        reduced = False
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                continue
            candidate_violation = fails(candidate)
            if candidate_violation is not None:
                current = candidate
                violation = candidate_violation
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    return tuple(current), violation


def shrink_failure(failure: FailingRun) -> Repro:
    """Minimize one explorer failure into a replayable artifact.

    Prefers the failing schedule alone (short); falls back to the whole
    platform trace when the violation needs earlier schedules' state.
    Replay seeds differ from exploration seeds on purpose: a genuine
    conformance bug must not hide behind one lucky platform seed.
    """
    from repro.core import monitor as monitor_mod

    seed = failure.seed
    guests = failure.guests
    supervised = failure.supervised
    inject = "cache-epoch" if monitor_mod.INJECT_STALE_POLICY_EPOCH else None

    def fails(candidate: Sequence[Step]) -> Optional[Violation]:
        return _still_fails(
            candidate, seed=seed, guests=guests, supervised=supervised
        )

    basis: Sequence[Step]
    if fails(failure.schedule) is not None:
        basis = failure.schedule
    elif fails(failure.trace) is not None:
        basis = failure.trace
    else:
        # Not reproducible from a fresh platform: ship the un-shrunk
        # trace so the artifact still documents what was observed.
        return Repro(
            seed=seed, guests=guests, supervised=supervised,
            inject_bug=inject, steps=failure.trace,
            violation=failure.violation,
        )
    minimal, violation = ddmin(basis, fails)
    return Repro(
        seed=seed, guests=guests, supervised=supervised,
        inject_bug=inject, steps=minimal, violation=violation,
    )
