"""Piggyback conformance oracle for existing harness runs.

Wraps an :class:`~repro.core.monitor.AccessControlMonitor`'s
``authorize`` and, for every command the pipeline processes,
independently re-derives what the decision *should* be — straight from
the identity registry, the policy index and the health gate, with no
decision cache, no charges and no rng — then compares it against the
pipeline's verdict.  Any disagreement is a conformance mismatch.

This is deliberately charge-free (it never calls ``charge()``-bearing
code paths) so attaching it perturbs neither virtual time nor digests
nor audit chains: the chaos and cluster demos can run with the oracle on
(``--conformance``) and still satisfy their own determinism and
non-interference rails.

The re-derivation reads ``IdentityRegistry._by_domid`` and
``PolicyEngine._index`` directly: an oracle's job is to double-check the
production path from outside it, and the public entry points charge
virtual time the observed run must not feel twice.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.monitor import AccessControlMonitor
from repro.core.policy import ANY, CommandClass, classify_ordinal
from repro.tpm.marshal import parse_command
from repro.util.errors import MarshalError

#: mismatch messages kept per oracle (the count is exact; the text is a
#: bounded sample so a hot loop cannot balloon memory)
_MISMATCH_SAMPLE_CAP = 20


class MonitorConformanceOracle:
    """Shadow-decides every authorize() call and records disagreements."""

    def __init__(self, monitor: AccessControlMonitor) -> None:
        if not isinstance(monitor, AccessControlMonitor):
            raise TypeError(
                "conformance oracle needs an AccessControlMonitor "
                f"(got {type(monitor).__name__}); the baseline monitor "
                "has no authz claim to check"
            )
        self.monitor = monitor
        self.checks = 0
        self.mismatch_count = 0
        self.mismatches: List[str] = []
        self._installed = False
        self._inner = None

    # -- the independent decision ------------------------------------------------

    def expected_allow(
        self, caller, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> Optional[bool]:
        """Re-derive the decision; ``None`` when the oracle abstains."""
        monitor = self.monitor
        config = monitor.config
        try:
            parsed = parse_command(wire)  # memoized, charge-free
        except MarshalError:
            return False  # malformed frames must be denied
        command_class = classify_ordinal(parsed.ordinal)

        gate = monitor.health_gate
        if gate is not None:
            index = monitor.health_index
            if index is None or instance_id in index:
                if gate(instance_id, command_class) is not None:
                    return False

        subject = f"dom{caller.domid}"
        identity = monitor.identities._by_domid.get(caller.domid)
        if config.identity_check:
            if identity is None:
                return False
            if caller.measurement != identity.measurement:
                return False
            subject = identity.hex
            if (
                bound_identity_hex is not None
                and subject != bound_identity_hex
            ):
                return False
        elif identity is not None:
            subject = identity.hex

        if not config.policy_check:
            return True
        if command_class is CommandClass.UNKNOWN:
            return False
        policy_index = monitor.policy._index
        for key in (
            (subject, instance_id, command_class),
            (subject, ANY, command_class),
            (ANY, instance_id, command_class),
            (ANY, ANY, command_class),
        ):
            if key in policy_index:
                return True
        return False

    # -- installation ------------------------------------------------------------

    def install(self) -> "MonitorConformanceOracle":
        if self._installed:
            return self
        inner = self.monitor.authorize
        self._inner = inner
        oracle = self

        def authorize(caller, instance_id, bound_identity_hex, wire):
            expected = oracle.expected_allow(
                caller, instance_id, bound_identity_hex, wire
            )
            result = inner(caller, instance_id, bound_identity_hex, wire)
            oracle.checks += 1
            if expected is not None and result.allowed != expected:
                oracle.mismatch_count += 1
                if len(oracle.mismatches) < _MISMATCH_SAMPLE_CAP:
                    oracle.mismatches.append(
                        f"dom{caller.domid} -> instance {instance_id} "
                        f"{result.operation}: pipeline said "
                        f"{'allow' if result.allowed else 'deny'} "
                        f"({result.reason}), oracle expected "
                        f"{'allow' if expected else 'deny'}"
                    )
            return result

        self.monitor.authorize = authorize  # type: ignore[method-assign]
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            # Remove the instance attribute so the class method shows
            # through again.
            del self.monitor.authorize
            self._installed = False
            self._inner = None

    @property
    def ok(self) -> bool:
        return self.mismatch_count == 0

    def summary(self) -> str:
        verdict = "conformant" if self.ok else "NON-CONFORMANT"
        text = (f"conformance oracle: {self.checks} decisions checked, "
                f"{self.mismatch_count} mismatches ({verdict})")
        for sample in self.mismatches:
            text += f"\n  mismatch: {sample}"
        return text


def attach_oracle(platform) -> Optional[MonitorConformanceOracle]:
    """Install an oracle on a platform's monitor; ``None`` for baseline."""
    monitor = platform.monitor
    if not isinstance(monitor, AccessControlMonitor):
        return None
    return MonitorConformanceOracle(monitor).install()


def settle_oracles(oracles) -> int:
    """Uninstall every oracle and return total decisions checked.

    Raises :class:`~repro.util.errors.ReproError` if any oracle saw a
    mismatch — harness runs with ``--conformance`` fail loudly, not in
    a summary footnote.
    """
    from repro.util.errors import ReproError

    live = [oracle for oracle in oracles if oracle is not None]
    checks = 0
    complaints = []
    for oracle in live:
        oracle.uninstall()
        checks += oracle.checks
        if not oracle.ok:
            complaints.append(oracle.summary())
    if complaints:
        raise ReproError(
            "conformance oracle mismatch:\n" + "\n".join(complaints)
        )
    return checks
