"""Deterministic schedule explorer for the access-control pipeline.

Drives N guests' command streams through the real platform — frontends,
rings, manager, monitor, cache, (optionally) supervisor — under many
distinct interleavings, checking the :mod:`repro.verify.model` oracle,
audit-chain integrity and the zero-silent-drop invariant at every step.

Interleavings come from three sources, all seeded and deterministic:

1. the **credit-scheduler base order** — the canonical interleaving the
   real :class:`~repro.xen.scheduler.CreditScheduler` produces for the
   round's per-guest streams and weights;
2. **seeded shuffles** — random interleavings that preserve each guest's
   program order;
3. **DPOR-lite neighbour swaps** — for every executed schedule, adjacent
   steps of different guests whose footprints conflict (same target
   instance, or one of them is a global event like a manager restart)
   are swapped to probe the orderings where races actually live.

Schedules are deduplicated globally, so the reported count is *distinct*
interleavings explored.  To keep host cost sane, many schedules share
one platform (RSA keygen dominates platform construction); the model
re-syncs from live state at every schedule boundary, and the shrinker
re-validates counterexamples on a fresh platform before minimizing.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import AccessControlConfig, AccessMode
from repro.core.policy import CommandClass
from repro.crypto.random_source import RandomSource
from repro.harness.builder import (
    GuestHandle,
    Platform,
    build_platform,
    fresh_timing_context,
)
from repro.sim.engine import Simulator
from repro.sim.timing import get_context
from repro.tpm import marshal
from repro.tpm.constants import (
    TPM_ORD_Extend,
    TPM_ORD_GetRandom,
    TPM_ORD_PcrRead,
    TPM_SUCCESS,
)
from repro.util.errors import ReproError
from repro.verify.model import Prediction, ReferenceModel

#: PCR indices the explorer touches (kept clear of the boot-measurement
#: range so hardware-anchored features stay inert)
PCR_RANGE = 8

#: command classes the policy-mutation ops cycle through
MUTABLE_CLASSES = (CommandClass.MEASURE, CommandClass.READ, CommandClass.USE_KEY)

#: ops that issue an actual TPM command (and therefore get a response)
COMMAND_OPS = ("extend", "pcr_read", "get_random", "cross_read")
#: administrative ops that mutate authz-relevant state
ADMIN_OPS = ("revoke", "grant", "forget", "reregister", "restart")

#: rough virtual-time cost per op, for credit-scheduler accounting
_OP_COST_US = {
    "extend": 30.0,
    "pcr_read": 12.0,
    "get_random": 15.0,
    "cross_read": 12.0,
    "revoke": 5.0,
    "grant": 5.0,
    "forget": 4.0,
    "reregister": 8.0,
    "restart": 400.0,
}


@dataclass(frozen=True)
class Step:
    """One schedule step: ``guest`` performs ``op`` (``arg`` disambiguates
    PCR index / command class / cross-read target)."""

    guest: int
    op: str
    arg: int = 0

    def to_json(self) -> Dict[str, object]:
        return {"guest": self.guest, "op": self.op, "arg": self.arg}

    @staticmethod
    def from_json(obj: Dict[str, object]) -> "Step":
        return Step(guest=int(obj["guest"]), op=str(obj["op"]),
                    arg=int(obj.get("arg", 0)))


@dataclass
class Violation:
    """One conformance failure: what the model said vs what happened."""

    kind: str  # oracle-mismatch | denial-count | silent-drop | pcr-divergence | audit-chain
    step_index: int
    step: Optional[Step]
    predicted: str
    observed: str
    detail: str

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "step_index": self.step_index,
            "step": self.step.to_json() if self.step is not None else None,
            "predicted": self.predicted,
            "observed": self.observed,
            "detail": self.detail,
        }

    def describe(self) -> str:
        where = (
            f"step {self.step_index} ({self.step.op} by g{self.step.guest})"
            if self.step is not None else "end of schedule"
        )
        return (f"{self.kind} at {where}: predicted {self.predicted}, "
                f"observed {self.observed} — {self.detail}")


@dataclass
class FailingRun:
    """A violation plus the executed trace that led to it."""

    violation: Violation
    #: every step executed on the platform since it was built, including
    #: the failing one — the unit the shrinker minimizes
    trace: Tuple[Step, ...]
    #: the schedule being run when the violation fired
    schedule: Tuple[Step, ...]
    seed: int
    guests: int
    supervised: bool


@dataclass
class ExplorationReport:
    budget: str
    seed: int
    guests: int
    distinct_schedules: int = 0
    steps_executed: int = 0
    platforms_built: int = 0
    failures: List[FailingRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> List[str]:
        lines = [
            f"budget={self.budget} seed={self.seed} guests={self.guests}",
            f"distinct schedules explored : {self.distinct_schedules}",
            f"steps executed              : {self.steps_executed}",
            f"platforms built             : {self.platforms_built}",
            f"oracle violations           : {len(self.failures)}",
        ]
        for failure in self.failures:
            lines.append("  " + failure.violation.describe())
        return lines


# -- wires -------------------------------------------------------------------------


def _measurement_for(step: Step) -> bytes:
    """Deterministic 20-byte measurement, a pure function of the step
    fields so shrunk/reordered traces extend identical values."""
    return hashlib.sha1(f"verify-m-{step.guest}-{step.arg}".encode()).digest()


def _extend_wire(step: Step) -> bytes:
    return marshal.build_command(
        TPM_ORD_Extend,
        struct.pack(">I", step.arg % PCR_RANGE) + _measurement_for(step),
    )


def _pcr_read_wire(index: int) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, struct.pack(">I", index))


def _get_random_wire() -> bytes:
    return marshal.build_command(TPM_ORD_GetRandom, struct.pack(">I", 16))


# -- the runner --------------------------------------------------------------------


class ScheduleRunner:
    """Owns one platform and executes schedules against it.

    Steps run inside a :class:`~repro.sim.engine.Simulator` process that
    shares the timing-context clock (``charge()`` inside the pipeline
    advances it), with a yield point between steps and the real
    :class:`~repro.xen.scheduler.CreditScheduler` accounting each
    guest's consumed virtual time — so explored runs carry the same
    serialization structure as the throughput experiments.
    """

    def __init__(
        self, guests: int = 3, seed: int = 2010, supervised: bool = False,
        platform: Optional[Platform] = None,
    ) -> None:
        self.seed = seed
        self.supervised = supervised
        if platform is None:
            fresh_timing_context()
            platform = build_platform(
                AccessMode.IMPROVED,
                seed=seed,
                # Sealing and memory protection are orthogonal to the
                # authz decision surface and dominate build cost; the
                # explorer's platforms skip them.
                ac_config=AccessControlConfig(
                    seal_storage=False, protect_memory=False
                ),
                name=f"verify-{seed}",
            )
        self.platform = platform
        self.handles: List[GuestHandle] = [
            platform.guests[name] if name in platform.guests
            else platform.add_guest(name)
            for name in (f"g{i}" for i in range(guests))
        ]
        if supervised and platform.supervisor is None:
            platform.enable_supervision()
        self.model = ReferenceModel()
        #: every step executed since the platform was built
        self.history: List[Step] = []
        self.steps_executed = 0

    # -- model seeding ---------------------------------------------------------

    def _identity_hex(self, handle: GuestHandle) -> str:
        return handle.domain.measurement.hex()

    def sync_model(self) -> None:
        """Seed the model from live platform state (schedule boundary)."""
        platform = self.platform
        for index, handle in enumerate(self.handles):
            name = f"g{index}"
            registered = (
                platform.identities.lookup(handle.domain.domid) is not None
            )
            subject = self._identity_hex(handle)
            grants = {
                rule.command_class
                for rule in platform.policy.rules_for_subject(subject)
                if rule.instance == handle.instance_id
            }
            instance = platform.manager.instance(handle.instance_id)
            pcrs = {
                i: instance.device.state.pcrs.read(i)
                for i in range(PCR_RANGE)
            }
            turbulent = False
            if platform.supervisor is not None:
                record = platform.supervisor.record_for(handle.domain.uuid)
                turbulent = record.state.value != "healthy"
            self.model.sync_guest(
                name, registered=registered, grants=grants,
                pcr_values=pcrs, turbulent=turbulent,
            )

    # -- execution -------------------------------------------------------------

    def run(self, steps: Sequence[Step]) -> List[Violation]:
        """Execute one schedule; returns the violations it produced."""
        self.sync_model()
        violations: List[Violation] = []
        sim = Simulator(clock=get_context().clock)
        from repro.xen.scheduler import CreditScheduler

        scheduler = CreditScheduler()
        for handle in self.handles:
            scheduler.add(handle.domain.domid)

        def driver():
            clock = get_context().clock
            for index, step in enumerate(steps):
                before_us = clock.now_us
                violation = self._execute_step(index, step)
                self.history.append(step)
                self.steps_executed += 1
                domid = self.handles[step.guest % len(self.handles)].domain.domid
                scheduler.account(
                    domid,
                    max(clock.now_us - before_us, _OP_COST_US[step.op]),
                )
                if violation is not None:
                    violations.append(violation)
                    return
                yield 1.0  # yield point between steps

        sim.spawn(driver(), name="verify-driver")
        sim.run()
        if not violations:
            violations.extend(self._end_of_run_checks(len(steps)))
        return violations

    def _execute_step(self, index: int, step: Step) -> Optional[Violation]:
        handles = self.handles
        guest = step.guest % len(handles)
        handle = handles[guest]
        name = f"g{guest}"
        platform = self.platform
        op = step.op

        if op == "restart":
            platform.restart_manager(clean=True)
            self.model.on_manager_restart()
            return None
        if op == "forget":
            platform.identities.forget(handle.domain.domid)
            self.model.on_identity_forgotten(name)
            return None
        if op == "reregister":
            if platform.identities.lookup(handle.domain.domid) is None:
                platform.identities.register(handle.domain)
            self.model.on_identity_reregistered(name)
            return None
        if op in ("grant", "revoke"):
            command_class = MUTABLE_CLASSES[step.arg % len(MUTABLE_CLASSES)]
            subject = self._identity_hex(handle)
            if op == "grant":
                platform.policy.add_rule(
                    subject, handle.instance_id, command_class
                )
                self.model.on_grant(name, command_class)
            else:
                doomed = [
                    rule.rule_id
                    for rule in platform.policy.rules_for_subject(subject)
                    if rule.instance == handle.instance_id
                    and rule.command_class is command_class
                ]
                for rule_id in doomed:
                    platform.policy.revoke_rule(rule_id)
                if doomed:
                    self.model.on_revoke(name, command_class)
            return None

        # -- command ops: predict, execute, check ------------------------------
        if op == "extend":
            wire = _extend_wire(step)
            target, command_class = guest, CommandClass.MEASURE
        elif op == "pcr_read":
            wire = _pcr_read_wire(step.arg % PCR_RANGE)
            target, command_class = guest, CommandClass.READ
        elif op == "get_random":
            wire = _get_random_wire()
            target, command_class = guest, CommandClass.READ
        elif op == "cross_read":
            target = (guest + 1 + step.arg % max(1, len(handles) - 1)) % len(handles)
            if target == guest:  # single-guest runs have no cross target
                return None
            wire = _pcr_read_wire(step.arg % PCR_RANGE)
            command_class = CommandClass.READ
        else:
            raise ReproError(f"unknown verify op {op!r}")

        target_name = f"g{target}"
        prediction = self.model.predict(name, target_name, command_class)
        monitor = platform.monitor
        denials_before = getattr(monitor, "denials", 0)

        if op == "cross_read":
            # A rogue backend claiming another guest's instance: hits the
            # manager directly with hypervisor-true caller domid but a
            # cross instance id — the binding check's exact threat model.
            response = platform.manager.handle_command(
                handle.domain.domid, handles[target].instance_id, wire
            )
        else:
            response = handle.frontend.transport(wire)

        # Zero-silent-drop: every submitted frame gets a well-formed answer.
        if not response:
            return self._violation(
                "silent-drop", index, step, prediction,
                observed="no response frame",
                detail="command produced no response bytes",
            )
        try:
            code = marshal.parse_response(response).return_code
        except ReproError as exc:
            return self._violation(
                "silent-drop", index, step, prediction,
                observed=f"unparseable response ({exc})",
                detail="response frame failed to parse",
            )

        if code not in prediction.accept:
            return self._violation(
                "oracle-mismatch", index, step, prediction,
                observed=f"return code {code:#x}",
                detail=f"model accepts {sorted(prediction.accept)}",
            )
        if prediction.strict:
            delta = getattr(monitor, "denials", 0) - denials_before
            expected = 1 if prediction.verdict == "deny" else 0
            if delta != expected:
                return self._violation(
                    "denial-count", index, step, prediction,
                    observed=f"denial counter moved by {delta}",
                    detail=f"expected exactly {expected} for a "
                           f"{prediction.verdict}",
                )
        if op == "extend" and code == TPM_SUCCESS:
            self.model.apply_extend(
                name, step.arg % PCR_RANGE, _measurement_for(step)
            )
        return None

    def _end_of_run_checks(self, schedule_len: int) -> List[Violation]:
        violations: List[Violation] = []
        platform = self.platform
        for index, handle in enumerate(self.handles):
            name = f"g{index}"
            instance = platform.manager.instance(handle.instance_id)
            for pcr_index, expected in sorted(
                self.model.guests[name].pcrs.items()
            ):
                live = instance.device.state.pcrs.read(pcr_index)
                if live != expected:
                    violations.append(Violation(
                        kind="pcr-divergence",
                        step_index=schedule_len,
                        step=None,
                        predicted=f"{name} PCR{pcr_index}={expected.hex()[:16]}…",
                        observed=f"{live.hex()[:16]}…",
                        detail="shadow PCR bank diverged from the live "
                               "instance",
                    ))
        if not platform.audit.verify_chain():
            violations.append(Violation(
                kind="audit-chain",
                step_index=schedule_len,
                step=None,
                predicted="hash chain verifies",
                observed="verify_chain() == False",
                detail="audit log chain is not serializable",
            ))
        return violations

    @staticmethod
    def _violation(
        kind: str, index: int, step: Step, prediction: Prediction,
        observed: str, detail: str,
    ) -> Violation:
        return Violation(
            kind=kind,
            step_index=index,
            step=step,
            predicted=f"{prediction.verdict} ({prediction.reason})",
            observed=observed,
            detail=detail,
        )


# -- schedule generation ------------------------------------------------------------


def _generate_streams(
    seed: int, round_index: int, guests: int, ops_per_guest: int
) -> List[List[Step]]:
    """Per-guest command streams for one round, seeded and deterministic."""
    rng = RandomSource(f"verify-streams-{seed}-{round_index}".encode())
    streams: List[List[Step]] = []
    for guest in range(guests):
        stream: List[Step] = []
        for _ in range(ops_per_guest):
            roll = rng.randint_below(100)
            arg = rng.randint_below(PCR_RANGE)
            if roll < 30:
                stream.append(Step(guest, "extend", arg))
            elif roll < 45:
                stream.append(Step(guest, "pcr_read", arg))
            elif roll < 53:
                stream.append(Step(guest, "get_random"))
            elif roll < 65:
                stream.append(Step(guest, "cross_read", arg))
            elif roll < 77:
                stream.append(Step(guest, "revoke", arg))
            elif roll < 86:
                stream.append(Step(guest, "grant", arg))
            elif roll < 92:
                stream.append(Step(guest, "forget"))
            elif roll < 97:
                stream.append(Step(guest, "reregister"))
            else:
                stream.append(Step(guest, "restart"))
        streams.append(stream)
    return streams


def _credit_base_order(
    streams: Sequence[Sequence[Step]], weights: Sequence[int]
) -> Tuple[Step, ...]:
    """The canonical interleaving the real credit scheduler would pick."""
    from repro.xen.scheduler import CreditScheduler

    scheduler = CreditScheduler()
    remaining = {g: list(stream) for g, stream in enumerate(streams) if stream}
    for guest in remaining:
        scheduler.add(guest + 1, weight=weights[guest])
    order: List[Step] = []
    while remaining:
        domid = scheduler.pick_next()
        guest = domid - 1
        step = remaining[guest].pop(0)
        order.append(step)
        scheduler.account(domid, _OP_COST_US[step.op])
        if not remaining[guest]:
            scheduler.remove(domid)
            del remaining[guest]
    return tuple(order)


def _random_interleaving(
    streams: Sequence[Sequence[Step]], rng: RandomSource
) -> Tuple[Step, ...]:
    """A random interleaving preserving each guest's program order."""
    cursors = [0] * len(streams)
    total = sum(len(s) for s in streams)
    order: List[Step] = []
    while total:
        pick = rng.randint_below(total)
        for guest, stream in enumerate(streams):
            left = len(stream) - cursors[guest]
            if pick < left:
                order.append(stream[cursors[guest]])
                cursors[guest] += 1
                break
            pick -= left
        total -= 1
    return tuple(order)


def _footprint(step: Step, guests: int) -> Optional[Set[int]]:
    """Guest instances an op touches; ``None`` means global (conflicts
    with everything)."""
    if step.op == "restart":
        return None
    if step.op == "cross_read":
        target = (step.guest + 1 + step.arg % max(1, guests - 1)) % guests
        return {step.guest, target}
    return {step.guest}


def _conflicting(a: Step, b: Step, guests: int) -> bool:
    fa, fb = _footprint(a, guests), _footprint(b, guests)
    if fa is None or fb is None:
        return True
    return bool(fa & fb)


def _dpor_swaps(
    schedule: Tuple[Step, ...], guests: int, cap: int
) -> List[Tuple[Step, ...]]:
    """DPOR-lite: adjacent swaps at conflicting cross-guest pairs.

    Swapping steps of *different* guests preserves program order, so
    every variant is a legal interleaving of the same streams; pairs
    with disjoint footprints commute and are skipped (that pruning is
    the partial-order part).
    """
    variants: List[Tuple[Step, ...]] = []
    for i in range(len(schedule) - 1):
        a, b = schedule[i], schedule[i + 1]
        if a.guest == b.guest:
            continue
        if not _conflicting(a, b, guests):
            continue
        swapped = list(schedule)
        swapped[i], swapped[i + 1] = b, a
        variants.append(tuple(swapped))
        if len(variants) >= cap:
            break
    return variants


# -- the explorer -------------------------------------------------------------------


@dataclass(frozen=True)
class Budget:
    name: str
    guests: int
    ops_per_guest: int
    rounds: int
    shuffles_per_round: int
    dpor_cap: int
    target_schedules: int
    platform_batch: int


BUDGETS: Dict[str, Budget] = {
    "small": Budget(
        name="small", guests=3, ops_per_guest=5, rounds=60,
        shuffles_per_round=10, dpor_cap=12, target_schedules=600,
        platform_batch=40,
    ),
    "deep": Budget(
        name="deep", guests=4, ops_per_guest=8, rounds=400,
        shuffles_per_round=16, dpor_cap=24, target_schedules=5000,
        platform_batch=40,
    ),
}


def explore(
    budget: str | Budget = "small",
    seed: int = 2010,
    supervised: bool = False,
    max_failures: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ExplorationReport:
    """Run one exploration sweep; stops at ``max_failures`` violations."""
    spec = BUDGETS[budget] if isinstance(budget, str) else budget
    report = ExplorationReport(
        budget=spec.name, seed=seed, guests=spec.guests
    )
    seen: Set[Tuple[Step, ...]] = set()
    runner: Optional[ScheduleRunner] = None
    in_batch = 0

    def fresh_runner() -> ScheduleRunner:
        report.platforms_built += 1
        return ScheduleRunner(
            guests=spec.guests,
            seed=seed + report.platforms_built,
            supervised=supervised,
        )

    def run_one(schedule: Tuple[Step, ...]) -> bool:
        """Execute one schedule; returns False when exploration must stop."""
        nonlocal runner, in_batch
        if runner is None or in_batch >= spec.platform_batch:
            runner = fresh_runner()
            in_batch = 0
        in_batch += 1
        steps_before = runner.steps_executed
        violations = runner.run(schedule)
        report.steps_executed += runner.steps_executed - steps_before
        report.distinct_schedules += 1
        if violations:
            report.failures.append(FailingRun(
                violation=violations[0],
                trace=tuple(runner.history),
                schedule=schedule,
                seed=seed,
                guests=spec.guests,
                supervised=supervised,
            ))
            # A poisoned platform would re-report the same failure for
            # every later schedule in the batch; start clean instead.
            runner = None
            in_batch = 0
            if len(report.failures) >= max_failures:
                return False
        return True

    rng = RandomSource(f"verify-interleave-{seed}".encode())
    for round_index in range(spec.rounds):
        if report.distinct_schedules >= spec.target_schedules:
            break
        streams = _generate_streams(
            seed, round_index, spec.guests, spec.ops_per_guest
        )
        weights = [128 + rng.randint_below(512) for _ in range(spec.guests)]
        candidates: List[Tuple[Step, ...]] = [
            _credit_base_order(streams, weights)
        ]
        for _ in range(spec.shuffles_per_round):
            candidates.append(_random_interleaving(streams, rng))
        executed_this_round: List[Tuple[Step, ...]] = []
        for schedule in candidates:
            if schedule in seen:
                continue
            seen.add(schedule)
            executed_this_round.append(schedule)
            if not run_one(schedule):
                return report
            if report.distinct_schedules >= spec.target_schedules:
                break
        # DPOR-lite second wave over what actually ran this round.
        for schedule in executed_this_round:
            if report.distinct_schedules >= spec.target_schedules:
                break
            for variant in _dpor_swaps(schedule, spec.guests, spec.dpor_cap):
                if variant in seen:
                    continue
                seen.add(variant)
                if not run_one(variant):
                    return report
                if report.distinct_schedules >= spec.target_schedules:
                    break
        if progress is not None and (round_index + 1) % 10 == 0:
            progress(
                f"round {round_index + 1}: "
                f"{report.distinct_schedules} schedules explored"
            )
    return report
