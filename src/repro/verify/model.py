"""Executable reference model of the authz-relevant platform state.

The conformance oracle: a deliberately small, independent re-statement of
what the paper's access-control pipeline is *supposed* to decide.  The
model tracks, per guest, only the facts that can change an authorization
outcome — measured-identity registration, the policy grants on the
guest's current instance, whether the instance binding still matches,
and a coarse health mode — and predicts for every command the set of
return codes the real monitor + cache + supervisor pipeline is allowed
to produce.

Independence discipline: during a run the model never calls into the
monitor, the policy engine or the identity registry — predictions come
purely from events the driver reported (``on_*``) plus the command about
to be issued.  The single sanctioned coupling is
:meth:`ReferenceModel.sync_guest` at schedule boundaries, which seeds
the model from live platform state so batched explorer runs need not
rebuild a platform per schedule.

The model also carries a shadow PCR bank per guest so multi-step runs
check *state* conformance, not just per-command verdicts: an extend the
pipeline reports as successful must land in the real PCR exactly as
``SHA1(old || measurement)`` predicts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.core.policy import OWNER_CLASSES, CommandClass
from repro.tpm.constants import (
    TPM_AUTHFAIL,
    TPM_FAIL,
    TPM_RESOURCES,
    TPM_SUCCESS,
)

#: return codes a degraded/turbulent instance may legitimately produce:
#: success (it recovered), authz deny (gate), shed (admission), or the
#: graceful fault surface.  Anything else is a conformance violation
#: even under chaos.
TURBULENT_CODES: FrozenSet[int] = frozenset(
    {TPM_SUCCESS, TPM_AUTHFAIL, TPM_RESOURCES, TPM_FAIL}
)

ALLOW_CODES: FrozenSet[int] = frozenset({TPM_SUCCESS})
DENY_CODES: FrozenSet[int] = frozenset({TPM_AUTHFAIL})


@dataclass(frozen=True)
class Prediction:
    """What the model expects the pipeline to do with one command."""

    verdict: str  # "allow" | "deny" | "degrade"
    accept: FrozenSet[int]
    reason: str

    @property
    def strict(self) -> bool:
        """Strict predictions also pin the monitor's denial counter."""
        return self.verdict in ("allow", "deny")


@dataclass
class GuestModel:
    """Authz-relevant state of one guest, as the model believes it."""

    name: str
    #: is the launch measurement currently registered?
    registered: bool = True
    #: command classes granted to this guest's identity on its instance
    grants: Set[CommandClass] = field(default_factory=lambda: set(OWNER_CLASSES))
    #: True while the supervisor may legitimately answer with shed/degrade
    #: codes (wedge observed, not yet drained back to healthy)
    turbulent: bool = False
    #: shadow PCR bank: index -> 20-byte value (only touched indices)
    pcrs: Dict[int, bytes] = field(default_factory=dict)


class ReferenceModel:
    """Predicts allow/deny/degrade for commands against N guests."""

    def __init__(self) -> None:
        self.guests: Dict[str, GuestModel] = {}
        self.predictions = 0

    # -- seeding (the one sanctioned read of live state) ---------------------

    def sync_guest(
        self,
        name: str,
        registered: bool,
        grants: Set[CommandClass],
        pcr_values: Dict[int, bytes],
        turbulent: bool = False,
    ) -> GuestModel:
        """(Re)seed one guest's model state from observed platform state."""
        guest = GuestModel(
            name=name,
            registered=registered,
            grants=set(grants),
            turbulent=turbulent,
            pcrs=dict(pcr_values),
        )
        self.guests[name] = guest
        return guest

    # -- events the driver reports -------------------------------------------

    def on_guest_added(self, name: str) -> None:
        """A fresh guest: measured at launch, full owner grant."""
        self.guests[name] = GuestModel(name=name)

    def on_grant(self, name: str, command_class: CommandClass) -> None:
        self.guests[name].grants.add(command_class)

    def on_revoke(self, name: str, command_class: CommandClass) -> None:
        self.guests[name].grants.discard(command_class)

    def on_identity_forgotten(self, name: str) -> None:
        self.guests[name].registered = False

    def on_identity_reregistered(self, name: str) -> None:
        # Same kernel/name/config => same measurement => binding matches.
        self.guests[name].registered = True

    def on_manager_restart(self) -> None:
        """Manager restart semantics, as the pipeline defines them.

        ``restore_instance`` re-registers any forgotten identity and
        re-creates each instance under a *new* id whose creation hook
        grants the full owner profile — so revocations deliberately do
        NOT survive a restart.  The model mirrors that contract; if the
        pipeline ever changes it, the explorer will say so.
        """
        for guest in self.guests.values():
            guest.registered = True
            guest.grants = set(OWNER_CLASSES)

    def on_migrated(self, name: str) -> None:
        """Import instantiates a fresh instance: full owner grant again."""
        guest = self.guests[name]
        guest.registered = True
        guest.grants = set(OWNER_CLASSES)

    def on_wedged(self, name: str) -> None:
        self.guests[name].turbulent = True

    def on_settled(self, name: str) -> None:
        """Supervisor drained back to healthy: strictness is restored."""
        self.guests[name].turbulent = False

    # -- prediction ------------------------------------------------------------

    def predict(
        self, subject: str, target: str, command_class: CommandClass
    ) -> Prediction:
        """Predict the outcome of ``subject`` issuing a ``command_class``
        command at ``target``'s instance (``subject == target`` is the
        normal own-vTPM path; anything else is a cross-binding attempt)."""
        self.predictions += 1
        sub = self.guests[subject]
        tgt = self.guests[target]
        if tgt.turbulent:
            return Prediction(
                verdict="degrade",
                accept=TURBULENT_CODES,
                reason=f"{target} is under supervision turbulence",
            )
        if not sub.registered:
            return Prediction(
                verdict="deny",
                accept=DENY_CODES,
                reason=f"{subject} has no registered measurement",
            )
        if subject != target:
            return Prediction(
                verdict="deny",
                accept=DENY_CODES,
                reason=f"{subject}'s identity does not match the binding "
                       f"of {target}'s instance",
            )
        if command_class not in sub.grants:
            return Prediction(
                verdict="deny",
                accept=DENY_CODES,
                reason=f"no grant of {command_class.value} to {subject}",
            )
        return Prediction(
            verdict="allow",
            accept=ALLOW_CODES,
            reason=f"{subject} measured, bound and granted "
                   f"{command_class.value}",
        )

    # -- shadow PCR bank -------------------------------------------------------

    def pcr_value(self, name: str, index: int) -> Optional[bytes]:
        return self.guests[name].pcrs.get(index)

    def apply_extend(self, name: str, index: int, measurement: bytes) -> bytes:
        """Mirror a *successful* extend into the shadow bank.

        Callers apply this only when the pipeline actually returned
        ``TPM_SUCCESS`` — the model predicts outcomes, the pipeline
        decides them, and the shadow tracks what should now be true.
        """
        guest = self.guests[name]
        old = guest.pcrs.get(index, b"\x00" * 20)
        new = hashlib.sha1(old + measurement).digest()
        guest.pcrs[index] = new
        return new
