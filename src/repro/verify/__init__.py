"""Conformance verification subsystem.

Three cooperating pieces (see ARCHITECTURE.md, "Verification"):

* :mod:`repro.verify.model` — an executable reference model of the
  authz-relevant state that predicts allow/deny/degrade per command;
* :mod:`repro.verify.explorer` — a deterministic schedule explorer that
  drives guest command streams under many distinct interleavings and
  checks the model oracle, audit-chain integrity and zero-silent-drop;
* :mod:`repro.verify.shrink` — a ddmin counterexample minimizer that
  turns a failing schedule into a minimal replayable JSON repro.

Plus :mod:`repro.verify.oracle`, a charge-free conformance oracle that
piggybacks on chaos/cluster harness runs behind a flag.
"""

from repro.verify.explorer import (
    BUDGETS,
    Budget,
    ExplorationReport,
    FailingRun,
    ScheduleRunner,
    Step,
    Violation,
    explore,
)
from repro.verify.model import Prediction, ReferenceModel
from repro.verify.oracle import (
    MonitorConformanceOracle,
    attach_oracle,
    settle_oracles,
)
from repro.verify.shrink import (
    REPRO_FORMAT,
    Repro,
    ddmin,
    load_repro,
    replay,
    replay_repro,
    save_repro,
    shrink_failure,
)

__all__ = [
    "BUDGETS",
    "REPRO_FORMAT",
    "Budget",
    "ExplorationReport",
    "FailingRun",
    "MonitorConformanceOracle",
    "Prediction",
    "ReferenceModel",
    "Repro",
    "ScheduleRunner",
    "Step",
    "Violation",
    "attach_oracle",
    "ddmin",
    "explore",
    "load_repro",
    "replay",
    "replay_repro",
    "save_repro",
    "settle_oracles",
    "shrink_failure",
]
