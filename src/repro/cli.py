"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``demo`` — the quickstart flow (provision, measure, seal, quote).
* ``chaos`` — the fault-injection demo: a seeded 1000-command workload
  under injected ring/storage/device/migration faults, with zero state
  loss and a deterministic replay check.
* ``cluster`` — the multi-host fleet demo: N hosts, a migration storm
  and one whole-host crash, with zero state loss vs a single-host
  control and a deterministic replay check.
* ``attack-matrix`` — run every attack against one or both regimes.
* ``experiment <id>`` — regenerate one table/figure (``table1``,
  ``fig1`` … ``table4``, ``fig5``, or ``all``); ``--quick`` shrinks sizes.
* ``trace`` — with no operand, emit a synthetic Poisson workload trace;
  with a workload operand (``pcrread``, ``seal``, …), run it live with
  tracing on and print the span trees plus the counter exposition.
* ``verify`` — the conformance verification subsystem: explore many
  distinct guest-command interleavings against the reference-model
  oracle (``--budget small|deep``), shrink any violation to a minimal
  replayable JSON repro, and replay repros (``--replay FILE``).  The
  ``--inject-bug cache-epoch`` self-check plants a known authz bug and
  succeeds only if the explorer catches and shrinks it.
* ``analyze`` — the domain-specific static analyzer: walk the package
  through the AST rule catalogue (fail-closed, determinism,
  secret-flow, audit-on-deny, counter-registry, virtual-time), honour
  ``# repro: allow[rule-id] -- reason`` pragmas, and with ``--check``
  diff against the committed ``analysis-baseline.json`` (CI gate).
  ``--inject-violation RULE`` plants that rule's example violation and
  must make the run fail — the self-check that each rule can fire.
* ``report`` — run the full evaluation and print a markdown report.

``chaos`` and ``experiment`` accept ``--trace PATH`` to stream every
finished span tree to ``PATH`` as JSONL (``-`` for stdout).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence

from repro.core.config import AccessMode
from repro.harness.builder import build_platform, fresh_timing_context

EXPERIMENTS: Dict[str, Callable] = {}


def _register_experiments() -> None:
    from repro.harness import experiments as ex
    from repro.harness.loadtest import run_latency_under_load

    EXPERIMENTS.update(
        {
            "table1": lambda quick: ex.run_command_latency(reps=10 if quick else 50),
            "fig1": lambda quick: ex.run_throughput_scaling(
                vm_counts=(1, 2, 4) if quick else (1, 2, 4, 8, 16),
                ops_per_vm=10 if quick else 40,
            ),
            "table2": lambda quick: ex.run_attack_matrix_experiment(),
            "fig2": lambda quick: ex.run_instance_creation(
                populations=(0, 2, 4) if quick else (0, 1, 2, 4, 8, 16, 32)
            ),
            "fig3": lambda quick: ex.run_migration_sweep(
                nv_payload_kib=(0, 16) if quick else (0, 8, 32, 128)
            ),
            "table3": lambda quick: ex.run_policy_scaling(
                rule_counts=(10, 1000) if quick else (10, 100, 1_000, 10_000),
                lookups=300 if quick else 2_000,
            ),
            "fig4": lambda quick: ex.run_webapp_benchmark(
                requests=300 if quick else 2_000
            ),
            "table4": lambda quick: ex.run_ablation(ops=40 if quick else 150),
            "fig6": lambda quick: ex.run_recovery_sweep(
                instance_counts=(1, 2) if quick else (1, 2, 4, 8)
            ),
            "fig6b": lambda quick: ex.run_faulted_recovery(
                instance_counts=(1, 2) if quick else (1, 2, 4, 8)
            ),
            "fig5": lambda quick: run_latency_under_load(
                offered_rates=(5_000, 25_000) if quick
                else (5_000, 15_000, 25_000, 32_000),
                guests=3 if quick else 4,
                duration_s=0.2 if quick else 0.35,
            ),
            "fig7": lambda quick: ex.run_batching_sweep(
                batch_sizes=(1, 4, 16) if quick else (1, 2, 4, 8, 16),
                vm_counts=(1, 2) if quick else (1, 2, 4),
                commands_per_vm=16 if quick else 64,
            ),
        }
    )


def cmd_demo(args: argparse.Namespace) -> int:
    import hashlib

    from repro.tpm.constants import TPM_KH_SRK

    fresh_timing_context()
    mode = AccessMode(args.mode)
    platform = build_platform(mode, seed=args.seed)
    guest = platform.add_guest("demo-vm")
    client = guest.client
    ek = client.read_pubek()
    client.take_ownership(b"demo-owner-auth!!!!!", b"demo-srk-auth!!!!!!!", ek)
    client.extend(10, hashlib.sha1(b"demo-app").digest())
    sealed = client.seal(
        TPM_KH_SRK, b"demo-srk-auth!!!!!!!", b"demo secret", b"demo-data-auth!!!!!!"
    )
    recovered = client.unseal(
        TPM_KH_SRK, b"demo-srk-auth!!!!!!!", sealed, b"demo-data-auth!!!!!!"
    )
    print(f"[{mode.value}] platform up, vTPM provisioned")
    print(f"  PCR10 = {client.pcr_read(10).hex()}")
    print(f"  sealed {len(sealed)} bytes, unsealed -> {recovered!r}")
    from repro.sim.timing import get_context

    print(f"  virtual time: {get_context().clock.now_ms:.1f} ms")
    return 0


def _open_trace(path: str, sample_rate: int = 1):
    """``--trace PATH`` plumbing: (tracer, registry, closer) or Nones.

    ``sample_rate`` > 1 records only 1-in-N root span trees (deterministic
    head sampling; counters stay exact).  The returned closer drains the
    sink's line buffer before closing the stream — and flushes without
    closing when the stream is stdout.
    """
    import contextlib

    from repro.obs import CounterRegistry, JsonlSink, Tracer

    if path is None:
        return None, None, contextlib.nullcontext()
    stream = sys.stdout if path == "-" else open(path, "w")
    sink = JsonlSink(stream)
    closer = contextlib.ExitStack()
    if path != "-":
        closer.push(stream)
    closer.callback(sink.flush)  # runs before the stream close above
    return Tracer(sink, sample_rate=sample_rate), CounterRegistry(), closer


def cmd_chaos(args: argparse.Namespace) -> int:
    """Fault-injection demo: a seeded workload survives injected chaos."""
    from repro.harness.chaos import (
        default_chaos_plan,
        run_chaos_demo,
        run_chaos_workload,
    )

    if args.supervised:
        return _cmd_chaos_supervised(args)
    plan = default_chaos_plan(args.seed)
    tracer, registry, closer = _open_trace(args.trace, args.trace_sample)
    with closer:
        if args.single:
            report = run_chaos_workload(
                seed=args.seed, commands=args.commands, plan=plan,
                tracer=tracer, counters=registry,
                conformance=args.conformance,
            )
            for line in report.summary_lines():
                print(line)
            if args.conformance:
                print(f"conformance: {report.conformance_checks} decisions "
                      "oracle-checked, 0 mismatches")
            _print_trace_summary(args.trace, tracer, registry)
            return 0
        result = run_chaos_demo(
            seed=args.seed, commands=args.commands, plan=plan,
            tracer=tracer, counters=registry,
        )
    chaotic = result["chaotic"]
    print("== chaotic run ==")
    for line in chaotic.summary_lines():
        print(line)
    print()
    print("== verdict ==")
    print(f"fault kinds exercised : {len(chaotic.fault_counts)}")
    print(f"state preserved       : {result['state_preserved']} "
          "(PCR/NV digests match the fault-free run)")
    print(f"deterministic         : {result['deterministic']} "
          "(same seed → identical fault sequence)")
    _print_trace_summary(args.trace, tracer, registry)
    return 0


def _cmd_chaos_supervised(args: argparse.Namespace) -> int:
    """Supervised chaos: wedge storm, probe flap, overload — survived."""
    from repro.harness.chaos import (
        SUPERVISED_COMMANDS,
        run_supervised_chaos,
        run_supervised_chaos_demo,
        supervised_chaos_plan,
    )

    commands = args.commands if args.commands != 1000 else SUPERVISED_COMMANDS
    plan = supervised_chaos_plan(args.seed)
    tracer, registry, closer = _open_trace(args.trace, args.trace_sample)
    with closer:
        if args.single:
            report = run_supervised_chaos(
                seed=args.seed, commands=commands, plan=plan,
                tracer=tracer, counters=registry,
                conformance=args.conformance,
            )
            for line in report.summary_lines():
                print(line)
            if args.conformance:
                print(f"conformance: {report.conformance_checks} decisions "
                      "oracle-checked, 0 mismatches")
            _print_trace_summary(args.trace, tracer, registry)
            return 0
        result = run_supervised_chaos_demo(
            seed=args.seed, commands=commands, plan=plan,
        )
    chaotic = result["chaotic"]
    print("== supervised chaotic run ==")
    for line in chaotic.summary_lines():
        print(line)
    print()
    print("== verdict ==")
    print(f"zero silent drops     : {result['zero_dropped']} "
          f"({chaotic.answered}/{chaotic.submitted} frames answered)")
    print(f"supervision settled   : {chaotic.settled} "
          "(every guest healthy-with-closed-breaker or explicitly failed)")
    print(f"state preserved       : {chaotic.digests == result['clean'].digests} "
          "(all guests' digests match the fault-free run)")
    print(f"deterministic         : {result['deterministic']} "
          "(same seed → identical fault + breaker sequences)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Fleet demo: migration storm + host crash, zero loss, replayable."""
    from repro.cluster import (
        default_cluster_plan,
        run_cluster_demo,
        run_cluster_workload,
    )

    plan = default_cluster_plan(
        args.seed, args.hosts, crash_step=max(1, (2 * args.steps) // 3)
    )
    tracer, registry, closer = _open_trace(args.trace, args.trace_sample)
    with closer:
        if args.single:
            report = run_cluster_workload(
                seed=args.seed, hosts=args.hosts, guests=args.guests,
                steps=args.steps, plan=plan, storm=True,
                tracer=tracer, counters=registry,
                conformance=args.conformance,
            )
            for line in report.summary_lines():
                print(line)
            if args.conformance:
                print(f"conformance: {report.conformance_checks} decisions "
                      "oracle-checked, 0 mismatches")
            _print_trace_summary(args.trace, tracer, registry)
            return 0
        result = run_cluster_demo(
            seed=args.seed, hosts=args.hosts, guests=args.guests,
            steps=args.steps, plan=plan, tracer=tracer, counters=registry,
        )
    chaotic = result["chaotic"]
    print("== chaotic fleet run ==")
    for line in chaotic.summary_lines():
        print(line)
    print()
    print("== verdict ==")
    print(f"zero silent drops     : {result['zero_dropped']} "
          f"({chaotic.answered}/{chaotic.submitted} frames answered)")
    print(f"placed or failed      : True "
          f"({len(chaotic.final_placements)} guests on UP hosts, "
          f"{len(chaotic.placement_failures)} failed explicitly)")
    print(f"state preserved       : {result['state_preserved']} "
          "(all digests match the single-host fault-free control)")
    print(f"deterministic         : {result['deterministic']} "
          "(same seed → identical placement, migration and fault "
          "sequences)")
    _print_trace_summary(args.trace, tracer, registry)
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """Run a short supervised scenario and print per-guest health."""
    from repro.harness.chaos import run_supervised_chaos, supervised_chaos_plan

    plan = supervised_chaos_plan(args.seed) if args.faults else None
    report = run_supervised_chaos(
        seed=args.seed, commands=args.commands, plan=plan,
    )
    print(f"plan={report.plan_name} seed={report.seed} "
          f"commands={report.commands} settled={report.settled}")
    for guest in sorted(report.health):
        record = report.health[guest]
        breaker_seq = report.breaker_sequences[guest]
        shed = report.shed_counts.get(guest, {})
        print(f"\n{guest} (instance {record['instance']}):")
        print(f"  state     : {record['state']} "
              f"(restarts={record['restarts']}, "
              f"failures={record['failure_counts'] or 'none'})")
        print(f"  breaker   : {record['breaker']} "
              f"({len(breaker_seq)} state changes)")
        print(f"  admission : admitted={report.admitted.get(guest, 0)} "
              f"shed={sum(shed.values())}"
              + (f" ({', '.join(f'{k}={v}' for k, v in sorted(shed.items()))})"
                 if shed else ""))
        if record["transitions"]:
            print("  lifecycle : " + " ".join(record["transitions"]))
    return 0


def _print_trace_summary(path, tracer, registry) -> None:
    if tracer is None or path == "-":
        return
    sampled = (
        f" (1-in-{tracer.sample_rate} of {tracer.roots_seen} trees)"
        if tracer.sample_rate > 1 else ""
    )
    print(f"trace: {tracer.roots_emitted} root spans "
          f"({tracer.spans_started} total){sampled} -> {path}")
    if registry is not None and registry.series():
        print("counters:")
        for line in registry.exposition().splitlines():
            print(f"  {line}")


def cmd_attack_matrix(args: argparse.Namespace) -> int:
    from repro.attacks.scenarios import matrix_rows, run_attack_matrix
    from repro.metrics.tables import format_table

    fresh_timing_context()
    modes = (
        [AccessMode.BASELINE, AccessMode.IMPROVED]
        if args.mode == "both"
        else [AccessMode(args.mode)]
    )
    results = {m: run_attack_matrix(m, seed=args.seed) for m in modes}
    if len(modes) == 2:
        rows = matrix_rows(results[AccessMode.BASELINE], results[AccessMode.IMPROVED])
        print(format_table(["attack", "stock Xen vTPM", "improved"], rows,
                           title="Attack outcomes"))
    else:
        for report in results[modes[0]]:
            print(f"{report.attack:22s} {report.outcome.value:10s} {report.detail}")
    if args.verbose and len(modes) == 2:
        print()
        for reports in results.values():
            for report in reports:
                print(f"[{report.mode.value:8s}] {report.attack:22s} "
                      f"{report.outcome.value:9s} {report.detail}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    import contextlib

    from repro.obs import trace as obs_trace

    _register_experiments()
    names = list(EXPERIMENTS) if args.id == "all" else [args.id]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; "
              f"choose from {sorted(EXPERIMENTS)} or 'all'", file=sys.stderr)
        return 2
    # Spans only — experiments reset the timing context once per measured
    # configuration, and a counter registry is bound to a single epoch.
    tracer, _registry, closer = _open_trace(
        getattr(args, "trace", None), getattr(args, "trace_sample", 1)
    )
    with closer:
        scope = (
            obs_trace.tracer_scope(tracer)
            if tracer is not None
            else contextlib.nullcontext()
        )
        with scope:
            for name in names:
                result = EXPERIMENTS[name](args.quick)
                print(result.render())
                print()
    _print_trace_summary(getattr(args, "trace", None), tracer, None)
    return 0


def _trace_workload_op(workload: str) -> str:
    """Map CLI spellings (``pcrread``) to workload operation names."""
    return {"pcrread": "pcr_read", "pcr-read": "pcr_read"}.get(
        workload, workload.replace("-", "_")
    )


def _cmd_trace_live(args: argparse.Namespace) -> int:
    """``trace <workload>``: run it for real and show the span trees."""
    from repro.obs import (
        CounterRegistry,
        InMemorySink,
        Tracer,
        format_span_tree,
        registry_scope,
        tracer_scope,
    )
    from repro.util.errors import ReproError
    from repro.workloads.mixes import GuestSession

    op = _trace_workload_op(args.workload)
    fresh_timing_context()
    platform = build_platform(AccessMode(args.mode), seed=args.seed)
    session = GuestSession(
        platform.add_guest("trace-vm"), platform.rng.fork("trace-sess")
    )
    if op not in session.operation_names():
        print(f"unknown workload {args.workload!r}; choose from "
              f"{', '.join(session.operation_names())}", file=sys.stderr)
        return 2
    sink = InMemorySink()
    tracer = Tracer(sink)
    registry = CounterRegistry()
    with tracer_scope(tracer), registry_scope(registry):
        for _ in range(args.count):
            try:
                session.run_operation(op)
            except ReproError as exc:
                print(f"workload {op!r} failed: {exc}", file=sys.stderr)
                return 1
    spans = sink.validate()
    print(f"== {op} x{args.count} ({args.mode} regime, seed {args.seed}) — "
          f"{len(sink)} root spans, {spans} spans total ==")
    for root in sink.roots:
        for line in format_span_tree(root):
            print(line)
        print()
    print("== counters ==")
    sys.stdout.write(registry.exposition())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.workload is not None:
        return _cmd_trace_live(args)
    from repro.crypto.random_source import RandomSource
    from repro.workloads.mixes import (
        MIX_ATTESTATION,
        MIX_MEASUREMENT,
        MIX_MIXED,
        MIX_SEALED_STORAGE,
    )
    from repro.workloads.traces import SyntheticTrace

    fresh_timing_context()
    mixes = {
        m.name: m
        for m in (MIX_MEASUREMENT, MIX_SEALED_STORAGE, MIX_ATTESTATION, MIX_MIXED)
    }
    trace = SyntheticTrace.poisson(
        RandomSource(args.seed),
        guests=args.guests,
        rate_per_guest_per_sec=args.rate,
        duration_s=args.duration,
        mix=mixes[args.mix],
    )
    sys.stdout.write(trace.dumps())
    return 0


def cmd_xm(args: argparse.Namespace) -> int:
    from repro.xen import tools

    fresh_timing_context()
    platform = build_platform(AccessMode(args.mode), seed=args.seed)
    for i in range(args.guests):
        platform.add_guest(f"guest{i:02d}")
    hypercalls = platform.dom0_hypercalls()
    if args.op == "list":
        print(tools.xm_list(hypercalls))
    elif args.op == "info":
        print(tools.xm_info(hypercalls))
    elif args.op == "vcpu-list":
        print(tools.xm_vcpu_list(hypercalls, args.domid))
    elif args.op == "dump-core":
        image = tools.xm_dump_core(hypercalls, args.domid)
        print(f"dumped {len(image)} bytes of dom{args.domid} "
              f"({args.mode} regime)")
    return 0


def cmd_replay_trace(args: argparse.Namespace) -> int:
    """Replay a trace file against a fresh platform, print a latency summary."""
    import sys as _sys

    from repro.metrics.recorder import LatencyRecorder
    from repro.workloads.mixes import GuestSession
    from repro.workloads.traces import SyntheticTrace

    text = open(args.file).read() if args.file != "-" else _sys.stdin.read()
    trace = SyntheticTrace.loads(text)
    fresh_timing_context()
    platform = build_platform(AccessMode(args.mode), seed=args.seed)
    sessions = [
        GuestSession(platform.add_guest(f"g{i:02d}"), platform.rng.fork(f"s{i}"))
        for i in range(trace.guests)
    ]
    recorder = LatencyRecorder()
    for entry in trace:
        with recorder.measure(entry.operation):
            sessions[entry.guest_index].run_operation(entry.operation)
    from repro.metrics.tables import format_table

    rows = [
        (name, summary.count, summary.mean, summary.p95)
        for name, summary in sorted(recorder.summaries().items())
    ]
    print(format_table(
        ["operation", "count", "mean (us)", "p95 (us)"], rows,
        title=f"trace replay: {len(trace)} ops, {trace.guests} guests, "
              f"{args.mode} regime",
    ))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Wall-clock profile of the simulator's own command pipeline."""
    from repro.harness.profiling import profile_pipeline

    sink = None
    tracer = None
    if args.top:
        from repro.obs import SelfTimeSink, Tracer

        sink = SelfTimeSink()
        tracer = Tracer(sink)  # rate 1: every tree feeds the aggregate
    profile = profile_pipeline(
        commands=args.commands,
        batch_size=args.batch,
        mode=AccessMode(args.mode),
        seed=args.seed,
        tracer=tracer,
        supervised=args.supervised,
    )
    for line in profile.summary_lines():
        print(line)
    if sink is not None:
        print()
        print(f"hottest {args.top} span sites by wall-clock self time:")
        for line in sink.format_top(args.top):
            print(line)
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Conformance verification: explorer sweep, self-check, or replay."""
    import dataclasses

    from repro.core import monitor as monitor_mod
    from repro.verify import (
        BUDGETS,
        explore,
        load_repro,
        replay_repro,
        save_repro,
        shrink_failure,
    )

    if args.replay is not None:
        repro = load_repro(args.replay)
        print(f"replaying {args.replay}: {len(repro.steps)} steps, "
              f"seed {repro.seed}, {repro.guests} guests"
              + (f", injected bug {repro.inject_bug!r}"
                 if repro.inject_bug else ""))
        violation = replay_repro(repro)
        if violation is not None:
            print("violation reproduces:")
            print(f"  {violation.describe()}")
            return 1
        print("replay clean: the recorded violation no longer reproduces")
        return 0

    spec = BUDGETS[args.budget]
    if args.target is not None:
        spec = dataclasses.replace(spec, target_schedules=args.target)
    inject = args.inject_bug is not None
    if inject:
        monitor_mod.INJECT_STALE_POLICY_EPOCH = True
    try:
        report = explore(spec, seed=args.seed, progress=None)
        for line in report.summary_lines():
            print(line)
        if inject:
            # Self-check mode: the sweep MUST catch the planted bug and
            # shrink it to a small replayable repro.
            if not report.failures:
                print(f"FAIL: injected bug {args.inject_bug!r} was NOT "
                      "caught by the explorer")
                return 1
            repro = shrink_failure(report.failures[0])
            save_repro(args.output, repro)
            print(f"injected bug caught and shrunk to {len(repro.steps)} "
                  f"steps -> {args.output}")
            print(f"  {repro.violation.describe()}")
            print(f"  replay: python -m repro verify --replay {args.output}")
            if len(repro.steps) > 10:
                print("FAIL: shrunk repro exceeds 10 steps")
                return 1
            return 0
    finally:
        if inject:
            monitor_mod.INJECT_STALE_POLICY_EPOCH = False

    if report.failures:
        repro = shrink_failure(report.failures[0])
        save_repro(args.output, repro)
        print(f"counterexample shrunk to {len(repro.steps)} steps "
              f"-> {args.output}")
        print(f"  replay: python -m repro verify --replay {args.output}")
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        Analyzer,
        check_against_baseline,
        injected_module,
        load_baseline,
        render_baseline,
        render_json,
        render_text,
    )
    from repro.analysis.report import default_baseline_path

    rule_ids = [args.rule] if args.rule else None
    try:
        analyzer = Analyzer(rule_ids=rule_ids)
    except KeyError as exc:
        print(f"analyze: {exc.args[0]}", file=sys.stderr)
        return 2
    extra = []
    if args.inject_violation:
        try:
            extra.append(injected_module(args.inject_violation))
        except KeyError:
            from repro.analysis import RULES

            print(
                f"analyze: unknown rule id {args.inject_violation!r}; "
                f"known: {', '.join(sorted(RULES))}",
                file=sys.stderr,
            )
            return 2
    result = analyzer.run(extra=extra)

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if args.write_baseline:
        baseline_path.write_text(render_baseline(result))
        print(f"baseline written: {baseline_path} "
              f"({len(result.findings)} finding(s) accepted as debt)")
        return 0

    outcome = None
    if args.check:
        outcome = check_against_baseline(result, load_baseline(baseline_path))

    if args.json:
        print(render_json(result, outcome), end="")
    else:
        print(render_text(result, outcome))

    if outcome is not None:
        return 0 if outcome.clean else 1
    return 0 if not result.findings else 1


def cmd_report(args: argparse.Namespace) -> int:
    _register_experiments()
    print("# vTPM access-control reproduction — evaluation report\n")
    print(f"(quick mode: {args.quick})\n")
    for name, runner in EXPERIMENTS.items():
        result = runner(args.quick)
        print(f"## {name}\n")
        print("```")
        print(result.render())
        print("```\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vTPM access control on Xen — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="run the quickstart flow")
    p_demo.add_argument("--mode", choices=["baseline", "improved"],
                        default="improved")
    p_demo.add_argument("--seed", type=int, default=2010)
    p_demo.set_defaults(fn=cmd_demo)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection demo: seeded chaos, zero state loss",
    )
    p_chaos.add_argument("--seed", type=int, default=2026)
    p_chaos.add_argument("--commands", type=int, default=1000)
    p_chaos.add_argument("--supervised", action="store_true",
                         help="run the supervised resilience demo (health "
                              "state machine, breakers, admission control)")
    p_chaos.add_argument("--single", action="store_true",
                         help="one chaotic run only (skip control + replay)")
    p_chaos.add_argument("--trace", metavar="PATH", default=None,
                         help="write span trees of the chaotic run as JSONL "
                              "(- for stdout)")
    p_chaos.add_argument("--conformance", action="store_true",
                         help="piggyback the reference-model oracle on every "
                              "authz decision (requires --single)")
    p_chaos.add_argument("--trace-sample", metavar="N", type=int, default=1,
                         help="record 1-in-N root span trees (deterministic "
                              "head sampling; counters stay exact)")
    p_chaos.set_defaults(fn=cmd_chaos)

    p_cluster = sub.add_parser(
        "cluster",
        help="multi-host fleet demo: storm + host crash, zero state loss",
    )
    p_cluster.add_argument("--seed", type=int, default=2027)
    p_cluster.add_argument("--hosts", type=int, default=4)
    p_cluster.add_argument("--guests", type=int, default=32)
    p_cluster.add_argument("--steps", type=int, default=96)
    p_cluster.add_argument("--single", action="store_true",
                           help="one chaotic run only (skip control + replay)")
    p_cluster.add_argument("--trace", metavar="PATH", default=None,
                           help="write span trees of the chaotic run as JSONL "
                                "(- for stdout)")
    p_cluster.add_argument("--conformance", action="store_true",
                           help="piggyback the reference-model oracle on "
                                "every host's authz decisions (requires "
                                "--single)")
    p_cluster.add_argument("--trace-sample", metavar="N", type=int, default=1,
                           help="record 1-in-N root span trees (deterministic "
                                "head sampling; counters stay exact)")
    p_cluster.set_defaults(fn=cmd_cluster)

    p_attack = sub.add_parser("attack-matrix", help="run the attack toolkit")
    p_attack.add_argument("--mode", choices=["baseline", "improved", "both"],
                          default="both")
    p_attack.add_argument("--seed", type=int, default=42)
    p_attack.add_argument("--verbose", action="store_true")
    p_attack.set_defaults(fn=cmd_attack_matrix)

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("id", help="table1|fig1|table2|fig2|fig3|table3|fig4|"
                                  "table4|fig5|fig6|fig7|all")
    p_exp.add_argument("--quick", action="store_true",
                       help="smaller sizes for a fast run")
    p_exp.add_argument("--trace", metavar="PATH", default=None,
                       help="write span trees as JSONL (- for stdout)")
    p_exp.add_argument("--trace-sample", metavar="N", type=int, default=1,
                       help="record 1-in-N root span trees (deterministic "
                            "head sampling)")
    p_exp.set_defaults(fn=cmd_experiment)

    p_trace = sub.add_parser(
        "trace",
        help="emit a synthetic trace, or run one workload with tracing on",
    )
    p_trace.add_argument(
        "workload", nargs="?", default=None,
        help="run this operation live (pcrread, seal, quote, …) and print "
             "its span trees; omit to emit a synthetic Poisson trace",
    )
    p_trace.add_argument("--mode", choices=["baseline", "improved"],
                         default="improved",
                         help="regime for a live workload run")
    p_trace.add_argument("--count", type=int, default=2,
                         help="repetitions of the live workload (default 2)")
    p_trace.add_argument("--guests", type=int, default=4)
    p_trace.add_argument("--rate", type=float, default=100.0,
                         help="commands per guest per second")
    p_trace.add_argument("--duration", type=float, default=1.0,
                         help="seconds of trace")
    p_trace.add_argument("--mix", default="mixed",
                         choices=["measurement-heavy", "sealed-storage",
                                  "attestation", "mixed"])
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.set_defaults(fn=cmd_trace)

    p_xm = sub.add_parser("xm", help="xm-style machine administration views")
    p_xm.add_argument("op", choices=["list", "info", "vcpu-list", "dump-core"])
    p_xm.add_argument("--mode", choices=["baseline", "improved"],
                      default="improved")
    p_xm.add_argument("--guests", type=int, default=2)
    p_xm.add_argument("--domid", type=int, default=0)
    p_xm.add_argument("--seed", type=int, default=2010)
    p_xm.set_defaults(fn=cmd_xm)

    p_replay = sub.add_parser("replay-trace",
                              help="replay a trace file against a platform")
    p_replay.add_argument("file", help="trace file path, or - for stdin")
    p_replay.add_argument("--mode", choices=["baseline", "improved"],
                          default="improved")
    p_replay.add_argument("--seed", type=int, default=2010)
    p_replay.set_defaults(fn=cmd_replay_trace)

    p_profile = sub.add_parser(
        "profile",
        help="wall-clock profile of the simulator's command pipeline",
    )
    p_profile.add_argument("--commands", type=int, default=10_000)
    p_profile.add_argument("--batch", type=int, default=1,
                           help="frames per ring submission (1 = classic)")
    p_profile.add_argument("--mode", choices=["baseline", "improved"],
                           default="improved")
    p_profile.add_argument("--seed", type=int, default=2010)
    p_profile.add_argument("--top", metavar="N", type=int, default=0,
                           help="also print the N hottest span sites by "
                                "wall-clock self time (pooled span sink)")
    p_profile.add_argument("--supervised", action="store_true",
                           help="profile with the resilience supervisor "
                                "attached")
    p_profile.set_defaults(fn=cmd_profile)

    p_health = sub.add_parser(
        "health",
        help="run a short supervised scenario and print per-guest health",
    )
    p_health.add_argument("--seed", type=int, default=2026)
    p_health.add_argument("--commands", type=int, default=200)
    p_health.add_argument("--no-faults", dest="faults", action="store_false",
                          help="fault-free control run (everything healthy)")
    p_health.set_defaults(fn=cmd_health)

    p_verify = sub.add_parser(
        "verify",
        help="conformance verification: schedule explorer vs the "
             "reference-model oracle",
    )
    p_verify.add_argument("--budget", choices=["small", "deep"],
                          default="small",
                          help="exploration depth: small is the seeded CI "
                               "sweep (<60s), deep is the nightly sweep")
    p_verify.add_argument("--seed", type=int, default=2010)
    p_verify.add_argument("--target", type=int, default=None,
                          help="override the budget's distinct-schedule "
                               "target (smoke tests)")
    p_verify.add_argument("--output", metavar="PATH",
                          default="verify-repro.json",
                          help="where to write the shrunk repro JSON on "
                               "failure")
    p_verify.add_argument("--replay", metavar="FILE", default=None,
                          help="replay a repro artifact; exits 1 if the "
                               "violation reproduces")
    p_verify.add_argument("--inject-bug", choices=["cache-epoch"],
                          default=None,
                          help="self-check: plant a stale-cache-epoch authz "
                               "bug behind the test-only hook and require "
                               "the explorer to catch and shrink it")
    p_verify.set_defaults(fn=cmd_verify)

    p_analyze = sub.add_parser(
        "analyze",
        help="static analysis: fail-closed / determinism / secret-flow "
             "lints over the whole package",
    )
    p_analyze.add_argument("--rule", metavar="ID", default=None,
                           help="run one rule only (fail-closed, "
                                "determinism, secret-flow, audit-on-deny, "
                                "counter-registry, virtual-time)")
    p_analyze.add_argument("--check", action="store_true",
                           help="gate mode: exit 1 on any finding not in "
                                "the committed baseline, or on stale "
                                "baseline entries (CI uses this)")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable findings report on stdout")
    p_analyze.add_argument("--inject-violation", metavar="RULE", default=None,
                           help="self-check: plant RULE's example violation "
                                "into the walk; the run must then fail")
    p_analyze.add_argument("--baseline", metavar="PATH", default=None,
                           help="baseline file (default: "
                                "analysis-baseline.json at the repo root)")
    p_analyze.add_argument("--write-baseline", action="store_true",
                           help="accept the current findings as debt and "
                                "rewrite the baseline file")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_report = sub.add_parser("report", help="full evaluation as markdown")
    p_report.add_argument("--quick", action="store_true")
    p_report.set_defaults(fn=cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
