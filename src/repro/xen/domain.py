"""Domains: Dom0, guest DomUs and stub domains.

A domain owns a memory region, a vCPU register file (the target of the
"CPU dump" attack), a kernel image (what launch-time measurement hashes)
and a lifecycle state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.util.errors import XenError
from repro.xen.memory import MemoryRegion

#: vCPU register names modelled (x86-64 subset; enough for the dump attack)
VCPU_REGISTERS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15", "rip",
)


class DomainState(enum.Enum):
    BUILDING = "building"
    RUNNING = "running"
    PAUSED = "paused"
    SHUTDOWN = "shutdown"
    DEAD = "dead"


@dataclass
class VcpuState:
    """One vCPU's architectural state, dumpable by privileged tooling."""

    registers: Dict[str, int] = field(
        default_factory=lambda: {r: 0 for r in VCPU_REGISTERS}
    )

    def load_bytes(self, register: str, value: bytes) -> None:
        """Stuff up to 8 bytes into a register (how secrets end up in CPUs)."""
        if register not in self.registers:
            raise XenError(f"no register {register!r}")
        if len(value) > 8:
            raise XenError("registers hold at most 8 bytes")
        self.registers[register] = int.from_bytes(value, "big")

    def dump(self) -> Dict[str, int]:
        return dict(self.registers)


@dataclass
class Domain:
    """A Xen domain."""

    domid: int
    name: str
    uuid: str
    privileged: bool
    memory: MemoryRegion
    kernel_image: bytes
    config: Dict[str, str] = field(default_factory=dict)
    state: DomainState = DomainState.BUILDING
    vcpu: VcpuState = field(default_factory=VcpuState)
    #: filled in by the identity layer at launch (SHA-256 measurement)
    measurement: Optional[bytes] = None

    @property
    def is_alive(self) -> bool:
        return self.state in (DomainState.RUNNING, DomainState.PAUSED,
                              DomainState.BUILDING)

    def require_running(self) -> None:
        if self.state != DomainState.RUNNING:
            raise XenError(f"dom{self.domid} ({self.name}) is {self.state.value}")

    def __repr__(self) -> str:
        return (
            f"Domain(domid={self.domid}, name={self.name!r}, "
            f"privileged={self.privileged}, state={self.state.value})"
        )
