"""Page-granular physical memory with ownership and foreign mapping.

This is where the paper's threat lives: Xen lets a privileged domain map
any other domain's frames (``xc_map_foreign_range``), which is exactly what
"CPU and memory dump software" uses.  The access-control improvement marks
the vTPM manager's secret-holding frames *hypervisor-protected*: foreign
map requests against them fail (or return zeroed snapshots), closing the
dump channel while leaving normal grant-based sharing intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.timing import charge
from repro.util.errors import PageFault, XenError

PAGE_SIZE = 4096


@dataclass
class Page:
    """One machine frame."""

    frame: int
    owner: int                      # domain id
    data: bytearray = field(default_factory=lambda: bytearray(PAGE_SIZE))
    protected: bool = False         # excluded from foreign mapping
    shared_with: set[int] = field(default_factory=set)  # via grant table


class PhysicalMemory:
    """The machine's frame array plus the allocator."""

    def __init__(self, total_pages: int = 1 << 16) -> None:
        if total_pages <= 0:
            raise XenError(f"machine must have pages, got {total_pages}")
        self.total_pages = total_pages
        self._pages: Dict[int, Page] = {}
        self._next_frame = 0

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def allocate(self, owner: int, count: int) -> List[int]:
        """Allocate ``count`` frames to a domain; returns frame numbers."""
        if count <= 0:
            raise XenError(f"cannot allocate {count} pages")
        if self.allocated_pages + count > self.total_pages:
            raise XenError(
                f"out of memory: {self.allocated_pages}+{count} > {self.total_pages}"
            )
        frames = []
        for _ in range(count):
            frame = self._next_frame
            self._next_frame += 1
            self._pages[frame] = Page(frame=frame, owner=owner)
            frames.append(frame)
        return frames

    def free(self, frames: Iterable[int]) -> None:
        """Release frames; contents are scrubbed (Xen scrubs on free)."""
        for frame in frames:
            page = self._pages.pop(frame, None)
            if page is not None:
                page.data[:] = b"\x00" * PAGE_SIZE

    def page(self, frame: int) -> Page:
        try:
            return self._pages[frame]
        except KeyError:
            raise PageFault(f"frame {frame} is not allocated") from None

    def frames_owned_by(self, domid: int) -> List[int]:
        """Every frame a domain owns (dump tools walk the full P2M, not
        just the initial allocation)."""
        return sorted(f for f, p in self._pages.items() if p.owner == domid)

    # -- owner access -----------------------------------------------------------

    def write(self, domid: int, frame: int, offset: int, data: bytes) -> None:
        """Write by the owning domain (or a domain it is shared with)."""
        page = self.page(frame)
        if page.owner != domid and domid not in page.shared_with:
            raise PageFault(f"dom{domid} does not own frame {frame}")
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise PageFault(f"write beyond page: {offset}+{len(data)}")
        page.data[offset : offset + len(data)] = data

    def read(self, domid: int, frame: int, offset: int, size: int) -> bytes:
        page = self.page(frame)
        if page.owner != domid and domid not in page.shared_with:
            raise PageFault(f"dom{domid} does not own frame {frame}")
        if offset < 0 or offset + size > PAGE_SIZE:
            raise PageFault(f"read beyond page: {offset}+{size}")
        return bytes(page.data[offset : offset + size])

    # -- protection (the paper's hook) -------------------------------------------

    def set_protected(self, frame: int, protected: bool = True) -> None:
        """Mark a frame hypervisor-protected (vTPM secret pages)."""
        self.page(frame).protected = protected

    # -- foreign mapping (the attack surface) --------------------------------------

    def foreign_map(
        self, requester: int, frame: int, *, requester_privileged: bool
    ) -> bytes:
        """Map another domain's frame, as privileged dump tools do.

        Returns a snapshot of the page contents.  Unprivileged requesters
        are refused outright; protected frames raise :class:`PageFault`
        even for Dom0 — that refusal *is* the paper's defence.
        """
        charge("xen.hypercall")
        charge("xen.grant.map")
        page = self.page(frame)
        if page.protected:
            # Refused even for the owning domain: dump tooling goes through
            # this interface, while the manager reads its secrets through
            # its private mapping (read/write above).  This is the paper's
            # defence against Dom0-resident dump software.
            raise PageFault(
                f"frame {frame} is hypervisor-protected; foreign map refused"
            )
        if page.owner == requester:
            return bytes(page.data)
        if not requester_privileged:
            raise PageFault(
                f"dom{requester} is not privileged to foreign-map frame {frame}"
            )
        charge("xen.page.copy", PAGE_SIZE)
        return bytes(page.data)


class MemoryRegion:
    """A contiguous-by-construction byte region over a domain's frames.

    Gives domain software a flat address space ``[0, size)`` without every
    caller doing page arithmetic.
    """

    def __init__(self, memory: PhysicalMemory, domid: int, frames: List[int]) -> None:
        self._memory = memory
        self.domid = domid
        self.frames = list(frames)

    @property
    def size(self) -> int:
        return len(self.frames) * PAGE_SIZE

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > self.size:
            raise PageFault(f"region write out of range: {offset}+{len(data)}")
        pos = 0
        while pos < len(data):
            frame_idx, page_off = divmod(offset + pos, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, len(data) - pos)
            self._memory.write(
                self.domid, self.frames[frame_idx], page_off, data[pos : pos + chunk]
            )
            pos += chunk

    def read(self, offset: int, size: int) -> bytes:
        if offset < 0 or offset + size > self.size:
            raise PageFault(f"region read out of range: {offset}+{size}")
        out = bytearray()
        pos = 0
        while pos < size:
            frame_idx, page_off = divmod(offset + pos, PAGE_SIZE)
            chunk = min(PAGE_SIZE - page_off, size - pos)
            out += self._memory.read(
                self.domid, self.frames[frame_idx], page_off, chunk
            )
            pos += chunk
        return bytes(out)

    def set_protected(self, protected: bool = True) -> None:
        """Protect/unprotect every frame of the region."""
        for frame in self.frames:
            self._memory.set_protected(frame, protected)
