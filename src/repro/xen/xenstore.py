"""XenStore: the hierarchical configuration registry.

Split drivers rendezvous through paths like
``/local/domain/<id>/device/vtpm/0/backend``; the vTPM manager publishes
instance bindings under ``/vtpm/<uuid>``.  Nodes carry an owner domain and
a read-permission list.  In stock Xen, Dom0 may rewrite anything — which is
how the rogue re-binding attack works; the improved access-control layer
does not trust XenStore bindings and verifies identity cryptographically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.timing import charge
from repro.util.errors import XenStoreError

Watch = Callable[[str, Optional[str]], None]  # (path, new value or None)


@dataclass
class Node:
    path: str
    value: str = ""
    owner: int = 0
    readers: set[int] = field(default_factory=set)  # empty = world-readable


class XenStore:
    """A flat-path store with Xen-ish permission semantics."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._watches: Dict[str, List[Watch]] = {}

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/"):
            raise XenStoreError(f"path must be absolute: {path!r}")
        while "//" in path:
            path = path.replace("//", "/")
        return path.rstrip("/") or "/"

    def write(
        self,
        domid: int,
        path: str,
        value: str,
        *,
        privileged: bool = False,
        readers: Optional[set[int]] = None,
    ) -> None:
        """Create or update a node.

        Unprivileged domains may only write under their own
        ``/local/domain/<id>`` subtree or nodes they already own —
        Dom0 (privileged) may write anything, faithfully reproducing the
        over-broad authority the paper worries about.
        """
        charge("xen.xenstore.op")
        path = self._normalize(path)
        existing = self._nodes.get(path)
        if not privileged:
            own_prefix = f"/local/domain/{domid}"
            owns_existing = existing is not None and existing.owner == domid
            if not path.startswith(own_prefix) and not owns_existing:
                raise XenStoreError(
                    f"dom{domid} may not write {path} (outside its subtree)"
                )
        owner = existing.owner if existing is not None else domid
        node = Node(path=path, value=value, owner=owner)
        if readers is not None:
            node.readers = set(readers)
        elif existing is not None:
            node.readers = set(existing.readers)
        self._nodes[path] = node
        self._fire_watches(path, value)

    def read(self, domid: int, path: str, *, privileged: bool = False) -> str:
        charge("xen.xenstore.op")
        path = self._normalize(path)
        node = self._nodes.get(path)
        if node is None:
            raise XenStoreError(f"no such node {path}")
        if node.readers and domid not in node.readers and node.owner != domid \
                and not privileged:
            raise XenStoreError(f"dom{domid} may not read {path}")
        return node.value

    def exists(self, path: str) -> bool:
        return self._normalize(path) in self._nodes

    def remove(self, domid: int, path: str, *, privileged: bool = False) -> None:
        charge("xen.xenstore.op")
        path = self._normalize(path)
        # Remove the node and its subtree, as xenstore-rm does.  The parent
        # path itself may not exist as a node (directories are implicit).
        doomed = [k for k in self._nodes if k == path or k.startswith(path + "/")]
        if not privileged:
            for key in doomed:
                if self._nodes[key].owner != domid:
                    raise XenStoreError(f"dom{domid} may not remove {key}")
        for key in doomed:
            del self._nodes[key]
            self._fire_watches(key, None)

    def list_dir(self, path: str) -> list[str]:
        """Immediate children names of a path (xenstore-ls one level)."""
        path = self._normalize(path)
        prefix = "/" if path == "/" else path + "/"
        children = set()
        for key in self._nodes:
            if key.startswith(prefix) and key != path:
                rest = key[len(prefix):]
                if rest:
                    children.add(rest.split("/", 1)[0])
        return sorted(children)

    def watch(self, path: str, callback: Watch) -> None:
        """Fire ``callback`` on writes/removes at or under ``path``."""
        path = self._normalize(path)
        self._watches.setdefault(path, []).append(callback)

    def _fire_watches(self, path: str, value: Optional[str]) -> None:
        for watch_path, callbacks in self._watches.items():
            if path == watch_path or path.startswith(watch_path + "/"):
                for cb in list(callbacks):
                    cb(path, value)

    @property
    def node_count(self) -> int:
        return len(self._nodes)
