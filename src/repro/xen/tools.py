"""`xm`-style administrative tooling over the hypercall interface.

Formatted views of the machine for operators — and, in the baseline threat
model, for attackers: ``xm_dump_core`` is exactly the tool the paper's
abstract calls "memory dump software".  Everything funnels through
:class:`~repro.xen.hypercall.HypercallInterface`, so privilege checks
apply identically to humans and scripts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.tables import format_table
from repro.xen.domain import Domain
from repro.xen.hypercall import HypercallInterface
from repro.xen.memory import PAGE_SIZE


def xm_list(hypercalls: HypercallInterface) -> str:
    """``xm list``: one row per domain."""
    rows = []
    for domain in hypercalls.list_domains():
        rows.append(
            (
                domain.domid,
                domain.name,
                len(domain.memory.frames) * PAGE_SIZE // 1024,
                domain.state.value,
                "yes" if domain.privileged else "no",
            )
        )
    return format_table(
        ["id", "name", "mem (KiB)", "state", "privileged"], rows,
        title="xm list",
    )


def xm_info(hypercalls: HypercallInterface) -> str:
    """``xm info``: machine-level summary."""
    xen = hypercalls._xen
    rows = [
        ("total_pages", xen.memory.total_pages),
        ("allocated_pages", xen.memory.allocated_pages),
        ("free_pages", xen.memory.total_pages - xen.memory.allocated_pages),
        ("live_domains", xen.live_domain_count),
        ("event_channels", xen.events.open_count),
        ("active_grants", xen.grants.active_grants),
        ("xenstore_nodes", xen.store.node_count),
    ]
    return format_table(["property", "value"], rows, title="xm info")


def xm_vcpu_list(hypercalls: HypercallInterface, domid: int) -> str:
    """``xm vcpu-list`` with register contents (the CPU-dump tool)."""
    registers = hypercalls.dump_vcpu(domid)
    rows = [(name, f"{value:#018x}") for name, value in sorted(registers.items())]
    return format_table(
        ["register", "value"], rows, title=f"vcpu context of dom{domid}"
    )


def xm_dump_core(hypercalls: HypercallInterface, domid: int) -> bytes:
    """``xm dump-core``: the raw memory image (paper's attack tool).

    Returns the concatenated mappable pages.  Hypervisor-protected frames
    are absent, so on an improved platform the vTPM state simply is not in
    the file.
    """
    image = hypercalls.dump_domain_memory(domid)
    return b"".join(image[frame] for frame in sorted(image))


def xm_destroy(hypercalls: HypercallInterface, domid: int) -> None:
    """``xm destroy``: immediate teardown."""
    hypercalls.destroy_domain(domid)


def xenstore_ls(hypercalls: HypercallInterface, path: str = "/") -> List[str]:
    """``xenstore-ls``: recursive listing of node paths under ``path``."""
    xen = hypercalls._xen
    out: List[str] = []

    def walk(node_path: str) -> None:
        for child in xen.store.list_dir(node_path):
            child_path = (node_path.rstrip("/") + "/" + child)
            out.append(child_path)
            walk(child_path)

    walk(path)
    return out
