"""Credit scheduler (simplified): weighted round-robin with accounting.

The throughput experiments interleave many guest vCPUs; the scheduler
decides the order and charges context-switch costs, giving multi-VM runs a
realistic serialization structure without simulating instruction streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.timing import charge
from repro.util.errors import XenError

DEFAULT_WEIGHT = 256
DEFAULT_TIMESLICE_US = 30_000.0  # Xen credit scheduler default: 30 ms


@dataclass
class Vcpu:
    domid: int
    weight: int = DEFAULT_WEIGHT
    credits: float = 0.0
    runs: int = 0
    total_us: float = 0.0


class CreditScheduler:
    """Weighted fair scheduler over runnable vCPUs."""

    def __init__(self, timeslice_us: float = DEFAULT_TIMESLICE_US) -> None:
        if timeslice_us <= 0:
            raise XenError(f"timeslice must be positive, got {timeslice_us}")
        self.timeslice_us = timeslice_us
        self._vcpus: Dict[int, Vcpu] = {}
        self._last: Optional[int] = None
        self.context_switches = 0

    def add(self, domid: int, weight: int = DEFAULT_WEIGHT) -> None:
        if weight <= 0:
            raise XenError(f"weight must be positive, got {weight}")
        if domid in self._vcpus:
            raise XenError(f"dom{domid} already scheduled")
        self._vcpus[domid] = Vcpu(domid=domid, weight=weight)

    def remove(self, domid: int) -> None:
        self._vcpus.pop(domid, None)
        if self._last == domid:
            self._last = None

    @property
    def runnable(self) -> List[int]:
        return sorted(self._vcpus)

    def _refill(self) -> None:
        total_weight = sum(v.weight for v in self._vcpus.values())
        if total_weight == 0:
            # Every vCPU was removed between pick_next() calls (or the
            # refill was requested on an empty run queue): there is
            # nothing to apportion credits over, and dividing would
            # crash the scheduler loop with ZeroDivisionError.
            raise XenError("credit refill with no runnable vCPUs")
        for vcpu in self._vcpus.values():
            vcpu.credits += vcpu.weight / total_weight * len(self._vcpus)

    def pick_next(self) -> int:
        """Choose the next vCPU (highest credits; deterministic tie-break)."""
        if not self._vcpus:
            raise XenError("no runnable vCPUs")
        best = max(
            self._vcpus.values(), key=lambda v: (v.credits, -v.domid)
        )
        if best.credits <= 0:
            self._refill()
            best = max(self._vcpus.values(), key=lambda v: (v.credits, -v.domid))
        if self._last is not None and self._last != best.domid:
            charge("xen.ctx.switch")
            self.context_switches += 1
        self._last = best.domid
        return best.domid

    def account(self, domid: int, ran_us: float) -> None:
        """Charge a vCPU for time it actually consumed."""
        vcpu = self._vcpus.get(domid)
        if vcpu is None:
            raise XenError(f"dom{domid} is not scheduled")
        if ran_us < 0:
            raise XenError(f"negative runtime {ran_us}")
        vcpu.credits -= ran_us / self.timeslice_us
        vcpu.runs += 1
        vcpu.total_us += ran_us

    def stats(self) -> Dict[int, Vcpu]:
        return dict(self._vcpus)
