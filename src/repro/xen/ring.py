"""The tpmif transport: one granted page plus one event channel.

Xen's vTPM split driver is not a multi-slot I/O ring: the front-end grants
a single page to the back-end, writes a whole TPM command into it, kicks
the event channel, and the back-end overwrites the page with the response.
This module reproduces that byte-for-byte over the simulated grant table,
physical pages and event channels — so the access-control monitor sits on
a faithful command path, and so ring transfers cost virtual time.

Page layout: ``status(u32) | length(u32) | payload…``

**Batched frames** (the throughput fast path) reuse the same page with a
vector layout: ``status(u32) | count(u32) | [length(u32) | payload…]*``.
The front-end packs up to a page's worth of commands, kicks the channel
*once*, and the back-end answers with the matching response vector — so
the per-notify costs (``xen.evtchn.notify``, the manager's
``vtpm.dispatch`` demux) are amortized over the whole batch while every
command is still individually authorized.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.faults import FaultKind, fire, note_recovery, note_retry
from repro.faults import injector as _injector
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.sim.timing import charge, get_context
from repro.util.errors import RetryExhausted, RingError
from repro.xen.memory import PAGE_SIZE, PhysicalMemory

_RING_KICKS = obs_counters.counter("ring.kicks")
_RING_SHED = obs_counters.counter("ring.shed")
_RING_BATCHED_FRAMES = obs_counters.counter("ring.batched_frames")
_RING_KICK_RETRIES = obs_counters.counter("ring.kick_retries")

STATUS_IDLE = 0
STATUS_COMMAND = 1
STATUS_RESPONSE = 2
STATUS_BATCH = 3
STATUS_BATCH_RESPONSE = 4

_HEADER = struct.Struct(">II")
MAX_PAYLOAD = PAGE_SIZE - _HEADER.size

#: how many times tpmfront re-kicks a silent back-end before giving up
MAX_KICKS = 5

Backend = Callable[[bytes], bytes]
BatchBackend = Callable[[list], list]
#: admission callback: list of wires → per-frame verdicts (None = admit,
#: bytes = the pre-built shed response to return instead)
Admission = Callable[[list], list]


def _pack_vector(status: int, frames: list) -> bytes:
    """Serialize a frame vector into the batched page layout."""
    buf = bytearray(_HEADER.pack(status, len(frames)))
    for frame in frames:
        buf += len(frame).to_bytes(4, "big")
        buf += frame
    return bytes(buf)


def max_batch_frames(frame_size: int) -> int:
    """How many frames of ``frame_size`` bytes fit in one batched page."""
    if frame_size <= 0:
        raise RingError(f"frame size must be positive, got {frame_size}")
    return max(1, (PAGE_SIZE - _HEADER.size) // (4 + frame_size))


class TpmRing:
    """Front-end view of the shared command page.

    Built by the front-end domain: it allocates the page, grants it to the
    back-end domain, and exchanges whole commands synchronously (the event
    channel delivery is synchronous under the deterministic simulator,
    matching the blocking ioctl path of the real tpmfront driver).
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        grants,            # GrantTable
        events,            # EventChannels
        front_domid: int,
        back_domid: int,
    ) -> None:
        self._memory = memory
        self._grants = grants
        self._events = events
        self.front_domid = front_domid
        self.back_domid = back_domid
        [self.frame] = memory.allocate(front_domid, 1)
        self.gref = grants.grant_access(front_domid, back_domid, self.frame)
        self.port = events.alloc_unbound(front_domid, back_domid)
        self._backend: Optional[Backend] = None
        self._batch_backend: Optional[BatchBackend] = None
        self._admission: Optional[Admission] = None
        self._admission_one = None
        self._mapped_frame: Optional[int] = None
        self.commands_carried = 0
        events.bind(self.port, front_domid, self._on_front_event)
        self._response_ready = False

    # -- back-end side -----------------------------------------------------------

    def connect_backend(
        self, backend: Backend, batch_backend: Optional[BatchBackend] = None
    ) -> None:
        """Back-end maps the grant and installs its command handler(s).

        ``batch_backend`` (a list-of-wires → list-of-responses callable)
        enables the vector protocol; without it, batched submissions are
        drained through ``backend`` one frame at a time.
        """
        self._mapped_frame = self._grants.map_grant(
            self.back_domid, self.front_domid, self.gref
        )
        self._backend = backend
        self._batch_backend = batch_backend
        self._events.bind(self.port, self.back_domid, self._on_back_event)

    def set_admission(self, admission: Optional[Admission],
                      admission_one=None) -> None:
        """Install (or clear) the back-end's admission-control verdict hook.

        With a hook installed, every frame read off the page is submitted
        to it *before* the backend callable; frames it sheds are answered
        with its pre-built response and never reach the backend.  Shed
        frames still occupy their slot in the response vector, so the
        front-end always receives exactly one response per command.

        ``admission_one``, when given, is the single-frame variant
        (``wire -> verdict``) used on the unbatched path so one command
        does not pay the list round-trip of the vector hook.
        """
        self._admission = admission
        self._admission_one = admission_one

    def disconnect_backend(self) -> None:
        if self._mapped_frame is not None:
            self._grants.unmap_grant(self.back_domid, self.front_domid, self.gref)
            self._mapped_frame = None
        self._backend = None
        self._batch_backend = None
        self._admission = None
        self._admission_one = None

    def _on_back_event(self, _port: int) -> None:
        """Back-end interrupt: read command(s), execute, write response(s)."""
        if self._backend is None or self._mapped_frame is None:
            raise RingError("back-end notified but not connected")
        status, length = _HEADER.unpack(
            self._memory.read(self.back_domid, self._mapped_frame, 0, _HEADER.size)
        )
        if status == STATUS_BATCH:
            self._on_back_batch(length)
            return
        if status != STATUS_COMMAND:
            raise RingError(f"back-end woke with status {status}, not COMMAND")
        if length > MAX_PAYLOAD:
            raise RingError(f"command of {length} bytes exceeds page window")
        charge("xen.ring.transfer", length)
        command = self._memory.read(
            self.back_domid, self._mapped_frame, _HEADER.size, length
        )
        if self._admission_one is not None:
            verdict = self._admission_one(command)
        elif self._admission is not None:
            [verdict] = self._admission([command])
        else:
            verdict = None
        if verdict is not None:
            _RING_SHED.inc()
            response = verdict
        else:
            response = self._backend(command)
        if len(response) > MAX_PAYLOAD:
            raise RingError(f"response of {len(response)} bytes exceeds page window")
        charge("xen.ring.transfer", len(response))
        self._memory.write(
            self.back_domid,
            self._mapped_frame,
            0,
            _HEADER.pack(STATUS_RESPONSE, len(response)) + response,
        )
        self._events.notify(self.port, self.back_domid)

    def _on_back_batch(self, count: int) -> None:
        """Drain a batched submission: one page read, one response vector."""
        page = self._memory.read(
            self.back_domid, self._mapped_frame, 0, PAGE_SIZE
        )
        commands = []
        offset = _HEADER.size
        for _ in range(count):
            if offset + 4 > PAGE_SIZE:
                raise RingError("batch vector overruns the page")
            length = int.from_bytes(page[offset : offset + 4], "big")
            offset += 4
            if offset + length > PAGE_SIZE:
                raise RingError("batched command overruns the page")
            commands.append(page[offset : offset + length])
            offset += length
        charge("xen.ring.transfer", offset - _HEADER.size)
        verdicts = (
            self._admission(commands)
            if self._admission is not None
            else [None] * count
        )
        admitted = [c for c, v in zip(commands, verdicts) if v is None]
        shed = count - len(admitted)
        if shed:
            _RING_SHED.add(shed)
        if self._batch_backend is not None:
            executed = iter(self._batch_backend(admitted) if admitted else [])
        else:
            executed = iter(self._backend(command) for command in admitted)
        # Re-merge in submission order: every frame — admitted or shed —
        # gets exactly one response slot.
        responses = [
            next(executed) if verdict is None else verdict
            for verdict in verdicts
        ]
        if len(responses) != count:
            raise RingError(
                f"back-end answered {len(responses)} frames for a batch of {count}"
            )
        reply = _pack_vector(STATUS_BATCH_RESPONSE, responses)
        if len(reply) > PAGE_SIZE:
            raise RingError("batched responses exceed the page window")
        charge("xen.ring.transfer", len(reply) - _HEADER.size)
        self._memory.write(self.back_domid, self._mapped_frame, 0, reply)
        self._events.notify(self.port, self.back_domid)

    # -- front-end side ------------------------------------------------------------

    def _on_front_event(self, _port: int) -> None:
        self._response_ready = True

    def send_command(self, command: bytes) -> bytes:
        """Carry one TPM command to the back-end and return its response."""
        if len(command) > MAX_PAYLOAD:
            raise RingError(f"command of {len(command)} bytes exceeds page window")
        if self._backend is None:
            raise RingError("no back-end connected to this vTPM ring")
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self._send_command(command)
        with tracer.start_span("ring.send", {"bytes": len(command)}):
            return self._send_command(command)

    def _send_command(self, command: bytes) -> bytes:
        _RING_KICKS.inc()
        charge("xen.ring.transfer", len(command))
        self._memory.write(
            self.front_domid,
            self.frame,
            0,
            _HEADER.pack(STATUS_COMMAND, len(command)) + command,
        )
        self._response_ready = False
        self._kick_backend()
        if not self._response_ready:
            raise RingError("back-end did not produce a response")
        status, length = _HEADER.unpack(
            self._memory.read(self.front_domid, self.frame, 0, _HEADER.size)
        )
        if status != STATUS_RESPONSE:
            raise RingError(f"front-end woke with status {status}, not RESPONSE")
        response = self._memory.read(self.front_domid, self.frame, _HEADER.size, length)
        self.commands_carried += 1
        return response

    def send_batch(self, commands: list) -> list:
        """Carry several TPM commands in one page write and one kick.

        The whole vector must fit the page; callers size batches with
        :func:`max_batch_frames`.  Returns the responses in submission
        order.
        """
        if not commands:
            return []
        if self._backend is None:
            raise RingError("no back-end connected to this vTPM ring")
        tracer = obs_trace._current_tracer
        if tracer is None:
            return self._send_batch(commands)
        with tracer.start_span("ring.send_batch", {"frames": len(commands)}):
            return self._send_batch(commands)

    def _send_batch(self, commands: list) -> list:
        _RING_KICKS.inc()
        _RING_BATCHED_FRAMES.add(len(commands))
        submission = _pack_vector(STATUS_BATCH, commands)
        if len(submission) > PAGE_SIZE:
            raise RingError(
                f"batch of {len(commands)} frames ({len(submission)} bytes) "
                f"exceeds the page window"
            )
        charge("xen.ring.transfer", len(submission) - _HEADER.size)
        self._memory.write(self.front_domid, self.frame, 0, submission)
        self._response_ready = False
        self._kick_backend()
        if not self._response_ready:
            raise RingError("back-end did not produce a response")
        page = self._memory.read(self.front_domid, self.frame, 0, PAGE_SIZE)
        status, count = _HEADER.unpack(page[: _HEADER.size])
        if status != STATUS_BATCH_RESPONSE:
            raise RingError(
                f"front-end woke with status {status}, not BATCH_RESPONSE"
            )
        if count != len(commands):
            raise RingError(
                f"back-end answered {count} frames for a batch of {len(commands)}"
            )
        responses = []
        offset = _HEADER.size
        for _ in range(count):
            length = int.from_bytes(page[offset : offset + 4], "big")
            offset += 4
            if offset + length > PAGE_SIZE:
                raise RingError("batched response overruns the page")
            responses.append(page[offset : offset + length])
            offset += length
        self.commands_carried += count
        return responses

    def _kick_backend(self) -> None:
        """Deliver the front-end's kick, surviving injected channel faults.

        The fault injector can stall a transfer (the kick lands late; the
        stall is paid in virtual time) or drop the notification entirely
        (the back-end never wakes).  The real tpmfront driver waits on a
        timeout and re-kicks; we model that bounded-retry loop here, so a
        lossy event channel degrades latency rather than correctness.
        """
        if _injector._current_injector is None:
            # Fault-free fast path: no kwargs dict, no clock read, no loop.
            self._events.notify(self.port, self.front_domid)
            return
        start_us = get_context().clock.now_us
        dropped = 0
        for attempt in range(MAX_KICKS):
            event = fire(
                "xen.ring.notify",
                port=self.port,
                front=self.front_domid,
                attempt=attempt,
            )
            if event is not None and event.kind is FaultKind.RING_DROP_NOTIFY:
                # The kick is lost: wait out the driver timeout and retry.
                dropped += 1
                charge("fault.ring.timeout")
                note_retry("xen.ring.notify")
                _RING_KICK_RETRIES.inc()
                continue
            if event is not None and event.kind is FaultKind.RING_STALL:
                # The transfer stalls but the kick still lands afterwards.
                charge("fault.ring.stall")
            self._events.notify(self.port, self.front_domid)
            if dropped:
                note_recovery(
                    "xen.ring.notify", get_context().clock.now_us - start_us
                )
            return
        raise RetryExhausted(
            "xen.ring.notify",
            MAX_KICKS,
            RingError(f"event channel dropped {dropped} notifications"),
        )

    def teardown(self) -> None:
        """Release grant, channel and page (front-end shutdown path)."""
        self.disconnect_backend()
        self._grants.end_access(self.front_domid, self.gref)
        self._events.close(self.port)
        self._memory.free([self.frame])
