"""The tpmif transport: one granted page plus one event channel.

Xen's vTPM split driver is not a multi-slot I/O ring: the front-end grants
a single page to the back-end, writes a whole TPM command into it, kicks
the event channel, and the back-end overwrites the page with the response.
This module reproduces that byte-for-byte over the simulated grant table,
physical pages and event channels — so the access-control monitor sits on
a faithful command path, and so ring transfers cost virtual time.

Page layout: ``status(u32) | length(u32) | payload…``
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from repro.faults import FaultKind, fire, note_recovery, note_retry
from repro.sim.timing import charge, get_context
from repro.util.errors import RetryExhausted, RingError
from repro.xen.memory import PAGE_SIZE, PhysicalMemory

STATUS_IDLE = 0
STATUS_COMMAND = 1
STATUS_RESPONSE = 2

_HEADER = struct.Struct(">II")
MAX_PAYLOAD = PAGE_SIZE - _HEADER.size

#: how many times tpmfront re-kicks a silent back-end before giving up
MAX_KICKS = 5

Backend = Callable[[bytes], bytes]


class TpmRing:
    """Front-end view of the shared command page.

    Built by the front-end domain: it allocates the page, grants it to the
    back-end domain, and exchanges whole commands synchronously (the event
    channel delivery is synchronous under the deterministic simulator,
    matching the blocking ioctl path of the real tpmfront driver).
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        grants,            # GrantTable
        events,            # EventChannels
        front_domid: int,
        back_domid: int,
    ) -> None:
        self._memory = memory
        self._grants = grants
        self._events = events
        self.front_domid = front_domid
        self.back_domid = back_domid
        [self.frame] = memory.allocate(front_domid, 1)
        self.gref = grants.grant_access(front_domid, back_domid, self.frame)
        self.port = events.alloc_unbound(front_domid, back_domid)
        self._backend: Optional[Backend] = None
        self._mapped_frame: Optional[int] = None
        self.commands_carried = 0
        events.bind(self.port, front_domid, self._on_front_event)
        self._response_ready = False

    # -- back-end side -----------------------------------------------------------

    def connect_backend(self, backend: Backend) -> None:
        """Back-end maps the grant and installs its command handler."""
        self._mapped_frame = self._grants.map_grant(
            self.back_domid, self.front_domid, self.gref
        )
        self._backend = backend
        self._events.bind(self.port, self.back_domid, self._on_back_event)

    def disconnect_backend(self) -> None:
        if self._mapped_frame is not None:
            self._grants.unmap_grant(self.back_domid, self.front_domid, self.gref)
            self._mapped_frame = None
        self._backend = None

    def _on_back_event(self, _port: int) -> None:
        """Back-end interrupt: read command, execute, write response."""
        if self._backend is None or self._mapped_frame is None:
            raise RingError("back-end notified but not connected")
        status, length = _HEADER.unpack(
            self._memory.read(self.back_domid, self._mapped_frame, 0, _HEADER.size)
        )
        if status != STATUS_COMMAND:
            raise RingError(f"back-end woke with status {status}, not COMMAND")
        if length > MAX_PAYLOAD:
            raise RingError(f"command of {length} bytes exceeds page window")
        charge("xen.ring.transfer", length)
        command = self._memory.read(
            self.back_domid, self._mapped_frame, _HEADER.size, length
        )
        response = self._backend(command)
        if len(response) > MAX_PAYLOAD:
            raise RingError(f"response of {len(response)} bytes exceeds page window")
        charge("xen.ring.transfer", len(response))
        self._memory.write(
            self.back_domid,
            self._mapped_frame,
            0,
            _HEADER.pack(STATUS_RESPONSE, len(response)) + response,
        )
        self._events.notify(self.port, self.back_domid)

    # -- front-end side ------------------------------------------------------------

    def _on_front_event(self, _port: int) -> None:
        self._response_ready = True

    def send_command(self, command: bytes) -> bytes:
        """Carry one TPM command to the back-end and return its response."""
        if len(command) > MAX_PAYLOAD:
            raise RingError(f"command of {len(command)} bytes exceeds page window")
        if self._backend is None:
            raise RingError("no back-end connected to this vTPM ring")
        charge("xen.ring.transfer", len(command))
        self._memory.write(
            self.front_domid,
            self.frame,
            0,
            _HEADER.pack(STATUS_COMMAND, len(command)) + command,
        )
        self._response_ready = False
        self._kick_backend()
        if not self._response_ready:
            raise RingError("back-end did not produce a response")
        status, length = _HEADER.unpack(
            self._memory.read(self.front_domid, self.frame, 0, _HEADER.size)
        )
        if status != STATUS_RESPONSE:
            raise RingError(f"front-end woke with status {status}, not RESPONSE")
        response = self._memory.read(self.front_domid, self.frame, _HEADER.size, length)
        self.commands_carried += 1
        return response

    def _kick_backend(self) -> None:
        """Deliver the front-end's kick, surviving injected channel faults.

        The fault injector can stall a transfer (the kick lands late; the
        stall is paid in virtual time) or drop the notification entirely
        (the back-end never wakes).  The real tpmfront driver waits on a
        timeout and re-kicks; we model that bounded-retry loop here, so a
        lossy event channel degrades latency rather than correctness.
        """
        start_us = get_context().clock.now_us
        dropped = 0
        for attempt in range(MAX_KICKS):
            event = fire(
                "xen.ring.notify",
                port=self.port,
                front=self.front_domid,
                attempt=attempt,
            )
            if event is not None and event.kind is FaultKind.RING_DROP_NOTIFY:
                # The kick is lost: wait out the driver timeout and retry.
                dropped += 1
                charge("fault.ring.timeout")
                note_retry("xen.ring.notify")
                continue
            if event is not None and event.kind is FaultKind.RING_STALL:
                # The transfer stalls but the kick still lands afterwards.
                charge("fault.ring.stall")
            self._events.notify(self.port, self.front_domid)
            if dropped:
                note_recovery(
                    "xen.ring.notify", get_context().clock.now_us - start_us
                )
            return
        raise RetryExhausted(
            "xen.ring.notify",
            MAX_KICKS,
            RingError(f"event channel dropped {dropped} notifications"),
        )

    def teardown(self) -> None:
        """Release grant, channel and page (front-end shutdown path)."""
        self.disconnect_backend()
        self._grants.end_access(self.front_domid, self.gref)
        self._events.close(self.port)
        self._memory.free([self.frame])
