"""Xen-like hypervisor substrate.

Domains, page-granular memory with foreign mapping, grant tables, event
channels, XenStore, the tpmif shared-page transport and a credit scheduler
— the machinery the stock vTPM design (and its attacks) run on.
"""

from repro.xen.domain import Domain, DomainState
from repro.xen.event_channel import EventChannels
from repro.xen.grant_table import GrantTable
from repro.xen.hypercall import HypercallInterface
from repro.xen.hypervisor import DOM0_ID, Xen
from repro.xen.memory import PAGE_SIZE, MemoryRegion, PhysicalMemory
from repro.xen.ring import TpmRing
from repro.xen.scheduler import CreditScheduler
from repro.xen.xenstore import XenStore

__all__ = [
    "Domain",
    "DomainState",
    "EventChannels",
    "GrantTable",
    "HypercallInterface",
    "DOM0_ID",
    "Xen",
    "PAGE_SIZE",
    "MemoryRegion",
    "PhysicalMemory",
    "TpmRing",
    "CreditScheduler",
    "XenStore",
]
