"""The hypervisor: domain lifecycle plus the shared machine services.

One :class:`Xen` object is one physical machine: physical memory, grant
table, event channels, XenStore, scheduler, and the domain table with
Dom0 built at boot.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.crypto.random_source import RandomSource
from repro.sim.timing import charge
from repro.util.errors import DomainNotFound, XenError
from repro.xen.domain import Domain, DomainState
from repro.xen.event_channel import EventChannels
from repro.xen.grant_table import GrantTable
from repro.xen.memory import MemoryRegion, PhysicalMemory
from repro.xen.scheduler import CreditScheduler
from repro.xen.xenstore import XenStore

DOM0_ID = 0
DEFAULT_DOMAIN_PAGES = 64  # 256 KiB per simulated guest, enough for the stack


class Xen:
    """One virtualized machine."""

    def __init__(
        self,
        rng: RandomSource,
        total_pages: int = 1 << 16,
        dom0_pages: int = 256,
    ) -> None:
        self.rng = rng
        self.memory = PhysicalMemory(total_pages=total_pages)
        self.grants = GrantTable(self.memory)
        self.events = EventChannels()
        self.store = XenStore()
        self.scheduler = CreditScheduler()
        self._domains: Dict[int, Domain] = {}
        self._next_domid = itertools.count(1)
        # Dom0 boots with the machine.
        self._dom0 = self._build(
            domid=DOM0_ID,
            name="Domain-0",
            pages=dom0_pages,
            kernel_image=b"dom0-kernel-xen-3.4",
            privileged=True,
            config={},
        )
        self._dom0.state = DomainState.RUNNING

    # -- domain lifecycle ----------------------------------------------------------

    def _build(
        self,
        domid: int,
        name: str,
        pages: int,
        kernel_image: bytes,
        privileged: bool,
        config: Dict[str, str],
    ) -> Domain:
        frames = self.memory.allocate(domid, pages)
        uuid_bytes = self.rng.bytes(16)
        domain = Domain(
            domid=domid,
            name=name,
            uuid=uuid_bytes.hex(),
            privileged=privileged,
            memory=MemoryRegion(self.memory, domid, frames),
            kernel_image=kernel_image,
            config=dict(config),
        )
        self._domains[domid] = domain
        return domain

    def create_domain(
        self,
        name: str,
        kernel_image: bytes,
        pages: int = DEFAULT_DOMAIN_PAGES,
        privileged: bool = False,
        config: Optional[Dict[str, str]] = None,
    ) -> Domain:
        """Build and start a new domain (the ``xm create`` path)."""
        charge("xen.domain.build")
        if any(d.name == name and d.is_alive for d in self._domains.values()):
            raise XenError(f"domain name {name!r} already in use")
        domid = next(self._next_domid)
        domain = self._build(
            domid=domid,
            name=name,
            pages=pages,
            kernel_image=kernel_image,
            privileged=privileged,
            config=config or {},
        )
        self.scheduler.add(domid)
        self.store.write(
            DOM0_ID,
            f"/local/domain/{domid}/name",
            name,
            privileged=True,
        )
        self.store.write(
            DOM0_ID,
            f"/local/domain/{domid}/uuid",
            domain.uuid,
            privileged=True,
        )
        domain.state = DomainState.RUNNING
        return domain

    def destroy_domain(self, domid: int) -> None:
        """Tear a domain down: scrub and free memory, drop from scheduler."""
        domain = self.domain(domid)
        if domid == DOM0_ID:
            raise XenError("cannot destroy Domain-0")
        domain.state = DomainState.DEAD
        self.scheduler.remove(domid)
        self.memory.free(domain.memory.frames)
        self.store.remove(DOM0_ID, f"/local/domain/{domid}", privileged=True)

    def pause_domain(self, domid: int) -> None:
        domain = self.domain(domid)
        if domain.state != DomainState.RUNNING:
            raise XenError(f"dom{domid} not running")
        domain.state = DomainState.PAUSED

    def unpause_domain(self, domid: int) -> None:
        domain = self.domain(domid)
        if domain.state != DomainState.PAUSED:
            raise XenError(f"dom{domid} not paused")
        domain.state = DomainState.RUNNING

    # -- lookup ---------------------------------------------------------------------

    @property
    def dom0(self) -> Domain:
        return self._dom0

    def domain(self, domid: int) -> Domain:
        try:
            return self._domains[domid]
        except KeyError:
            raise DomainNotFound(f"no domain with id {domid}") from None

    def domain_by_name(self, name: str) -> Domain:
        for domain in self._domains.values():
            if domain.name == name and domain.is_alive:
                return domain
        raise DomainNotFound(f"no live domain named {name!r}")

    def domains(self) -> list[Domain]:
        return [self._domains[d] for d in sorted(self._domains)]

    @property
    def live_domain_count(self) -> int:
        return sum(1 for d in self._domains.values() if d.is_alive)
