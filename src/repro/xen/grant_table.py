"""Grant tables: explicit page sharing between domains.

A domain *grants* a specific remote domain access to one of its frames and
receives a grant reference; the remote maps that reference through the
hypervisor.  Unlike foreign mapping this is consent-based — it is the
legitimate channel the vTPM split driver uses, and it keeps working even
when the manager's secret pages are dump-protected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sim.timing import charge
from repro.util.errors import GrantError
from repro.xen.memory import PhysicalMemory


@dataclass
class GrantEntry:
    gref: int
    granter: int
    grantee: int
    frame: int
    readonly: bool
    mapped: bool = False


class GrantTable:
    """Machine-wide grant state (per-domain tables folded into one index)."""

    def __init__(self, memory: PhysicalMemory) -> None:
        self._memory = memory
        self._entries: Dict[Tuple[int, int], GrantEntry] = {}  # (granter, gref)
        self._next_gref: Dict[int, int] = {}

    def grant_access(
        self, granter: int, grantee: int, frame: int, readonly: bool = False
    ) -> int:
        """Create a grant; the granter must own the frame."""
        charge("xen.hypercall")
        page = self._memory.page(frame)
        if page.owner != granter:
            raise GrantError(f"dom{granter} cannot grant frame {frame} it does not own")
        gref = self._next_gref.get(granter, 1)
        self._next_gref[granter] = gref + 1
        self._entries[(granter, gref)] = GrantEntry(
            gref=gref, granter=granter, grantee=grantee, frame=frame, readonly=readonly
        )
        return gref

    def map_grant(self, grantee: int, granter: int, gref: int) -> int:
        """Map a grant; returns the frame number now shared with grantee."""
        charge("xen.grant.map")
        entry = self._get(granter, gref)
        if entry.grantee != grantee:
            raise GrantError(
                f"grant {gref} of dom{granter} is for dom{entry.grantee}, "
                f"not dom{grantee}"
            )
        entry.mapped = True
        self._memory.page(entry.frame).shared_with.add(grantee)
        return entry.frame

    def unmap_grant(self, grantee: int, granter: int, gref: int) -> None:
        charge("xen.grant.unmap")
        entry = self._get(granter, gref)
        if not entry.mapped:
            raise GrantError(f"grant {gref} of dom{granter} is not mapped")
        entry.mapped = False
        self._memory.page(entry.frame).shared_with.discard(grantee)

    def end_access(self, granter: int, gref: int) -> None:
        """Revoke a grant (must be unmapped first, as in real Xen)."""
        charge("xen.hypercall")
        entry = self._get(granter, gref)
        if entry.mapped:
            raise GrantError(f"grant {gref} still mapped; unmap before revoke")
        del self._entries[(granter, gref)]

    def _get(self, granter: int, gref: int) -> GrantEntry:
        try:
            return self._entries[(granter, gref)]
        except KeyError:
            raise GrantError(f"no grant {gref} from dom{granter}") from None

    def entry(self, granter: int, gref: int) -> GrantEntry:
        """Introspection for tests."""
        return self._get(granter, gref)

    @property
    def active_grants(self) -> int:
        return len(self._entries)
