"""Per-domain hypercall interface with privilege enforcement.

Domain software never touches :class:`~repro.xen.hypervisor.Xen` directly;
it goes through a :class:`HypercallInterface` bound to its domid, which is
where Xen's privilege model is enforced.  The dump-attack entry points —
``foreign_map_page`` and ``dump_vcpu`` — live here: stock Xen grants them
to any privileged domain, which is precisely the over-broad authority the
paper's access-control improvement reins in for vTPM state.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.timing import charge
from repro.util.errors import XenError
from repro.xen.domain import Domain
from repro.xen.hypervisor import Xen


class HypercallInterface:
    """What a given domain can ask of the hypervisor."""

    def __init__(self, xen: Xen, domid: int) -> None:
        self._xen = xen
        self.domid = domid

    @property
    def _me(self) -> Domain:
        return self._xen.domain(self.domid)

    def _require_privilege(self, operation: str) -> None:
        if not self._me.privileged:
            raise XenError(
                f"dom{self.domid} lacks privilege for {operation} "
                "(IS_PRIV check failed)"
            )

    # -- domctl (privileged) -------------------------------------------------------

    def create_domain(self, name: str, kernel_image: bytes, **kwargs) -> Domain:
        self._require_privilege("domctl.create")
        charge("xen.hypercall")
        return self._xen.create_domain(name, kernel_image, **kwargs)

    def destroy_domain(self, domid: int) -> None:
        self._require_privilege("domctl.destroy")
        charge("xen.hypercall")
        self._xen.destroy_domain(domid)

    def pause_domain(self, domid: int) -> None:
        self._require_privilege("domctl.pause")
        charge("xen.hypercall")
        self._xen.pause_domain(domid)

    def unpause_domain(self, domid: int) -> None:
        self._require_privilege("domctl.unpause")
        charge("xen.hypercall")
        self._xen.unpause_domain(domid)

    def list_domains(self) -> List[Domain]:
        self._require_privilege("domctl.getdomaininfo")
        charge("xen.hypercall")
        return self._xen.domains()

    # -- the dump channels (privileged; the paper's attack surface) ------------------

    def foreign_map_page(self, frame: int) -> bytes:
        """Map an arbitrary frame (xc_map_foreign_range).

        Protected frames refuse the mapping even for Dom0 — that refusal is
        the memory half of the paper's improvement.
        """
        return self._xen.memory.foreign_map(
            self.domid, frame, requester_privileged=self._me.privileged
        )

    def dump_domain_memory(self, target_domid: int) -> Dict[int, bytes]:
        """``xm dump-core``: snapshot every mappable frame of a domain.

        Returns {frame: contents}; protected frames are silently absent,
        exactly like the real patchset's zero-fill behaviour.
        """
        self._require_privilege("dump-core")
        self._xen.domain(target_domid)  # fail on bad domid before walking
        image: Dict[int, bytes] = {}
        for frame in self._xen.memory.frames_owned_by(target_domid):
            try:
                image[frame] = self._xen.memory.foreign_map(
                    self.domid, frame, requester_privileged=True
                )
            except XenError:
                continue  # protected frame: excluded from the dump
        return image

    def dump_vcpu(self, target_domid: int) -> Dict[str, int]:
        """getvcpucontext: read a domain's architectural register state."""
        self._require_privilege("domctl.getvcpucontext")
        charge("xen.hypercall")
        return self._xen.domain(target_domid).vcpu.dump()

    # -- unprivileged services --------------------------------------------------------

    def grant_access(self, grantee: int, frame: int, readonly: bool = False) -> int:
        return self._xen.grants.grant_access(self.domid, grantee, frame, readonly)

    def map_grant(self, granter: int, gref: int) -> int:
        return self._xen.grants.map_grant(self.domid, granter, gref)

    def evtchn_alloc_unbound(self, remote_domid: int) -> int:
        return self._xen.events.alloc_unbound(self.domid, remote_domid)

    def evtchn_notify(self, port: int) -> None:
        self._xen.events.notify(port, self.domid)

    def xenstore_write(self, path: str, value: str, **kwargs) -> None:
        self._xen.store.write(
            self.domid, path, value, privileged=self._me.privileged, **kwargs
        )

    def xenstore_read(self, path: str) -> str:
        return self._xen.store.read(self.domid, path, privileged=self._me.privileged)
