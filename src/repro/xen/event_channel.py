"""Event channels: Xen's virtual interrupt lines.

A channel binds two domains; ``notify`` on one end invokes the handler
registered by the other (synchronously, under the deterministic simulator).
The vTPM split driver pairs one channel with one granted page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.sim.timing import charge
from repro.util.errors import EventChannelError

Handler = Callable[[int], None]  # receives the port number


@dataclass(slots=True)
class Channel:
    port: int
    dom_a: int
    dom_b: int
    handler_a: Optional[Handler] = None
    handler_b: Optional[Handler] = None
    notifications: int = 0
    bound: bool = False


class EventChannels:
    """The machine-wide event-channel table."""

    def __init__(self) -> None:
        self._channels: Dict[int, Channel] = {}
        self._next_port = 1

    def alloc_unbound(self, dom_a: int, dom_b: int) -> int:
        """Allocate a port connecting two domains (interdomain channel)."""
        charge("xen.hypercall")
        port = self._next_port
        self._next_port += 1
        self._channels[port] = Channel(port=port, dom_a=dom_a, dom_b=dom_b)
        return port

    def bind(self, port: int, domid: int, handler: Handler) -> None:
        """Attach a domain's interrupt handler to its end of the channel."""
        charge("xen.hypercall")
        channel = self._get(port)
        if domid == channel.dom_a:
            channel.handler_a = handler
        elif domid == channel.dom_b:
            channel.handler_b = handler
        else:
            raise EventChannelError(
                f"dom{domid} is not an endpoint of port {port}"
            )
        channel.bound = channel.handler_a is not None and channel.handler_b is not None

    def notify(self, port: int, from_domid: int) -> None:
        """Fire the channel: runs the remote end's handler."""
        charge("xen.evtchn.notify")
        channel = self._get(port)
        if from_domid == channel.dom_a:
            handler = channel.handler_b
        elif from_domid == channel.dom_b:
            handler = channel.handler_a
        else:
            raise EventChannelError(f"dom{from_domid} is not on port {port}")
        channel.notifications += 1
        if handler is not None:
            handler(port)

    def close(self, port: int) -> None:
        charge("xen.hypercall")
        self._channels.pop(port, None)

    def _get(self, port: int) -> Channel:
        try:
            return self._channels[port]
        except KeyError:
            raise EventChannelError(f"no event channel on port {port}") from None

    def channel(self, port: int) -> Channel:
        """Introspection for tests."""
        return self._get(port)

    @property
    def open_count(self) -> int:
        return len(self._channels)
