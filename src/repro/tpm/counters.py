"""Monotonic counters (TPM_CreateCounter / Increment / Read / Release).

Monotonic counters defeat state-rollback: the vTPM migration protocol and
the sealed-storage example both stamp counter values into their payloads so
a replayed old state is detectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.tpm.constants import MAX_COUNTERS, TPM_BAD_COUNTER, TPM_RESOURCES
from repro.util.errors import TpmError


@dataclass
class Counter:
    """One monotonic counter."""

    handle: int
    label: bytes
    value: int
    auth: bytes


class CounterTable:
    """Counter space of one TPM.

    TPM 1.2 allows only one increment per "counter session" per boot tick;
    we keep the simpler invariant that values never decrease, which is the
    property the protocols above rely on.
    """

    _FIRST_HANDLE = 0x03000000

    def __init__(self, max_counters: int = MAX_COUNTERS) -> None:
        self.max_counters = max_counters
        self._counters: Dict[int, Counter] = {}
        self._next_handle = self._FIRST_HANDLE
        # Global base: a new counter starts above every value any prior
        # counter ever reached, as the spec requires.
        self._high_water = 0

    def create(self, label: bytes, auth: bytes) -> Counter:
        if len(self._counters) >= self.max_counters:
            raise TpmError(TPM_RESOURCES, "no free counters")
        if len(label) != 4:
            raise TpmError(TPM_BAD_COUNTER, "counter label must be 4 bytes")
        handle = self._next_handle
        self._next_handle += 1
        counter = Counter(handle=handle, label=label, value=self._high_water + 1, auth=auth)
        self._high_water = counter.value
        self._counters[handle] = counter
        return counter

    def get(self, handle: int) -> Counter:
        try:
            return self._counters[handle]
        except KeyError:
            raise TpmError(TPM_BAD_COUNTER, f"no counter {handle:#x}") from None

    def increment(self, handle: int) -> int:
        counter = self.get(handle)
        counter.value += 1
        self._high_water = max(self._high_water, counter.value)
        return counter.value

    def release(self, handle: int) -> None:
        if handle not in self._counters:
            raise TpmError(TPM_BAD_COUNTER, f"no counter {handle:#x}")
        del self._counters[handle]

    def counters(self) -> list[Counter]:
        return [self._counters[h] for h in sorted(self._counters)]
