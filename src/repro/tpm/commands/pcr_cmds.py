"""PCR ordinals: Extend, PCRRead, PCR_Reset, Quote lives in signing.py."""

from __future__ import annotations

from repro.tpm.constants import (
    DIGEST_SIZE,
    TPM_ORD_Extend,
    TPM_ORD_PCR_Reset,
    TPM_ORD_PcrRead,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.pcr import PcrSelection
from repro.util.bytesio import ByteWriter


@handler(TPM_ORD_Extend)
def tpm_extend(ctx: CommandContext) -> bytes:
    """TPM_Extend: fold a measurement into a PCR; returns the new value."""
    index = ctx.reader.u32()
    digest = ctx.reader.raw(DIGEST_SIZE)
    ctx.reader.expect_end()
    new_value = ctx.state.pcrs.extend(index, digest)
    return ByteWriter().raw(new_value).getvalue()


@handler(TPM_ORD_PcrRead)
def tpm_pcr_read(ctx: CommandContext) -> bytes:
    """TPM_PCRRead: current value of one register."""
    index = ctx.reader.u32()
    ctx.reader.expect_end()
    return ByteWriter().raw(ctx.state.pcrs.read(index)).getvalue()


@handler(TPM_ORD_PCR_Reset)
def tpm_pcr_reset(ctx: CommandContext) -> bytes:
    """TPM_PCR_Reset: reset the selected resettable PCRs (locality-gated)."""
    selection = PcrSelection.deserialize(ctx.reader)
    ctx.reader.expect_end()
    for index in selection.indices:
        ctx.state.pcrs.reset(index, ctx.locality)
    return b""
