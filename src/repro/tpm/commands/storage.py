"""Protected-storage ordinals: Seal/Unseal, UnBind, key creation/loading."""

from __future__ import annotations

from repro.crypto.kdf import derive_key
from repro.crypto.rsa import generate_keypair
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    TPM_BAD_DATASIZE,
    TPM_BAD_KEY_PROPERTY,
    TPM_BAD_PARAMETER,
    TPM_AUTHFAIL,
    TPM_DECRYPT_ERROR,
    TPM_INVALID_KEYUSAGE,
    TPM_KEY_BIND,
    TPM_KEY_LEGACY,
    TPM_KEY_STORAGE,
    TPM_NOTSEALED_BLOB,
    TPM_ORD_CreateWrapKey,
    TPM_ORD_GetPubKey,
    TPM_ORD_LoadKey2,
    TPM_ORD_Seal,
    TPM_ORD_UnBind,
    TPM_ORD_Unseal,
    TPM_WRONGPCRVAL,
    KEY_USAGE_NAMES,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.keys import LoadedKey
from repro.tpm.structures import (
    SealedBlob,
    SealedPayload,
    TpmKeyBlob,
    TpmPcrInfo,
)
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import CryptoError, MarshalError, TpmError


def _seal_cipher_for(key: LoadedKey) -> SymmetricKey:
    """Deterministic per-storage-key sealing cipher (see structures.py note)."""
    secret = key.keypair.d.to_bytes((key.keypair.d.bit_length() + 7) // 8, "big")
    return SymmetricKey(derive_key(secret, b"tpm-seal-v1", b"sealing", 32))


def _read_optional_pcr_info(reader: ByteReader) -> TpmPcrInfo | None:
    """A u32-length-prefixed TPM_PCR_INFO; zero length means unbound."""
    length = reader.u32()
    if length == 0:
        return None
    sub = ByteReader(reader.raw(length))
    info = TpmPcrInfo.deserialize(sub)
    sub.expect_end()
    return info


def _check_pcr_binding(ctx: CommandContext, info: TpmPcrInfo | None) -> None:
    """Enforce digestAtRelease against the live PCR bank."""
    if info is None or not info.selection:
        return
    current = ctx.state.pcrs.composite_digest(info.selection)
    if current != info.digest_at_release:
        raise TpmError(TPM_WRONGPCRVAL, "PCR composite does not match digestAtRelease")


@handler(TPM_ORD_Seal)
def tpm_seal(ctx: CommandContext) -> bytes:
    """TPM_Seal: bind data to this TPM (and optionally to PCR state).

    Params: keyHandle, dataAuth(20), optional pcrInfo, sized data.
    Requires an OSAP session on the storage key (spec rule: the sealing
    secret must be session-bound, never sent raw).
    """
    key_handle = ctx.reader.u32()
    data_auth = ctx.reader.raw(AUTHDATA_SIZE)
    pcr_info = _read_optional_pcr_info(ctx.reader)
    data = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    if key.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "Seal requires a storage key")
    session = ctx.verify_auth(key.usage_auth)
    if session.kind != "osap":
        raise TpmError(TPM_AUTHFAIL, "Seal requires an OSAP session")
    payload = SealedPayload(auth=data_auth, data=data)
    enc = _seal_cipher_for(key).encrypt(payload.serialize(), ctx.state.rng)
    blob = SealedBlob(pcr_info=pcr_info, enc_payload=enc)
    return ByteWriter().sized(blob.serialize()).getvalue()


@handler(TPM_ORD_Unseal)
def tpm_unseal(ctx: CommandContext) -> bytes:
    """TPM_Unseal: release sealed data if PCRs and auth match.

    Params: keyHandle, dataAuth(20), sized blob.  The AUTH1 trailer proves
    the parent key auth; ``dataAuth`` must equal the secret stored at seal
    time (the spec uses a second trailer for this — collapsed here to a
    direct comparison with identical security semantics).
    """
    key_handle = ctx.reader.u32()
    data_auth = ctx.reader.raw(AUTHDATA_SIZE)
    blob_bytes = ctx.reader.sized(max_size=1 << 20)
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    if key.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "Unseal requires a storage key")
    ctx.verify_auth(key.usage_auth)
    try:
        blob = SealedBlob.deserialize(blob_bytes)
    except MarshalError as exc:
        raise TpmError(TPM_NOTSEALED_BLOB, f"bad sealed blob: {exc}") from exc
    _check_pcr_binding(ctx, blob.pcr_info)
    try:
        payload = SealedPayload.deserialize(
            _seal_cipher_for(key).decrypt(blob.enc_payload)
        )
    except (CryptoError, MarshalError) as exc:
        raise TpmError(TPM_DECRYPT_ERROR, f"unseal failed: {exc}") from exc
    if payload.auth != data_auth:
        raise TpmError(TPM_AUTHFAIL, "sealed-data auth mismatch")
    return ByteWriter().sized(payload.data).getvalue()


@handler(TPM_ORD_UnBind)
def tpm_unbind(ctx: CommandContext) -> bytes:
    """TPM_UnBind: decrypt data bound (outside the TPM) to a bind key."""
    key_handle = ctx.reader.u32()
    enc_data = ctx.reader.sized(max_size=1 << 12)
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    if key.usage not in (TPM_KEY_BIND, TPM_KEY_LEGACY):
        raise TpmError(TPM_INVALID_KEYUSAGE, "UnBind requires a bind key")
    ctx.verify_auth(key.usage_auth)
    try:
        clear = key.keypair.decrypt(enc_data)
    except CryptoError as exc:
        raise TpmError(TPM_DECRYPT_ERROR, f"unbind failed: {exc}") from exc
    return ByteWriter().sized(clear).getvalue()


@handler(TPM_ORD_CreateWrapKey)
def tpm_create_wrap_key(ctx: CommandContext) -> bytes:
    """TPM_CreateWrapKey: generate a child key wrapped under a storage parent.

    Params: parentHandle, usageAuth(20), migrationAuth(20), keyUsage(u16),
    keyBits(u32), optional pcrInfo.
    """
    parent_handle = ctx.reader.u32()
    usage_auth = ctx.reader.raw(AUTHDATA_SIZE)
    migration_auth = ctx.reader.raw(AUTHDATA_SIZE)
    key_usage = ctx.reader.u16()
    key_bits = ctx.reader.u32()
    pcr_info = _read_optional_pcr_info(ctx.reader)
    ctx.reader.expect_end()
    parent = ctx.state.keys.get(parent_handle)
    if parent.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "parent must be a storage key")
    if key_usage not in KEY_USAGE_NAMES:
        raise TpmError(TPM_BAD_KEY_PROPERTY, f"unknown key usage {key_usage:#x}")
    if key_usage == TPM_KEY_STORAGE and pcr_info is not None:
        raise TpmError(TPM_BAD_KEY_PROPERTY, "storage keys cannot be PCR-bound here")
    if not 512 <= key_bits <= 2048:
        raise TpmError(TPM_BAD_PARAMETER, f"keyBits {key_bits} unsupported")
    ctx.verify_auth(parent.usage_auth)
    keypair = generate_keypair(key_bits, ctx.state.rng)
    blob = TpmKeyBlob.wrap(
        parent=parent.keypair,
        keypair=keypair,
        usage=key_usage,
        usage_auth=usage_auth,
        migration_auth=migration_auth,
        rng=ctx.state.rng,
        pcr_info=pcr_info,
    )
    return ByteWriter().sized(blob.serialize()).getvalue()


@handler(TPM_ORD_LoadKey2)
def tpm_load_key2(ctx: CommandContext) -> bytes:
    """TPM_LoadKey2: unwrap a key blob into a volatile slot."""
    parent_handle = ctx.reader.u32()
    blob_bytes = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    parent = ctx.state.keys.get(parent_handle)
    if parent.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "parent must be a storage key")
    ctx.verify_auth(parent.usage_auth)
    try:
        blob = TpmKeyBlob.deserialize(blob_bytes)
    except MarshalError as exc:
        raise TpmError(TPM_BAD_DATASIZE, f"bad key blob: {exc}") from exc
    portion = blob.unwrap(parent.keypair)
    key = LoadedKey(
        handle=0,
        usage=blob.usage,
        keypair=portion.keypair,
        usage_auth=portion.usage_auth,
        migration_auth=portion.migration_auth,
        pcr_info=blob.pcr_info,
        parent_handle=parent_handle,
    )
    handle = ctx.state.keys.load(key)
    return ByteWriter().u32(handle).getvalue()


@handler(TPM_ORD_GetPubKey)
def tpm_get_pub_key(ctx: CommandContext) -> bytes:
    """TPM_GetPubKey: public half of a loaded key (key-auth protected)."""
    key_handle = ctx.reader.u32()
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    ctx.verify_auth(key.usage_auth)
    w = ByteWriter()
    w.sized(key.keypair.public.modulus_bytes())
    w.u32(key.keypair.public.e)
    w.u32(key.keypair.public.bits)
    return w.getvalue()
