"""Maintenance ordinals: auth change, key migration, DIR, test result.

The migration pair (CreateMigrationBlob/ConvertMigrationBlob) is how a
*key* legally leaves one TPM for another — the sanctioned counterpart of
the wholesale vTPM-state migration in :mod:`repro.vtpm.migration`.  Keys
whose ``migrationAuth`` equals the device's ``tpmProof`` (the EK, SRK and
AIKs) are non-migratable and refuse the path, exactly as the spec demands.
"""

from __future__ import annotations

from repro.crypto.hmac_util import constant_time_equal
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    DIGEST_SIZE,
    TPM_AUTHFAIL,
    TPM_BAD_MIGRATION,
    TPM_BAD_PARAMETER,
    TPM_DECRYPT_ERROR,
    TPM_INVALID_KEYUSAGE,
    TPM_KEY_STORAGE,
    TPM_ORD_ChangeAuth,
    TPM_ORD_ConvertMigrationBlob,
    TPM_ORD_CreateMigrationBlob,
    TPM_ORD_DirRead,
    TPM_ORD_DirWriteAuth,
    TPM_ORD_GetTestResult,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.structures import PrivatePortion, TpmKeyBlob
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import CryptoError, MarshalError, TpmError

MIG_MAGIC = b"TPMMIGR1"
TRANSPORT_KEY_SIZE = 32


@handler(TPM_ORD_ChangeAuth)
def tpm_change_auth(ctx: CommandContext) -> bytes:
    """TPM_ChangeAuth: re-wrap a key blob with a new usage AuthData.

    Params: parentHandle, oldAuth(20), newAuth(20), sized keyBlob.
    AUTH1 with the parent's auth; ``oldAuth`` must match the blob's
    current usage secret (the spec's second trailer, collapsed).
    """
    parent_handle = ctx.reader.u32()
    old_auth = ctx.reader.raw(AUTHDATA_SIZE)
    new_auth = ctx.reader.raw(AUTHDATA_SIZE)
    blob_bytes = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    parent = ctx.state.keys.get(parent_handle)
    if parent.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "parent must be a storage key")
    ctx.verify_auth(parent.usage_auth)
    try:
        blob = TpmKeyBlob.deserialize(blob_bytes)
    except MarshalError as exc:
        raise TpmError(TPM_BAD_PARAMETER, f"bad key blob: {exc}") from exc
    portion = blob.unwrap(parent.keypair)
    if not constant_time_equal(portion.usage_auth, old_auth):
        raise TpmError(TPM_AUTHFAIL, "old auth mismatch")
    rewrapped = TpmKeyBlob.wrap(
        parent=parent.keypair,
        keypair=portion.keypair,
        usage=blob.usage,
        usage_auth=new_auth,
        migration_auth=portion.migration_auth,
        rng=ctx.state.rng,
        pcr_info=blob.pcr_info,
        scheme=blob.scheme,
    )
    return ByteWriter().sized(rewrapped.serialize()).getvalue()


@handler(TPM_ORD_CreateMigrationBlob)
def tpm_create_migration_blob(ctx: CommandContext) -> bytes:
    """TPM_CreateMigrationBlob (REWRAP): package a key for another TPM.

    Params: parentHandle, migrationAuth(20), destModulus sized,
    destExponent u32, destBits u32, sized keyBlob.  AUTH1 parent auth.
    Out: sized migration blob openable only by the destination parent.
    """
    parent_handle = ctx.reader.u32()
    migration_auth = ctx.reader.raw(AUTHDATA_SIZE)
    dest_modulus = ctx.reader.sized(max_size=1 << 12)
    dest_exponent = ctx.reader.u32()
    dest_bits = ctx.reader.u32()
    blob_bytes = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    parent = ctx.state.keys.get(parent_handle)
    if parent.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "parent must be a storage key")
    ctx.verify_auth(parent.usage_auth)
    try:
        blob = TpmKeyBlob.deserialize(blob_bytes)
    except MarshalError as exc:
        raise TpmError(TPM_BAD_PARAMETER, f"bad key blob: {exc}") from exc
    portion = blob.unwrap(parent.keypair)
    # Non-migratable keys carry tpmProof as their migration secret.
    if constant_time_equal(portion.migration_auth, ctx.state.tpm_proof):
        raise TpmError(TPM_BAD_MIGRATION, "key is not migratable")
    if not constant_time_equal(portion.migration_auth, migration_auth):
        raise TpmError(TPM_AUTHFAIL, "migration auth mismatch")
    destination = RsaPublicKey(
        n=int.from_bytes(dest_modulus, "big"), e=dest_exponent, bits=dest_bits
    )
    transport_key = ctx.state.rng.bytes(TRANSPORT_KEY_SIZE)
    enc_transport = destination.encrypt(transport_key, ctx.state.rng)
    inner = ByteWriter()
    inner.u16(blob.usage)
    inner.u16(blob.scheme)
    inner.sized(portion.serialize())
    enc_inner = SymmetricKey(transport_key).encrypt(
        inner.getvalue(), ctx.state.rng
    )
    out = ByteWriter()
    out.raw(MIG_MAGIC)
    out.sized(enc_transport)
    out.sized(enc_inner.serialize())
    return ByteWriter().sized(out.getvalue()).getvalue()


@handler(TPM_ORD_ConvertMigrationBlob)
def tpm_convert_migration_blob(ctx: CommandContext) -> bytes:
    """TPM_ConvertMigrationBlob: accept a migrated key on the destination.

    Params: destParentHandle, sized migrationBlob.  AUTH1 dest parent auth.
    Out: sized ordinary key blob loadable with TPM_LoadKey2.
    """
    parent_handle = ctx.reader.u32()
    mig_bytes = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    parent = ctx.state.keys.get(parent_handle)
    if parent.usage != TPM_KEY_STORAGE:
        raise TpmError(TPM_INVALID_KEYUSAGE, "parent must be a storage key")
    ctx.verify_auth(parent.usage_auth)
    r = ByteReader(mig_bytes)
    if r.raw(len(MIG_MAGIC)) != MIG_MAGIC:
        raise TpmError(TPM_BAD_MIGRATION, "not a migration blob")
    enc_transport = r.sized(max_size=1 << 12)
    enc_inner = EncryptedBlob.deserialize(r.sized(max_size=1 << 16))
    r.expect_end()
    try:
        transport_key = parent.keypair.decrypt(enc_transport)
        inner = ByteReader(SymmetricKey(transport_key).decrypt(enc_inner))
    except CryptoError as exc:
        raise TpmError(
            TPM_DECRYPT_ERROR, f"migration blob not for this parent: {exc}"
        ) from exc
    usage = inner.u16()
    scheme = inner.u16()
    portion = PrivatePortion.deserialize(inner.sized(max_size=1 << 16))
    inner.expect_end()
    rewrapped = TpmKeyBlob.wrap(
        parent=parent.keypair,
        keypair=portion.keypair,
        usage=usage,
        usage_auth=portion.usage_auth,
        migration_auth=portion.migration_auth,
        rng=ctx.state.rng,
        scheme=scheme,
    )
    return ByteWriter().sized(rewrapped.serialize()).getvalue()


@handler(TPM_ORD_DirWriteAuth)
def tpm_dir_write_auth(ctx: CommandContext) -> bytes:
    """TPM_DirWriteAuth: owner-authorized write of the DIR register."""
    index = ctx.reader.u32()
    value = ctx.reader.raw(DIGEST_SIZE)
    ctx.reader.expect_end()
    if index != 0:
        raise TpmError(TPM_BAD_PARAMETER, "only DIR 0 exists on 1.2 parts")
    ctx.verify_auth(ctx.state.owner_auth)
    ctx.state.dir_register = value
    return b""


@handler(TPM_ORD_DirRead)
def tpm_dir_read(ctx: CommandContext) -> bytes:
    """TPM_DirRead: unauthenticated read of the DIR register."""
    index = ctx.reader.u32()
    ctx.reader.expect_end()
    if index != 0:
        raise TpmError(TPM_BAD_PARAMETER, "only DIR 0 exists on 1.2 parts")
    return ByteWriter().raw(ctx.state.dir_register).getvalue()


@handler(TPM_ORD_GetTestResult)
def tpm_get_test_result(ctx: CommandContext) -> bytes:
    """TPM_GetTestResult: self-test diagnostics (always healthy here)."""
    ctx.reader.expect_end()
    return ByteWriter().sized(b"\x00\x00").getvalue()
