"""Non-volatile storage ordinals: NV_DefineSpace, NV_WriteValue, NV_ReadValue."""

from __future__ import annotations

from repro.tpm.constants import (
    AUTHDATA_SIZE,
    TPM_AUTH_CONFLICT,
    TPM_ORD_NV_DefineSpace,
    TPM_ORD_NV_ReadValue,
    TPM_ORD_NV_WriteValue,
    TPM_WRONGPCRVAL,
)
from repro.tpm.commands.storage import _read_optional_pcr_info
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.nvram import (
    NV_PER_AUTHREAD,
    NV_PER_AUTHWRITE,
    NV_PER_OWNERREAD,
    NV_PER_OWNERWRITE,
)
from repro.util.bytesio import ByteWriter
from repro.util.errors import TpmError


@handler(TPM_ORD_NV_DefineSpace)
def tpm_nv_define_space(ctx: CommandContext) -> bytes:
    """TPM_NV_DefineSpace (owner-authorized): create or delete an NV index."""
    index = ctx.reader.u32()
    size = ctx.reader.u32()
    permissions = ctx.reader.u32()
    area_auth = ctx.reader.raw(AUTHDATA_SIZE)
    pcr_info = _read_optional_pcr_info(ctx.reader)
    ctx.reader.expect_end()
    ctx.verify_auth(ctx.state.owner_auth)
    ctx.state.nv.define(index, size, permissions, area_auth, pcr_info)
    return b""


def _check_nv_pcr(ctx: CommandContext, area) -> None:
    if area.pcr_info is not None and area.pcr_info.selection:
        current = ctx.state.pcrs.composite_digest(area.pcr_info.selection)
        if current != area.pcr_info.digest_at_release:
            raise TpmError(TPM_WRONGPCRVAL, "NV area PCR binding violated")


@handler(TPM_ORD_NV_WriteValue)
def tpm_nv_write_value(ctx: CommandContext) -> bytes:
    """TPM_NV_WriteValue: write under owner or area auth per permissions."""
    index = ctx.reader.u32()
    offset = ctx.reader.u32()
    data = ctx.reader.sized(max_size=1 << 16)
    ctx.reader.expect_end()
    area = ctx.state.nv.get(index)
    if area.permissions & NV_PER_AUTHWRITE:
        ctx.verify_auth(area.auth)
    elif area.permissions & NV_PER_OWNERWRITE:
        ctx.verify_auth(ctx.state.owner_auth)
    else:
        raise TpmError(TPM_AUTH_CONFLICT, "area has no write permission bits")
    _check_nv_pcr(ctx, area)
    ctx.state.nv.write(index, offset, data)
    return b""


@handler(TPM_ORD_NV_ReadValue)
def tpm_nv_read_value(ctx: CommandContext) -> bytes:
    """TPM_NV_ReadValue: read; unauthenticated only for open areas."""
    index = ctx.reader.u32()
    offset = ctx.reader.u32()
    size = ctx.reader.u32()
    ctx.reader.expect_end()
    area = ctx.state.nv.get(index)
    if area.permissions & NV_PER_AUTHREAD:
        ctx.verify_auth(area.auth)
    elif area.permissions & NV_PER_OWNERREAD:
        ctx.verify_auth(ctx.state.owner_auth)
    elif ctx.auth is not None:
        # Open area but caller sent auth anyway: verify against area auth,
        # mirroring real parts which accept it.
        ctx.verify_auth(area.auth)
    _check_nv_pcr(ctx, area)
    data = ctx.state.nv.read(index, offset, size)
    return ByteWriter().sized(data).getvalue()
