"""TPM 1.2 command handlers, grouped by functional area.

Each module registers its ordinals with :func:`repro.tpm.dispatch.handler`
at import time; :mod:`repro.tpm.dispatch` imports them all.
"""
