"""Ownership lifecycle: TakeOwnership, OwnerClear, ReadPubek."""

from __future__ import annotations

from repro.tpm.constants import (
    AUTHDATA_SIZE,
    TPM_DECRYPT_ERROR,
    TPM_NO_ENDORSEMENT,
    TPM_ORD_OwnerClear,
    TPM_ORD_ReadPubek,
    TPM_ORD_TakeOwnership,
    TPM_OWNER_SET,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.util.bytesio import ByteWriter
from repro.util.errors import CryptoError, TpmError


@handler(TPM_ORD_TakeOwnership)
def tpm_take_ownership(ctx: CommandContext) -> bytes:
    """TPM_TakeOwnership: install the owner and generate the SRK.

    The new owner and SRK AuthData arrive RSA-encrypted under the public EK,
    so only this physical TPM can read them.  The AUTH1 trailer is keyed
    with the *new* owner secret (spec behaviour: proves the caller knows
    what it encrypted).
    """
    enc_owner_auth = ctx.reader.sized(max_size=1 << 12)
    enc_srk_auth = ctx.reader.sized(max_size=1 << 12)
    ctx.reader.expect_end()
    if ctx.state.flags.owned:
        raise TpmError(TPM_OWNER_SET, "TPM already has an owner")
    ek = ctx.state.keys.ek
    if ek is None:
        raise TpmError(TPM_NO_ENDORSEMENT, "no endorsement key")
    try:
        owner_auth = ek.keypair.decrypt(enc_owner_auth)
        srk_auth = ek.keypair.decrypt(enc_srk_auth)
    except CryptoError as exc:
        raise TpmError(TPM_DECRYPT_ERROR, f"bad encrypted auth: {exc}") from exc
    if len(owner_auth) != AUTHDATA_SIZE or len(srk_auth) != AUTHDATA_SIZE:
        raise TpmError(TPM_DECRYPT_ERROR, "auth secrets must be 20 bytes")
    ctx.verify_auth(owner_auth)
    ctx.state.install_owner(owner_auth, srk_auth)
    srk = ctx.state.keys.srk
    w = ByteWriter()
    w.sized(srk.keypair.public.modulus_bytes())
    w.u32(srk.keypair.public.e)
    w.u32(srk.keypair.public.bits)
    return w.getvalue()


@handler(TPM_ORD_OwnerClear)
def tpm_owner_clear(ctx: CommandContext) -> bytes:
    """TPM_OwnerClear: owner-authorized factory reset of the hierarchy."""
    ctx.reader.expect_end()
    if not ctx.state.flags.owned:
        raise TpmError(TPM_NO_ENDORSEMENT, "no owner installed")
    ctx.verify_auth(ctx.state.owner_auth)
    ctx.state.clear_owner()
    return b""


@handler(TPM_ORD_ReadPubek)
def tpm_read_pubek(ctx: CommandContext) -> bytes:
    """TPM_ReadPubek: the public endorsement key (pre-ownership only)."""
    ctx.reader.expect_end()
    if ctx.state.flags.owned:
        # After ownership the pubek is only readable with owner auth;
        # the reproduction does not need that path.
        raise TpmError(TPM_OWNER_SET, "pubek locked after TakeOwnership")
    ek = ctx.state.keys.ek
    if ek is None:
        raise TpmError(TPM_NO_ENDORSEMENT, "no endorsement key")
    w = ByteWriter()
    w.sized(ek.keypair.public.modulus_bytes())
    w.u32(ek.keypair.public.e)
    w.u32(ek.keypair.public.bits)
    return w.getvalue()
