"""Administrative ordinals: startup, self-test, capabilities, random, flush."""

from __future__ import annotations

from repro.tpm.constants import (
    MAX_KEY_SLOTS,
    NUM_PCRS,
    TPM_BAD_MODE,
    TPM_BAD_PARAMETER,
    TPM_CAP_PROPERTY,
    TPM_CAP_PROP_COUNTERS,
    TPM_CAP_PROP_KEYS,
    TPM_CAP_PROP_MANUFACTURER,
    TPM_CAP_PROP_MAX_KEYS,
    TPM_CAP_PROP_PCR,
    TPM_CAP_VERSION,
    TPM_INVALID_POSTINIT,
    TPM_ORD_ContinueSelfTest,
    TPM_ORD_FlushSpecific,
    TPM_ORD_GetCapability,
    TPM_ORD_GetRandom,
    TPM_ORD_OIAP,
    TPM_ORD_OSAP,
    TPM_ORD_SaveState,
    TPM_ORD_SelfTestFull,
    TPM_ORD_Startup,
    TPM_RT_AUTH,
    TPM_RT_COUNTER,
    TPM_RT_KEY,
    TPM_ST_CLEAR,
    TPM_ST_DEACTIVATED,
    TPM_ST_STATE,
    NONCE_SIZE,
    TPM_ET_COUNTER,
    TPM_ET_KEYHANDLE,
    TPM_ET_NV,
    TPM_ET_OWNER,
    TPM_ET_SRK,
    TPM_KH_SRK,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.structures import STRUCT_VERSION
from repro.util.bytesio import ByteWriter
from repro.util.errors import TpmError

#: manufacturer string returned by GetCapability, as real parts do ("REPR")
MANUFACTURER = b"REPR"


@handler(TPM_ORD_Startup)
def tpm_startup(ctx: CommandContext) -> bytes:
    """TPM_Startup: transition out of post-init into an operational state."""
    startup_type = ctx.reader.u16()
    ctx.reader.expect_end()
    if ctx.state.flags.started:
        raise TpmError(TPM_INVALID_POSTINIT, "Startup after Startup")
    if startup_type == TPM_ST_CLEAR:
        ctx.state.pcrs.startup_clear()
        ctx.state.keys.evict_all()
        ctx.state.sessions.flush_all()
        ctx.state.flags.deactivated = False
    elif startup_type == TPM_ST_STATE:
        # Resume from saved state: PCRs and loaded keys survive.
        pass
    elif startup_type == TPM_ST_DEACTIVATED:
        ctx.state.flags.deactivated = True
    else:
        raise TpmError(TPM_BAD_PARAMETER, f"bad startup type {startup_type:#x}")
    ctx.state.flags.started = True
    ctx.state.flags.post_initialized = False
    return b""


@handler(TPM_ORD_SaveState)
def tpm_save_state(ctx: CommandContext) -> bytes:
    """TPM_SaveState: a no-op marker here; persistence is the caller's job."""
    ctx.reader.expect_end()
    return b""


@handler(TPM_ORD_SelfTestFull)
def tpm_self_test_full(ctx: CommandContext) -> bytes:
    ctx.reader.expect_end()
    return b""


@handler(TPM_ORD_ContinueSelfTest)
def tpm_continue_self_test(ctx: CommandContext) -> bytes:
    ctx.reader.expect_end()
    return b""


@handler(TPM_ORD_GetRandom)
def tpm_get_random(ctx: CommandContext) -> bytes:
    """TPM_GetRandom: hardware-quality randomness for the guest."""
    requested = ctx.reader.u32()
    ctx.reader.expect_end()
    # Real parts cap a single request; 4096 matches common firmware.
    count = min(requested, 4096)
    data = ctx.state.rng.bytes(count)
    return ByteWriter().sized(data).getvalue()


@handler(TPM_ORD_GetCapability)
def tpm_get_capability(ctx: CommandContext) -> bytes:
    """TPM_GetCapability: the property subset the stack actually queries."""
    cap_area = ctx.reader.u32()
    sub_cap = ctx.reader.sized(max_size=64)
    ctx.reader.expect_end()
    w = ByteWriter()
    if cap_area == TPM_CAP_VERSION:
        return w.sized(STRUCT_VERSION).getvalue()
    if cap_area != TPM_CAP_PROPERTY:
        raise TpmError(TPM_BAD_MODE, f"unsupported capability area {cap_area:#x}")
    if len(sub_cap) != 4:
        raise TpmError(TPM_BAD_PARAMETER, "property subCap must be 4 bytes")
    prop = int.from_bytes(sub_cap, "big")
    if prop == TPM_CAP_PROP_PCR:
        value = NUM_PCRS
    elif prop == TPM_CAP_PROP_MANUFACTURER:
        return w.sized(MANUFACTURER).getvalue()
    elif prop == TPM_CAP_PROP_KEYS:
        value = MAX_KEY_SLOTS - ctx.state.keys.loaded_count
    elif prop == TPM_CAP_PROP_MAX_KEYS:
        value = MAX_KEY_SLOTS
    elif prop == TPM_CAP_PROP_COUNTERS:
        value = len(ctx.state.counters.counters())
    else:
        raise TpmError(TPM_BAD_MODE, f"unsupported property {prop:#x}")
    return w.sized(value.to_bytes(4, "big")).getvalue()


@handler(TPM_ORD_OIAP)
def tpm_oiap(ctx: CommandContext) -> bytes:
    """TPM_OIAP: open an object-independent auth session."""
    ctx.reader.expect_end()
    session = ctx.state.sessions.open_oiap()
    w = ByteWriter()
    w.u32(session.handle)
    w.raw(session.nonce_even)
    return w.getvalue()


@handler(TPM_ORD_OSAP)
def tpm_osap(ctx: CommandContext) -> bytes:
    """TPM_OSAP: open an object-specific session bound to one entity."""
    entity_type = ctx.reader.u16()
    entity_value = ctx.reader.u32()
    nonce_odd_osap = ctx.reader.raw(NONCE_SIZE)
    ctx.reader.expect_end()
    secret = _entity_secret(ctx, entity_type, entity_value)
    session, nonce_even_osap = ctx.state.sessions.open_osap(
        entity_type, entity_value, secret, nonce_odd_osap
    )
    w = ByteWriter()
    w.u32(session.handle)
    w.raw(session.nonce_even)
    w.raw(nonce_even_osap)
    return w.getvalue()


def _entity_secret(ctx: CommandContext, entity_type: int, entity_value: int) -> bytes:
    """Resolve the AuthData secret an OSAP session binds to."""
    if entity_type == TPM_ET_OWNER:
        return ctx.state.owner_auth
    if entity_type == TPM_ET_SRK:
        return ctx.state.keys.get(TPM_KH_SRK).usage_auth
    if entity_type == TPM_ET_KEYHANDLE:
        return ctx.state.keys.get(entity_value).usage_auth
    if entity_type == TPM_ET_COUNTER:
        return ctx.state.counters.get(entity_value).auth
    if entity_type == TPM_ET_NV:
        return ctx.state.nv.get(entity_value).auth
    raise TpmError(TPM_BAD_PARAMETER, f"unknown entity type {entity_type:#x}")


@handler(TPM_ORD_FlushSpecific)
def tpm_flush_specific(ctx: CommandContext) -> bytes:
    """TPM_FlushSpecific: evict a key, session, or counter."""
    flush_handle = ctx.reader.u32()
    resource_type = ctx.reader.u32()
    ctx.reader.expect_end()
    if resource_type == TPM_RT_KEY:
        ctx.state.keys.evict(flush_handle)
    elif resource_type == TPM_RT_AUTH:
        ctx.state.sessions.close(flush_handle)
    elif resource_type == TPM_RT_COUNTER:
        ctx.state.counters.release(flush_handle)
    else:
        raise TpmError(TPM_BAD_PARAMETER, f"bad resource type {resource_type:#x}")
    return b""
