"""Attestation ordinals: Sign, Quote, MakeIdentity, ActivateIdentity."""

from __future__ import annotations

from repro.crypto.hashes import sha1
from repro.crypto.rsa import generate_keypair
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    DIGEST_SIZE,
    TPM_AUTHFAIL,
    TPM_BAD_DATASIZE,
    TPM_DECRYPT_ERROR,
    TPM_INVALID_KEYUSAGE,
    TPM_KEY_IDENTITY,
    TPM_KH_SRK,
    TPM_NO_ENDORSEMENT,
    TPM_ORD_ActivateIdentity,
    TPM_ORD_CertifyKey,
    TPM_ORD_MakeIdentity,
    TPM_ORD_Quote,
    TPM_ORD_Sign,
    TPM_SS_RSASSAPKCS1v15_SHA1,
    TPM_WRONGPCRVAL,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.tpm.pcr import PcrSelection
from repro.tpm.structures import TpmKeyBlob, make_quote_info
from repro.util.bytesio import ByteWriter
from repro.util.errors import CryptoError, TpmError


@handler(TPM_ORD_Sign)
def tpm_sign(ctx: CommandContext) -> bytes:
    """TPM_Sign: PKCS#1 v1.5 signature over a caller-supplied SHA-1 digest."""
    key_handle = ctx.reader.u32()
    area = ctx.reader.sized(max_size=1 << 12)
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    if not key.can_sign:
        raise TpmError(TPM_INVALID_KEYUSAGE, "Sign requires a signing key")
    if len(area) != DIGEST_SIZE:
        raise TpmError(
            TPM_BAD_DATASIZE, f"areaToSign must be a {DIGEST_SIZE}-byte digest"
        )
    ctx.verify_auth(key.usage_auth)
    # Keys PCR-bound at creation only operate in the matching platform state.
    if key.pcr_info is not None and key.pcr_info.selection:
        current = ctx.state.pcrs.composite_digest(key.pcr_info.selection)
        if current != key.pcr_info.digest_at_release:
            raise TpmError(TPM_WRONGPCRVAL, "key PCR binding violated")
    signature = key.keypair.sign_sha1(area)
    return ByteWriter().sized(signature).getvalue()


@handler(TPM_ORD_Quote)
def tpm_quote(ctx: CommandContext) -> bytes:
    """TPM_Quote: sign the selected PCR composite plus a challenger nonce.

    Out: composite digest, per-PCR values, signature over TPM_QUOTE_INFO.
    """
    key_handle = ctx.reader.u32()
    external_data = ctx.reader.raw(DIGEST_SIZE)
    selection = PcrSelection.deserialize(ctx.reader)
    ctx.reader.expect_end()
    key = ctx.state.keys.get(key_handle)
    if not key.can_sign:
        raise TpmError(TPM_INVALID_KEYUSAGE, "Quote requires a signing/identity key")
    ctx.verify_auth(key.usage_auth)
    composite = ctx.state.pcrs.composite_digest(selection)
    quote_info = make_quote_info(composite, external_data)
    signature = key.keypair.sign_sha1(sha1(quote_info))
    w = ByteWriter()
    w.raw(composite)
    values = b"".join(ctx.state.pcrs.read(i) for i in selection.indices)
    w.sized(values)
    w.sized(signature)
    return w.getvalue()


#: fixed prefix of TPM_CERTIFY_INFO in this implementation
CERTIFY_FIXED = b"CERT"


@handler(TPM_ORD_CertifyKey)
def tpm_certify_key(ctx: CommandContext) -> bytes:
    """TPM_CertifyKey: one loaded key attests another's properties.

    Params: certHandle (the signing/identity key), keyHandle (the key to
    certify), antiReplay(20), keyAuth(20 — the certified key's usage auth,
    compared directly; the spec's second AUTH trailer collapsed as in
    Unseal).  Out: sized certifyInfo, sized signature.
    """
    cert_handle = ctx.reader.u32()
    key_handle = ctx.reader.u32()
    anti_replay = ctx.reader.raw(DIGEST_SIZE)
    key_auth = ctx.reader.raw(AUTHDATA_SIZE)
    ctx.reader.expect_end()
    cert_key = ctx.state.keys.get(cert_handle)
    if not cert_key.can_sign:
        raise TpmError(TPM_INVALID_KEYUSAGE, "certifying key must sign")
    target = ctx.state.keys.get(key_handle)
    ctx.verify_auth(cert_key.usage_auth)
    from repro.crypto.hmac_util import constant_time_equal

    if not constant_time_equal(target.usage_auth, key_auth):
        raise TpmError(TPM_AUTHFAIL, "certified key auth mismatch")
    w = ByteWriter()
    w.raw(CERTIFY_FIXED)
    w.u16(target.usage)
    w.sized(target.keypair.public.modulus_bytes())
    w.u32(target.keypair.public.e)
    w.raw(anti_replay)
    if target.pcr_info is not None and target.pcr_info.selection:
        w.u8(1)
        w.raw(target.pcr_info.digest_at_release)
    else:
        w.u8(0)
    certify_info = w.getvalue()
    signature = cert_key.keypair.sign_sha1(sha1(certify_info))
    out = ByteWriter()
    out.sized(certify_info)
    out.sized(signature)
    return out.getvalue()


@handler(TPM_ORD_MakeIdentity)
def tpm_make_identity(ctx: CommandContext) -> bytes:
    """TPM_MakeIdentity: mint an AIK under the SRK (owner-authorized).

    Params: identityAuth(20), sized labelDigest.  The full Privacy-CA
    binding payload is omitted; the emulator returns the wrapped AIK blob,
    which is all the attestation experiments consume.
    """
    identity_auth = ctx.reader.raw(AUTHDATA_SIZE)
    label = ctx.reader.sized(max_size=256)
    ctx.reader.expect_end()
    if not ctx.state.flags.owned:
        raise TpmError(TPM_NO_ENDORSEMENT, "TakeOwnership first")
    ctx.verify_auth(ctx.state.owner_auth)
    srk = ctx.state.keys.get(TPM_KH_SRK)
    aik_pair = generate_keypair(ctx.state.key_bits, ctx.state.rng)
    blob = TpmKeyBlob.wrap(
        parent=srk.keypair,
        keypair=aik_pair,
        usage=TPM_KEY_IDENTITY,
        usage_auth=identity_auth,
        migration_auth=ctx.state.tpm_proof,
        rng=ctx.state.rng,
        scheme=TPM_SS_RSASSAPKCS1v15_SHA1,
    )
    w = ByteWriter()
    w.sized(blob.serialize())
    # Bind the label into the reply so a CA can tie blob to request.
    w.sized(sha1(label + aik_pair.public.modulus_bytes()))
    return w.getvalue()


@handler(TPM_ORD_ActivateIdentity)
def tpm_activate_identity(ctx: CommandContext) -> bytes:
    """TPM_ActivateIdentity: recover a CA session key encrypted to the EK."""
    id_key_handle = ctx.reader.u32()
    enc_blob = ctx.reader.sized(max_size=1 << 12)
    ctx.reader.expect_end()
    if not ctx.state.flags.owned:
        raise TpmError(TPM_NO_ENDORSEMENT, "TakeOwnership first")
    key = ctx.state.keys.get(id_key_handle)
    if key.usage != TPM_KEY_IDENTITY:
        raise TpmError(TPM_INVALID_KEYUSAGE, "handle is not an identity key")
    ctx.verify_auth(ctx.state.owner_auth)
    ek = ctx.state.keys.ek
    if ek is None:
        raise TpmError(TPM_NO_ENDORSEMENT, "no endorsement key")
    try:
        sym_key = ek.keypair.decrypt(enc_blob)
    except CryptoError as exc:
        raise TpmError(TPM_DECRYPT_ERROR, f"activation blob: {exc}") from exc
    return ByteWriter().sized(sym_key).getvalue()
