"""Monotonic-counter ordinals."""

from __future__ import annotations

from repro.tpm.constants import (
    AUTHDATA_SIZE,
    TPM_ORD_CreateCounter,
    TPM_ORD_IncrementCounter,
    TPM_ORD_ReadCounter,
    TPM_ORD_ReleaseCounter,
)
from repro.tpm.dispatch import CommandContext, handler
from repro.util.bytesio import ByteWriter


@handler(TPM_ORD_CreateCounter)
def tpm_create_counter(ctx: CommandContext) -> bytes:
    """TPM_CreateCounter (owner-authorized): new counter above high water."""
    counter_auth = ctx.reader.raw(AUTHDATA_SIZE)
    label = ctx.reader.raw(4)
    ctx.reader.expect_end()
    ctx.verify_auth(ctx.state.owner_auth)
    counter = ctx.state.counters.create(label, counter_auth)
    w = ByteWriter()
    w.u32(counter.handle)
    w.u64(counter.value)
    return w.getvalue()


@handler(TPM_ORD_IncrementCounter)
def tpm_increment_counter(ctx: CommandContext) -> bytes:
    """TPM_IncrementCounter (counter-auth): bump and return the new value."""
    handle = ctx.reader.u32()
    ctx.reader.expect_end()
    counter = ctx.state.counters.get(handle)
    ctx.verify_auth(counter.auth)
    value = ctx.state.counters.increment(handle)
    return ByteWriter().u64(value).getvalue()


@handler(TPM_ORD_ReadCounter)
def tpm_read_counter(ctx: CommandContext) -> bytes:
    """TPM_ReadCounter: unauthenticated read, as the spec allows."""
    handle = ctx.reader.u32()
    ctx.reader.expect_end()
    counter = ctx.state.counters.get(handle)
    return ByteWriter().u64(counter.value).getvalue()


@handler(TPM_ORD_ReleaseCounter)
def tpm_release_counter(ctx: CommandContext) -> bytes:
    """TPM_ReleaseCounter (counter-auth): delete the counter."""
    handle = ctx.reader.u32()
    ctx.reader.expect_end()
    counter = ctx.state.counters.get(handle)
    ctx.verify_auth(counter.auth)
    ctx.state.counters.release(handle)
    return b""
