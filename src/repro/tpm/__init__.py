"""TPM 1.2 emulator.

A complete-enough software TPM: PCR bank, RSA key hierarchy, OIAP/OSAP
authorization, sealed storage, quotes, NV storage and monotonic counters,
all behind the real big-endian wire format.  One :class:`TpmDevice` is the
platform's hardware TPM; the vTPM manager instantiates one per guest.
"""

from repro.tpm.client import TpmClient
from repro.tpm.device import TpmDevice
from repro.tpm.dispatch import TpmExecutor, registered_ordinals
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.tpm.state import TpmState

__all__ = [
    "TpmClient",
    "TpmDevice",
    "TpmExecutor",
    "TpmState",
    "PcrBank",
    "PcrSelection",
    "registered_ordinals",
]
