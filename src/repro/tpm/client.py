"""Guest-side TPM software stack (the TrouSerS role).

A :class:`TpmClient` speaks the full wire protocol over any transport — a
direct call into a :class:`~repro.tpm.device.TpmDevice`, or the vTPM
front-end driver of a guest domain — and exposes Pythonic methods for each
ordinal, handling session management, auth HMACs, nonce rolling and
response verification.

Raises :class:`~repro.util.errors.TpmError` with the device's result code
whenever a command fails, so tests can assert exact TPM semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.crypto.hmac_util import constant_time_equal, hmac_sha1
from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaPublicKey
from repro.tpm import marshal
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    DIGEST_SIZE,
    NONCE_SIZE,
    TPM_AUTHFAIL,
    TPM_ET_KEYHANDLE,
    TPM_ET_OWNER,
    TPM_ET_SRK,
    TPM_KH_SRK,
    TPM_ORD_ActivateIdentity,
    TPM_ORD_ContinueSelfTest,
    TPM_ORD_CreateCounter,
    TPM_ORD_CreateWrapKey,
    TPM_ORD_Extend,
    TPM_ORD_FlushSpecific,
    TPM_ORD_GetCapability,
    TPM_ORD_GetPubKey,
    TPM_ORD_GetRandom,
    TPM_ORD_IncrementCounter,
    TPM_ORD_LoadKey2,
    TPM_ORD_MakeIdentity,
    TPM_ORD_NV_DefineSpace,
    TPM_ORD_NV_ReadValue,
    TPM_ORD_NV_WriteValue,
    TPM_ORD_OIAP,
    TPM_ORD_OSAP,
    TPM_ORD_OwnerClear,
    TPM_ORD_PCR_Reset,
    TPM_ORD_PcrRead,
    TPM_ORD_Quote,
    TPM_ORD_ReadCounter,
    TPM_ORD_ReadPubek,
    TPM_ORD_ReleaseCounter,
    TPM_ORD_Seal,
    TPM_ORD_SelfTestFull,
    TPM_ORD_Sign,
    TPM_ORD_TakeOwnership,
    TPM_ORD_UnBind,
    TPM_ORD_Unseal,
    TPM_RT_AUTH,
    TPM_RT_COUNTER,
    TPM_RT_KEY,
    TPM_SUCCESS,
    ordinal_name,
)
from repro.tpm.marshal import AuthTrailer
from repro.tpm.pcr import PcrSelection
from repro.tpm.sessions import compute_auth, osap_shared_secret
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import TpmError

Transport = Callable[[bytes], bytes]


@dataclass
class ClientSession:
    """Client-side mirror of an auth session."""

    handle: int
    kind: str
    nonce_even: bytes
    shared_secret: bytes = b""

    def hmac_key(self, entity_secret: bytes) -> bytes:
        return self.shared_secret if self.kind == "osap" else entity_secret


class TpmClient:
    """High-level, session-managing TPM 1.2 client."""

    def __init__(self, transport: Transport, rng: RandomSource) -> None:
        self._send = transport
        self._rng = rng

    # -- plumbing ---------------------------------------------------------------

    def _call(self, ordinal: int, params: bytes) -> bytes:
        """Unauthorized command; returns out-params or raises TpmError."""
        response = self._send(marshal.build_command(ordinal, params))
        parsed = marshal.parse_response(response)
        if parsed.return_code != TPM_SUCCESS:
            raise TpmError(
                parsed.return_code,
                f"{ordinal_name(ordinal)} failed with {parsed.return_code:#x}",
            )
        return parsed.params

    def _call_auth(
        self,
        ordinal: int,
        params: bytes,
        session: ClientSession,
        entity_secret: bytes,
        continue_session: bool = False,
    ) -> bytes:
        """AUTH1 command: build trailer, verify response auth, roll nonces."""
        nonce_odd = self._rng.nonce()
        param_digest = marshal.command_param_digest(ordinal, params)
        key = session.hmac_key(entity_secret)
        # Client-side HMAC cost is real work in the guest stack.
        auth_value = compute_auth(
            key, param_digest, session.nonce_even, nonce_odd, continue_session
        )
        trailer = AuthTrailer(
            handle=session.handle,
            nonce_odd=nonce_odd,
            continue_session=continue_session,
            auth_value=auth_value,
        )
        response = self._send(marshal.build_command(ordinal, params, auth=trailer))
        parsed = marshal.parse_response(response)
        if parsed.return_code != TPM_SUCCESS:
            raise TpmError(
                parsed.return_code,
                f"{ordinal_name(ordinal)} failed with {parsed.return_code:#x}",
            )
        if parsed.nonce_even is None or parsed.response_auth is None:
            raise TpmError(TPM_AUTHFAIL, "authorized command got unauthorized reply")
        out_digest = marshal.response_param_digest(
            parsed.return_code, ordinal, parsed.params
        )
        expected = compute_auth(
            key, out_digest, parsed.nonce_even, nonce_odd, parsed.continue_session
        )
        if not constant_time_equal(expected, parsed.response_auth):
            raise TpmError(TPM_AUTHFAIL, "response auth HMAC mismatch (MitM?)")
        session.nonce_even = parsed.nonce_even
        return parsed.params

    # -- sessions ----------------------------------------------------------------

    def oiap(self) -> ClientSession:
        out = ByteReader(self._call(TPM_ORD_OIAP, b""))
        handle = out.u32()
        nonce_even = out.raw(NONCE_SIZE)
        out.expect_end()
        return ClientSession(handle=handle, kind="oiap", nonce_even=nonce_even)

    def osap(
        self, entity_type: int, entity_value: int, entity_secret: bytes
    ) -> ClientSession:
        nonce_odd_osap = self._rng.nonce()
        params = (
            ByteWriter().u16(entity_type).u32(entity_value).raw(nonce_odd_osap)
        ).getvalue()
        out = ByteReader(self._call(TPM_ORD_OSAP, params))
        handle = out.u32()
        nonce_even = out.raw(NONCE_SIZE)
        nonce_even_osap = out.raw(NONCE_SIZE)
        out.expect_end()
        shared = osap_shared_secret(entity_secret, nonce_even_osap, nonce_odd_osap)
        return ClientSession(
            handle=handle, kind="osap", nonce_even=nonce_even, shared_secret=shared
        )

    def flush_session(self, session: ClientSession) -> None:
        params = ByteWriter().u32(session.handle).u32(TPM_RT_AUTH).getvalue()
        self._call(TPM_ORD_FlushSpecific, params)

    # -- admin --------------------------------------------------------------------

    def self_test(self) -> None:
        self._call(TPM_ORD_SelfTestFull, b"")
        self._call(TPM_ORD_ContinueSelfTest, b"")

    def get_random(self, count: int) -> bytes:
        out = ByteReader(self._call(TPM_ORD_GetRandom, ByteWriter().u32(count).getvalue()))
        data = out.sized()
        out.expect_end()
        return data

    def get_capability_property(self, prop: int) -> bytes:
        params = ByteWriter().u32(0x5).sized(prop.to_bytes(4, "big")).getvalue()
        out = ByteReader(self._call(TPM_ORD_GetCapability, params))
        value = out.sized()
        out.expect_end()
        return value

    # -- ownership -------------------------------------------------------------------

    def read_pubek(self) -> RsaPublicKey:
        out = ByteReader(self._call(TPM_ORD_ReadPubek, b""))
        modulus = out.sized()
        exponent = out.u32()
        bits = out.u32()
        out.expect_end()
        return RsaPublicKey(n=int.from_bytes(modulus, "big"), e=exponent, bits=bits)

    def take_ownership(
        self, owner_auth: bytes, srk_auth: bytes, ek_public: RsaPublicKey
    ) -> RsaPublicKey:
        """Install ownership; returns the new SRK public key."""
        if len(owner_auth) != AUTHDATA_SIZE or len(srk_auth) != AUTHDATA_SIZE:
            raise TpmError(TPM_AUTHFAIL, "auth secrets must be 20 bytes")
        enc_owner = ek_public.encrypt(owner_auth, self._rng)
        enc_srk = ek_public.encrypt(srk_auth, self._rng)
        params = ByteWriter().sized(enc_owner).sized(enc_srk).getvalue()
        session = self.oiap()
        out = ByteReader(
            self._call_auth(TPM_ORD_TakeOwnership, params, session, owner_auth)
        )
        modulus = out.sized()
        exponent = out.u32()
        bits = out.u32()
        out.expect_end()
        return RsaPublicKey(n=int.from_bytes(modulus, "big"), e=exponent, bits=bits)

    def owner_clear(self, owner_auth: bytes) -> None:
        session = self.oiap()
        self._call_auth(TPM_ORD_OwnerClear, b"", session, owner_auth)

    # -- PCRs ---------------------------------------------------------------------------

    def extend(self, index: int, measurement: bytes) -> bytes:
        params = ByteWriter().u32(index).raw(measurement).getvalue()
        out = ByteReader(self._call(TPM_ORD_Extend, params))
        value = out.raw(DIGEST_SIZE)
        out.expect_end()
        return value

    def pcr_read(self, index: int) -> bytes:
        out = ByteReader(self._call(TPM_ORD_PcrRead, ByteWriter().u32(index).getvalue()))
        value = out.raw(DIGEST_SIZE)
        out.expect_end()
        return value

    def pcr_reset(self, indices: Iterable[int]) -> None:
        params = PcrSelection(indices).serialize()
        self._call(TPM_ORD_PCR_Reset, params)

    # -- storage ----------------------------------------------------------------------------

    @staticmethod
    def _pcr_info_field(
        pcr_selection: Optional[PcrSelection], digest_at_release: Optional[bytes]
    ) -> bytes:
        if pcr_selection is None or not pcr_selection:
            return ByteWriter().u32(0).getvalue()
        from repro.tpm.structures import TpmPcrInfo

        blob = TpmPcrInfo(
            selection=pcr_selection, digest_at_release=digest_at_release
        ).serialize()
        return (ByteWriter().u32(len(blob)).raw(blob)).getvalue()

    def seal(
        self,
        parent_handle: int,
        parent_secret: bytes,
        data: bytes,
        data_auth: bytes,
        pcr_selection: Optional[PcrSelection] = None,
        digest_at_release: Optional[bytes] = None,
    ) -> bytes:
        """TPM_Seal via a fresh OSAP session; returns the sealed blob."""
        entity = (
            (TPM_ET_SRK, TPM_KH_SRK)
            if parent_handle == TPM_KH_SRK
            else (TPM_ET_KEYHANDLE, parent_handle)
        )
        session = self.osap(entity[0], entity[1], parent_secret)
        params = (
            ByteWriter()
            .u32(parent_handle)
            .raw(data_auth)
            .raw(self._pcr_info_field(pcr_selection, digest_at_release))
            .sized(data)
            .getvalue()
        )
        out = ByteReader(self._call_auth(TPM_ORD_Seal, params, session, parent_secret))
        blob = out.sized(max_size=1 << 20)
        out.expect_end()
        return blob

    def unseal(
        self,
        parent_handle: int,
        parent_secret: bytes,
        blob: bytes,
        data_auth: bytes,
    ) -> bytes:
        session = self.oiap()
        params = (
            ByteWriter().u32(parent_handle).raw(data_auth).sized(blob).getvalue()
        )
        out = ByteReader(self._call_auth(TPM_ORD_Unseal, params, session, parent_secret))
        data = out.sized(max_size=1 << 20)
        out.expect_end()
        return data

    def unbind(self, key_handle: int, key_secret: bytes, enc_data: bytes) -> bytes:
        session = self.oiap()
        params = ByteWriter().u32(key_handle).sized(enc_data).getvalue()
        out = ByteReader(self._call_auth(TPM_ORD_UnBind, params, session, key_secret))
        clear = out.sized(max_size=1 << 12)
        out.expect_end()
        return clear

    def create_wrap_key(
        self,
        parent_handle: int,
        parent_secret: bytes,
        usage_auth: bytes,
        key_usage: int,
        key_bits: int,
        migration_auth: Optional[bytes] = None,
        pcr_selection: Optional[PcrSelection] = None,
        digest_at_release: Optional[bytes] = None,
    ) -> bytes:
        """TPM_CreateWrapKey; returns the wrapped key blob."""
        session = self.oiap()
        params = (
            ByteWriter()
            .u32(parent_handle)
            .raw(usage_auth)
            .raw(migration_auth or usage_auth)
            .u16(key_usage)
            .u32(key_bits)
            .raw(self._pcr_info_field(pcr_selection, digest_at_release))
            .getvalue()
        )
        out = ByteReader(
            self._call_auth(TPM_ORD_CreateWrapKey, params, session, parent_secret)
        )
        blob = out.sized(max_size=1 << 16)
        out.expect_end()
        return blob

    def load_key2(self, parent_handle: int, parent_secret: bytes, blob: bytes) -> int:
        session = self.oiap()
        params = ByteWriter().u32(parent_handle).sized(blob).getvalue()
        out = ByteReader(self._call_auth(TPM_ORD_LoadKey2, params, session, parent_secret))
        handle = out.u32()
        out.expect_end()
        return handle

    def get_pub_key(self, key_handle: int, key_secret: bytes) -> RsaPublicKey:
        session = self.oiap()
        params = ByteWriter().u32(key_handle).getvalue()
        out = ByteReader(self._call_auth(TPM_ORD_GetPubKey, params, session, key_secret))
        modulus = out.sized()
        exponent = out.u32()
        bits = out.u32()
        out.expect_end()
        return RsaPublicKey(n=int.from_bytes(modulus, "big"), e=exponent, bits=bits)

    def evict_key(self, key_handle: int) -> None:
        params = ByteWriter().u32(key_handle).u32(TPM_RT_KEY).getvalue()
        self._call(TPM_ORD_FlushSpecific, params)

    # -- attestation -------------------------------------------------------------------------

    def sign(self, key_handle: int, key_secret: bytes, digest: bytes) -> bytes:
        session = self.oiap()
        params = ByteWriter().u32(key_handle).sized(digest).getvalue()
        out = ByteReader(self._call_auth(TPM_ORD_Sign, params, session, key_secret))
        signature = out.sized(max_size=1 << 12)
        out.expect_end()
        return signature

    def quote(
        self,
        key_handle: int,
        key_secret: bytes,
        external_data: bytes,
        pcr_indices: Iterable[int],
    ) -> tuple[bytes, list[bytes], bytes]:
        """TPM_Quote; returns (composite, pcr_values, signature)."""
        selection = PcrSelection(pcr_indices)
        session = self.oiap()
        params = (
            ByteWriter().u32(key_handle).raw(external_data).raw(selection.serialize())
        ).getvalue()
        out = ByteReader(self._call_auth(TPM_ORD_Quote, params, session, key_secret))
        composite = out.raw(DIGEST_SIZE)
        values_blob = out.sized(max_size=1 << 12)
        signature = out.sized(max_size=1 << 12)
        out.expect_end()
        values = [
            values_blob[i : i + DIGEST_SIZE]
            for i in range(0, len(values_blob), DIGEST_SIZE)
        ]
        return composite, values, signature

    def certify_key(
        self,
        cert_handle: int,
        cert_secret: bytes,
        key_handle: int,
        key_secret: bytes,
        anti_replay: bytes,
    ) -> tuple[bytes, bytes]:
        """TPM_CertifyKey; returns (certifyInfo bytes, signature)."""
        from repro.tpm.constants import TPM_ORD_CertifyKey

        session = self.oiap()
        params = (
            ByteWriter()
            .u32(cert_handle)
            .u32(key_handle)
            .raw(anti_replay)
            .raw(key_secret)
            .getvalue()
        )
        out = ByteReader(
            self._call_auth(TPM_ORD_CertifyKey, params, session, cert_secret)
        )
        certify_info = out.sized(max_size=1 << 12)
        signature = out.sized(max_size=1 << 12)
        out.expect_end()
        return certify_info, signature

    def make_identity(
        self, owner_auth: bytes, identity_auth: bytes, label: bytes
    ) -> tuple[bytes, bytes]:
        """TPM_MakeIdentity; returns (aik_blob, binding_digest)."""
        session = self.oiap()
        params = ByteWriter().raw(identity_auth).sized(label).getvalue()
        out = ByteReader(
            self._call_auth(TPM_ORD_MakeIdentity, params, session, owner_auth)
        )
        blob = out.sized(max_size=1 << 16)
        binding = out.sized(max_size=64)
        out.expect_end()
        return blob, binding

    def activate_identity(
        self, owner_auth: bytes, id_key_handle: int, enc_blob: bytes
    ) -> bytes:
        session = self.oiap()
        params = ByteWriter().u32(id_key_handle).sized(enc_blob).getvalue()
        out = ByteReader(
            self._call_auth(TPM_ORD_ActivateIdentity, params, session, owner_auth)
        )
        sym_key = out.sized(max_size=1 << 12)
        out.expect_end()
        return sym_key

    # -- maintenance ----------------------------------------------------------------------------

    def change_auth(
        self,
        parent_handle: int,
        parent_secret: bytes,
        key_blob: bytes,
        old_auth: bytes,
        new_auth: bytes,
    ) -> bytes:
        """TPM_ChangeAuth; returns the re-wrapped key blob."""
        from repro.tpm.constants import TPM_ORD_ChangeAuth

        session = self.oiap()
        params = (
            ByteWriter()
            .u32(parent_handle)
            .raw(old_auth)
            .raw(new_auth)
            .sized(key_blob)
            .getvalue()
        )
        out = ByteReader(
            self._call_auth(TPM_ORD_ChangeAuth, params, session, parent_secret)
        )
        blob = out.sized(max_size=1 << 16)
        out.expect_end()
        return blob

    def create_migration_blob(
        self,
        parent_handle: int,
        parent_secret: bytes,
        key_blob: bytes,
        migration_auth: bytes,
        destination: RsaPublicKey,
    ) -> bytes:
        """TPM_CreateMigrationBlob; returns the migration package."""
        from repro.tpm.constants import TPM_ORD_CreateMigrationBlob

        session = self.oiap()
        params = (
            ByteWriter()
            .u32(parent_handle)
            .raw(migration_auth)
            .sized(destination.modulus_bytes())
            .u32(destination.e)
            .u32(destination.bits)
            .sized(key_blob)
            .getvalue()
        )
        out = ByteReader(
            self._call_auth(
                TPM_ORD_CreateMigrationBlob, params, session, parent_secret
            )
        )
        blob = out.sized(max_size=1 << 16)
        out.expect_end()
        return blob

    def convert_migration_blob(
        self, parent_handle: int, parent_secret: bytes, migration_blob: bytes
    ) -> bytes:
        """TPM_ConvertMigrationBlob; returns a loadable key blob."""
        from repro.tpm.constants import TPM_ORD_ConvertMigrationBlob

        session = self.oiap()
        params = ByteWriter().u32(parent_handle).sized(migration_blob).getvalue()
        out = ByteReader(
            self._call_auth(
                TPM_ORD_ConvertMigrationBlob, params, session, parent_secret
            )
        )
        blob = out.sized(max_size=1 << 16)
        out.expect_end()
        return blob

    def dir_write(self, owner_auth: bytes, value: bytes, index: int = 0) -> None:
        from repro.tpm.constants import TPM_ORD_DirWriteAuth

        session = self.oiap()
        params = ByteWriter().u32(index).raw(value).getvalue()
        self._call_auth(TPM_ORD_DirWriteAuth, params, session, owner_auth)

    def dir_read(self, index: int = 0) -> bytes:
        from repro.tpm.constants import TPM_ORD_DirRead

        out = ByteReader(
            self._call(TPM_ORD_DirRead, ByteWriter().u32(index).getvalue())
        )
        value = out.raw(DIGEST_SIZE)
        out.expect_end()
        return value

    def get_test_result(self) -> bytes:
        from repro.tpm.constants import TPM_ORD_GetTestResult

        out = ByteReader(self._call(TPM_ORD_GetTestResult, b""))
        result = out.sized(max_size=64)
        out.expect_end()
        return result

    # -- NV ------------------------------------------------------------------------------------

    def nv_define(
        self,
        owner_auth: bytes,
        index: int,
        size: int,
        permissions: int,
        area_auth: bytes,
        pcr_selection: Optional[PcrSelection] = None,
        digest_at_release: Optional[bytes] = None,
    ) -> None:
        session = self.oiap()
        params = (
            ByteWriter()
            .u32(index)
            .u32(size)
            .u32(permissions)
            .raw(area_auth)
            .raw(self._pcr_info_field(pcr_selection, digest_at_release))
            .getvalue()
        )
        self._call_auth(TPM_ORD_NV_DefineSpace, params, session, owner_auth)

    #: largest NV payload per command; the tpmif transport is one page, so
    #: the client chunks larger transfers exactly as TrouSerS does.
    NV_CHUNK = 2048

    def nv_write(self, auth: bytes, index: int, offset: int, data: bytes) -> None:
        for pos in range(0, len(data), self.NV_CHUNK) or [0]:
            chunk = data[pos : pos + self.NV_CHUNK]
            session = self.oiap()
            params = ByteWriter().u32(index).u32(offset + pos).sized(chunk).getvalue()
            self._call_auth(TPM_ORD_NV_WriteValue, params, session, auth)

    def nv_read(
        self, index: int, offset: int, size: int, auth: Optional[bytes] = None
    ) -> bytes:
        out_data = bytearray()
        pos = 0
        while pos < size or (size == 0 and pos == 0):
            chunk_size = min(self.NV_CHUNK, size - pos) if size else 0
            params = (
                ByteWriter().u32(index).u32(offset + pos).u32(chunk_size).getvalue()
            )
            if auth is None:
                out = ByteReader(self._call(TPM_ORD_NV_ReadValue, params))
            else:
                session = self.oiap()
                out = ByteReader(
                    self._call_auth(TPM_ORD_NV_ReadValue, params, session, auth)
                )
            data = out.sized(max_size=1 << 16)
            out.expect_end()
            out_data += data
            pos += max(chunk_size, 1)
            if size == 0:
                break
        return bytes(out_data)

    # -- counters ----------------------------------------------------------------------------------

    def create_counter(
        self, owner_auth: bytes, counter_auth: bytes, label: bytes
    ) -> tuple[int, int]:
        session = self.oiap()
        params = ByteWriter().raw(counter_auth).raw(label).getvalue()
        out = ByteReader(
            self._call_auth(TPM_ORD_CreateCounter, params, session, owner_auth)
        )
        handle = out.u32()
        value = out.u64()
        out.expect_end()
        return handle, value

    def increment_counter(self, counter_auth: bytes, handle: int) -> int:
        session = self.oiap()
        params = ByteWriter().u32(handle).getvalue()
        out = ByteReader(
            self._call_auth(TPM_ORD_IncrementCounter, params, session, counter_auth)
        )
        value = out.u64()
        out.expect_end()
        return value

    def read_counter(self, handle: int) -> int:
        out = ByteReader(
            self._call(TPM_ORD_ReadCounter, ByteWriter().u32(handle).getvalue())
        )
        value = out.u64()
        out.expect_end()
        return value

    def release_counter(self, counter_auth: bytes, handle: int) -> None:
        session = self.oiap()
        params = ByteWriter().u32(handle).getvalue()
        self._call_auth(TPM_ORD_ReleaseCounter, params, session, counter_auth)
