"""TPM 1.2 constants: tags, ordinals, result codes, resource types.

Values follow the TCG TPM Main Specification Part 2 (rev 116) so that wire
traces from this emulator are recognisable to anyone who has stared at real
TPM 1.2 traffic.  Only the subset of ordinals the reproduction needs is
implemented; unknown ordinals return ``TPM_BAD_ORDINAL`` exactly like a real
device.
"""

from __future__ import annotations

# -- command/response tags ---------------------------------------------------
TPM_TAG_RQU_COMMAND = 0x00C1
TPM_TAG_RQU_AUTH1_COMMAND = 0x00C2
TPM_TAG_RQU_AUTH2_COMMAND = 0x00C3
TPM_TAG_RSP_COMMAND = 0x00C4
TPM_TAG_RSP_AUTH1_COMMAND = 0x00C5
TPM_TAG_RSP_AUTH2_COMMAND = 0x00C6

# -- result codes (TPM_BASE = 0) ---------------------------------------------
TPM_SUCCESS = 0x000
TPM_AUTHFAIL = 0x001
TPM_BADINDEX = 0x002
TPM_BAD_PARAMETER = 0x003
TPM_DEACTIVATED = 0x006
TPM_DISABLED = 0x007
TPM_FAIL = 0x009
TPM_BAD_ORDINAL = 0x00A
TPM_NOSPACE = 0x011
TPM_NOSRK = 0x012
TPM_NOTSEALED_BLOB = 0x013
TPM_OWNER_SET = 0x014
TPM_RESOURCES = 0x015
TPM_INVALID_AUTHHANDLE = 0x01C
TPM_NO_ENDORSEMENT = 0x023
TPM_INVALID_KEYUSAGE = 0x024
TPM_WRONG_ENTITYTYPE = 0x025
TPM_INVALID_POSTINIT = 0x026
TPM_BAD_KEY_PROPERTY = 0x028
TPM_BAD_MIGRATION = 0x029
TPM_BAD_SCHEME = 0x02A
TPM_BAD_DATASIZE = 0x02B
TPM_BAD_MODE = 0x02C
TPM_BAD_PRESENCE = 0x02D
TPM_NOTRESETABLE = 0x032
TPM_NOTLOCAL = 0x033
TPM_KEYNOTFOUND = 0x00D
TPM_BAD_COUNTER = 0x045
TPM_NOT_FULLWRITE = 0x046
TPM_BADTAG = 0x01E
TPM_IOERROR = 0x01F
TPM_ENCRYPT_ERROR = 0x020
TPM_DECRYPT_ERROR = 0x021
TPM_INVALID_KEYHANDLE = 0x022
TPM_WRONGPCRVAL = 0x018
TPM_BAD_LOCALITY = 0x03D
TPM_AREA_LOCKED = 0x03C
TPM_AUTH_CONFLICT = 0x03B
TPM_INVALID_STRUCTURE = 0x035
TPM_DISABLED_CMD = 0x008
TPM_NON_FATAL = 0x800
TPM_RETRY = TPM_NON_FATAL

# -- ordinals ------------------------------------------------------------------
TPM_ORD_OIAP = 0x0000000A
TPM_ORD_OSAP = 0x0000000B
TPM_ORD_TakeOwnership = 0x0000000D
TPM_ORD_OwnerClear = 0x0000005B
TPM_ORD_ForceClear = 0x0000005D
TPM_ORD_GetCapability = 0x00000065
TPM_ORD_GetRandom = 0x00000046
TPM_ORD_SelfTestFull = 0x00000050
TPM_ORD_ContinueSelfTest = 0x00000053
TPM_ORD_Startup = 0x00000099
TPM_ORD_SaveState = 0x00000098
TPM_ORD_Extend = 0x00000014
TPM_ORD_PcrRead = 0x00000015
TPM_ORD_Quote = 0x00000016
TPM_ORD_PCR_Reset = 0x000000C8
TPM_ORD_Seal = 0x00000017
TPM_ORD_Unseal = 0x00000018
TPM_ORD_UnBind = 0x0000001E
TPM_ORD_CreateWrapKey = 0x0000001F
TPM_ORD_LoadKey2 = 0x00000041
TPM_ORD_GetPubKey = 0x00000021
TPM_ORD_Sign = 0x0000003C
TPM_ORD_CertifyKey = 0x00000032
TPM_ORD_CreateCounter = 0x000000DC
TPM_ORD_IncrementCounter = 0x000000DD
TPM_ORD_ReadCounter = 0x000000DE
TPM_ORD_ReleaseCounter = 0x000000DF
TPM_ORD_NV_DefineSpace = 0x000000CC
TPM_ORD_NV_WriteValue = 0x000000CD
TPM_ORD_NV_ReadValue = 0x000000CF
TPM_ORD_FlushSpecific = 0x000000BA
TPM_ORD_MakeIdentity = 0x00000079
TPM_ORD_ActivateIdentity = 0x0000007A
TPM_ORD_ReadPubek = 0x0000007C
TPM_ORD_ChangeAuth = 0x0000000C
TPM_ORD_CreateMigrationBlob = 0x00000028
TPM_ORD_ConvertMigrationBlob = 0x0000002A
TPM_ORD_AuthorizeMigrationKey = 0x0000002B
TPM_ORD_DirWriteAuth = 0x00000019
TPM_ORD_DirRead = 0x0000001A
TPM_ORD_GetTestResult = 0x00000054

#: human-readable ordinal names, for logs, audit records and policies
ORDINAL_NAMES = {
    TPM_ORD_OIAP: "TPM_OIAP",
    TPM_ORD_OSAP: "TPM_OSAP",
    TPM_ORD_TakeOwnership: "TPM_TakeOwnership",
    TPM_ORD_OwnerClear: "TPM_OwnerClear",
    TPM_ORD_ForceClear: "TPM_ForceClear",
    TPM_ORD_GetCapability: "TPM_GetCapability",
    TPM_ORD_GetRandom: "TPM_GetRandom",
    TPM_ORD_SelfTestFull: "TPM_SelfTestFull",
    TPM_ORD_ContinueSelfTest: "TPM_ContinueSelfTest",
    TPM_ORD_Startup: "TPM_Startup",
    TPM_ORD_SaveState: "TPM_SaveState",
    TPM_ORD_Extend: "TPM_Extend",
    TPM_ORD_PcrRead: "TPM_PCRRead",
    TPM_ORD_Quote: "TPM_Quote",
    TPM_ORD_PCR_Reset: "TPM_PCR_Reset",
    TPM_ORD_Seal: "TPM_Seal",
    TPM_ORD_Unseal: "TPM_Unseal",
    TPM_ORD_UnBind: "TPM_UnBind",
    TPM_ORD_CreateWrapKey: "TPM_CreateWrapKey",
    TPM_ORD_LoadKey2: "TPM_LoadKey2",
    TPM_ORD_GetPubKey: "TPM_GetPubKey",
    TPM_ORD_Sign: "TPM_Sign",
    TPM_ORD_CertifyKey: "TPM_CertifyKey",
    TPM_ORD_CreateCounter: "TPM_CreateCounter",
    TPM_ORD_IncrementCounter: "TPM_IncrementCounter",
    TPM_ORD_ReadCounter: "TPM_ReadCounter",
    TPM_ORD_ReleaseCounter: "TPM_ReleaseCounter",
    TPM_ORD_NV_DefineSpace: "TPM_NV_DefineSpace",
    TPM_ORD_NV_WriteValue: "TPM_NV_WriteValue",
    TPM_ORD_NV_ReadValue: "TPM_NV_ReadValue",
    TPM_ORD_FlushSpecific: "TPM_FlushSpecific",
    TPM_ORD_MakeIdentity: "TPM_MakeIdentity",
    TPM_ORD_ActivateIdentity: "TPM_ActivateIdentity",
    TPM_ORD_ReadPubek: "TPM_ReadPubek",
    TPM_ORD_ChangeAuth: "TPM_ChangeAuth",
    TPM_ORD_CreateMigrationBlob: "TPM_CreateMigrationBlob",
    TPM_ORD_ConvertMigrationBlob: "TPM_ConvertMigrationBlob",
    TPM_ORD_DirWriteAuth: "TPM_DirWriteAuth",
    TPM_ORD_DirRead: "TPM_DirRead",
    TPM_ORD_GetTestResult: "TPM_GetTestResult",
}


def ordinal_name(ordinal: int) -> str:
    """Name for an ordinal, or a hex placeholder for unknown ones."""
    return ORDINAL_NAMES.get(ordinal, f"TPM_ORD_{ordinal:#010x}")


# -- startup types -------------------------------------------------------------
TPM_ST_CLEAR = 0x0001
TPM_ST_STATE = 0x0002
TPM_ST_DEACTIVATED = 0x0003

# -- entity types (OSAP) ---------------------------------------------------------
TPM_ET_KEYHANDLE = 0x0001
TPM_ET_OWNER = 0x0002
TPM_ET_SRK = 0x0004
TPM_ET_COUNTER = 0x000A
TPM_ET_NV = 0x000B

# -- resource types (FlushSpecific) ---------------------------------------------
TPM_RT_KEY = 0x00000001
TPM_RT_AUTH = 0x00000002
TPM_RT_COUNTER = 0x00000006

# -- key usage ------------------------------------------------------------------
TPM_KEY_SIGNING = 0x0010
TPM_KEY_STORAGE = 0x0011
TPM_KEY_IDENTITY = 0x0012
TPM_KEY_BIND = 0x0014
TPM_KEY_LEGACY = 0x0015

KEY_USAGE_NAMES = {
    TPM_KEY_SIGNING: "signing",
    TPM_KEY_STORAGE: "storage",
    TPM_KEY_IDENTITY: "identity",
    TPM_KEY_BIND: "bind",
    TPM_KEY_LEGACY: "legacy",
}

# -- signature / encryption schemes ----------------------------------------------
TPM_SS_RSASSAPKCS1v15_SHA1 = 0x0002
TPM_SS_RSASSAPKCS1v15_INFO = 0x0003
TPM_ES_RSAESPKCSv15 = 0x0002
TPM_ES_RSAESOAEP_SHA1_MGF1 = 0x0003

# -- algorithms -------------------------------------------------------------------
TPM_ALG_RSA = 0x00000001
TPM_ALG_SHA = 0x00000004
TPM_ALG_HMAC = 0x00000005

# -- capability areas (GetCapability subset) ---------------------------------------
TPM_CAP_PROPERTY = 0x00000005
TPM_CAP_PROP_PCR = 0x00000101
TPM_CAP_PROP_MANUFACTURER = 0x00000103
TPM_CAP_PROP_KEYS = 0x00000104
TPM_CAP_PROP_MAX_KEYS = 0x00000110
TPM_CAP_PROP_COUNTERS = 0x0000010C
TPM_CAP_VERSION = 0x00000006

# -- fixed handles ------------------------------------------------------------------
TPM_KH_SRK = 0x40000000
TPM_KH_OWNER = 0x40000001
TPM_KH_EK = 0x40000006

# -- platform constants ----------------------------------------------------------------
NUM_PCRS = 24
DIGEST_SIZE = 20
NONCE_SIZE = 20
AUTHDATA_SIZE = 20
MAX_KEY_SLOTS = 10        # loaded-key slots, matching common 1.2 parts
MAX_SESSIONS = 16
MAX_COUNTERS = 8
MAX_NV_SPACE = 2048       # bytes of NV data area
#: PCRs 16-23 are resettable from the right locality (debug/DRTM range)
RESETTABLE_PCR_FIRST = 16
WELL_KNOWN_SECRET = b"\x00" * AUTHDATA_SIZE
