"""TPM 1.2 wire-format framing: headers, auth trailers, param digests.

Both the device (:mod:`repro.tpm.dispatch`) and the guest-side client stack
(:mod:`repro.tpm.client`) build on these helpers, so the two sides cannot
drift apart on digest formulas.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.tpm.constants import (
    NONCE_SIZE,
    AUTHDATA_SIZE,
    TPM_BADTAG,
    TPM_TAG_RQU_AUTH1_COMMAND,
    TPM_TAG_RQU_COMMAND,
    TPM_TAG_RSP_AUTH1_COMMAND,
    TPM_TAG_RSP_COMMAND,
)
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import MarshalError, TpmError

HEADER_SIZE = 10  # tag(2) + paramSize(4) + ordinal/returnCode(4)


@dataclass(frozen=True, slots=True)
class AuthTrailer:
    """The AUTH1 trailer appended to an authorized command."""

    handle: int
    nonce_odd: bytes
    continue_session: bool
    auth_value: bytes

    SIZE = 4 + NONCE_SIZE + 1 + AUTHDATA_SIZE

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.u32(self.handle)
        w.raw(self.nonce_odd)
        w.u8(1 if self.continue_session else 0)
        w.raw(self.auth_value)
        return w.getvalue()

    @staticmethod
    def deserialize(reader: ByteReader) -> "AuthTrailer":
        handle = reader.u32()
        nonce_odd = reader.raw(NONCE_SIZE)
        continue_session = bool(reader.u8())
        auth_value = reader.raw(AUTHDATA_SIZE)
        return AuthTrailer(
            handle=handle,
            nonce_odd=nonce_odd,
            continue_session=continue_session,
            auth_value=auth_value,
        )


@dataclass(frozen=True, slots=True)
class ParsedCommand:
    """A TPM command pulled off the wire."""

    tag: int
    ordinal: int
    params: bytes
    auth: Optional[AuthTrailer]

    @property
    def is_authorized(self) -> bool:
        return self.auth is not None


def build_command(
    ordinal: int, params: bytes, auth: Optional[AuthTrailer] = None
) -> bytes:
    """Frame a command: header + params + optional AUTH1 trailer."""
    tag = TPM_TAG_RQU_AUTH1_COMMAND if auth else TPM_TAG_RQU_COMMAND
    trailer = auth.serialize() if auth else b""
    size = HEADER_SIZE + len(params) + len(trailer)
    w = ByteWriter()
    w.u16(tag)
    w.u32(size)
    w.u32(ordinal)
    w.raw(params)
    w.raw(trailer)
    return w.getvalue()


#: memoized parse results keyed by wire bytes.  ``parse_command`` is a pure,
#: charge-free function of the frame and ``ParsedCommand`` is deeply
#: immutable, so replaying a cached result is byte-identical and
#: virtual-time-neutral.  Real workloads re-issue identical frames heavily
#: (PCR reads, status polls), making this the single cheapest parse there
#: is: one dict probe.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_CAP = 4096


def parse_command(wire: bytes) -> ParsedCommand:
    """Parse a framed command, validating tag and length (memoized)."""
    cached = _PARSE_CACHE.get(wire)
    if cached is not None:
        return cached
    parsed = _parse_command_uncached(wire)
    if len(_PARSE_CACHE) >= _PARSE_CACHE_CAP:
        _PARSE_CACHE.clear()
    _PARSE_CACHE[wire] = parsed
    return parsed


def _parse_command_uncached(wire: bytes) -> ParsedCommand:
    r = ByteReader(wire)
    tag = r.u16()
    size = r.u32()
    if size != len(wire):
        raise MarshalError(f"paramSize {size} != frame length {len(wire)}")
    ordinal = r.u32()
    if tag == TPM_TAG_RQU_COMMAND:
        return ParsedCommand(tag=tag, ordinal=ordinal, params=r.rest(), auth=None)
    if tag == TPM_TAG_RQU_AUTH1_COMMAND:
        body = r.rest()
        if len(body) < AuthTrailer.SIZE:
            raise MarshalError("AUTH1 command too short for auth trailer")
        params, trailer_bytes = body[: -AuthTrailer.SIZE], body[-AuthTrailer.SIZE :]
        trailer_reader = ByteReader(trailer_bytes)
        auth = AuthTrailer.deserialize(trailer_reader)
        trailer_reader.expect_end()
        return ParsedCommand(tag=tag, ordinal=ordinal, params=params, auth=auth)
    raise TpmError(TPM_BADTAG, f"unsupported command tag {tag:#06x}")


def build_response(
    return_code: int,
    out_params: bytes = b"",
    nonce_even: Optional[bytes] = None,
    continue_session: bool = False,
    response_auth: Optional[bytes] = None,
) -> bytes:
    """Frame a response; auth fields present iff the command was AUTH1."""
    authed = nonce_even is not None
    tag = TPM_TAG_RSP_AUTH1_COMMAND if authed else TPM_TAG_RSP_COMMAND
    w = ByteWriter()
    trailer = b""
    if authed:
        t = ByteWriter()
        t.raw(nonce_even)
        t.u8(1 if continue_session else 0)
        t.raw(response_auth or b"\x00" * AUTHDATA_SIZE)
        trailer = t.getvalue()
    size = HEADER_SIZE + len(out_params) + len(trailer)
    w.u16(tag)
    w.u32(size)
    w.u32(return_code)
    w.raw(out_params)
    w.raw(trailer)
    return w.getvalue()


@dataclass(frozen=True, slots=True)
class ParsedResponse:
    """A TPM response pulled off the wire."""

    tag: int
    return_code: int
    params: bytes
    nonce_even: Optional[bytes]
    continue_session: bool
    response_auth: Optional[bytes]


def parse_response(wire: bytes) -> ParsedResponse:
    r = ByteReader(wire)
    tag = r.u16()
    size = r.u32()
    if size != len(wire):
        raise MarshalError(f"paramSize {size} != frame length {len(wire)}")
    return_code = r.u32()
    if tag == TPM_TAG_RSP_COMMAND:
        return ParsedResponse(
            tag=tag,
            return_code=return_code,
            params=r.rest(),
            nonce_even=None,
            continue_session=False,
            response_auth=None,
        )
    if tag == TPM_TAG_RSP_AUTH1_COMMAND:
        body = r.rest()
        trailer_size = NONCE_SIZE + 1 + AUTHDATA_SIZE
        if len(body) < trailer_size:
            raise MarshalError("AUTH1 response too short for auth trailer")
        params, trailer = body[:-trailer_size], body[-trailer_size:]
        tr = ByteReader(trailer)
        nonce_even = tr.raw(NONCE_SIZE)
        continue_session = bool(tr.u8())
        response_auth = tr.raw(AUTHDATA_SIZE)
        tr.expect_end()
        return ParsedResponse(
            tag=tag,
            return_code=return_code,
            params=params,
            nonce_even=nonce_even,
            continue_session=continue_session,
            response_auth=response_auth,
        )
    raise TpmError(TPM_BADTAG, f"unsupported response tag {tag:#06x}")


def command_param_digest(ordinal: int, params: bytes) -> bytes:
    """1H1 inParamDigest = SHA1(ordinal || params).

    Computed with plain hashlib: both sides charge the explicit auth-HMAC
    costs separately, and the digest itself is part of those code paths.
    """
    return hashlib.sha1(ordinal.to_bytes(4, "big") + params).digest()


def response_param_digest(return_code: int, ordinal: int, out_params: bytes) -> bytes:
    """1H1 outParamDigest = SHA1(returnCode || ordinal || outParams)."""
    return hashlib.sha1(
        return_code.to_bytes(4, "big") + ordinal.to_bytes(4, "big") + out_params
    ).digest()
