"""Command dispatch: the TPM's top half.

Parses framed commands, routes them to handlers registered by the modules
in :mod:`repro.tpm.commands`, runs the 1H1 authorization protocol, and
frames responses.  Errors surface exactly as a hardware part would surface
them: a response frame carrying the TPM result code, never a Python
exception across the wire boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_SPAN
from repro.sim.timing import charge
from repro.tpm import marshal
from repro.tpm.constants import (
    TPM_BAD_ORDINAL,
    TPM_AUTHFAIL,
    TPM_FAIL,
    TPM_INVALID_POSTINIT,
    TPM_ORD_Startup,
    TPM_SUCCESS,
    ordinal_name,
)
from repro.tpm.marshal import AuthTrailer, ParsedCommand
from repro.tpm.sessions import AuthSession, compute_auth
from repro.tpm.state import TpmState
from repro.util.bytesio import ByteReader
from repro.util.errors import MarshalError, TpmError

Handler = Callable[["CommandContext"], bytes]

_HANDLERS: Dict[int, Handler] = {}


def handler(ordinal: int) -> Callable[[Handler], Handler]:
    """Register a command handler for an ordinal (module-import time)."""

    def register(fn: Handler) -> Handler:
        if ordinal in _HANDLERS:
            raise ValueError(f"duplicate handler for {ordinal_name(ordinal)}")
        _HANDLERS[ordinal] = fn
        return fn

    return register


@dataclass(slots=True)
class CommandContext:
    """Everything a command handler needs."""

    state: TpmState
    ordinal: int
    reader: ByteReader
    auth: Optional[AuthTrailer]
    locality: int = 0
    # Filled in by verify_auth(); used to build the response trailer.
    _session: Optional[AuthSession] = None
    _hmac_key: bytes = b""
    _new_nonce_even: Optional[bytes] = None
    _continue: bool = False
    _param_digest: bytes = b""

    def require_auth(self) -> AuthTrailer:
        """Handlers call this for ordinals that demand an AUTH1 trailer."""
        if self.auth is None:
            raise TpmError(TPM_AUTHFAIL, f"{ordinal_name(self.ordinal)} requires auth")
        return self.auth

    def verify_auth(self, entity_secret: bytes) -> AuthSession:
        """Run the 1H1 verification against ``entity_secret``.

        Must be called exactly once by authorized handlers, *after* the
        handler has located the entity (so it knows which secret applies)
        but *before* mutating state.
        """
        trailer = self.require_auth()
        session = self.state.sessions.get(trailer.handle)
        self._hmac_key = session.hmac_key(entity_secret)
        self._new_nonce_even = self.state.sessions.verify_and_roll(
            session=session,
            entity_secret=entity_secret,
            param_digest=self._param_digest,
            nonce_odd=trailer.nonce_odd,
            continue_session=trailer.continue_session,
            presented_auth=trailer.auth_value,
        )
        self._session = session
        self._continue = trailer.continue_session
        return session


class TpmExecutor:
    """Executes framed TPM commands against a :class:`TpmState`."""

    def __init__(self, state: TpmState) -> None:
        self.state = state
        self.commands_executed = 0
        self.failures = 0

    def execute(
        self,
        wire: bytes,
        locality: int = 0,
        parsed: Optional[ParsedCommand] = None,
    ) -> bytes:
        """One command in, one response out.  Never raises for TPM errors.

        When a layer above already parsed the frame (the access-control
        monitor does, to classify the ordinal), it hands the result down via
        ``parsed`` and the frame is not re-parsed here.
        """
        charge("tpm.cmd.base")
        tracer = obs_trace._current_tracer
        if parsed is None:
            span = (
                NULL_SPAN if tracer is None else tracer.start_span("parse")
            )
            with span:
                try:
                    parsed = marshal.parse_command(wire)
                except (MarshalError, TpmError) as exc:
                    self.failures += 1
                    code = exc.code if isinstance(exc, TpmError) else TPM_FAIL
                    return marshal.build_response(code)
        self.commands_executed += 1
        if tracer is None:
            return self._run(parsed, locality)
        with tracer.start_span(
            "tpm.execute", {"ordinal": ordinal_name(parsed.ordinal)}
        ):
            return self._run(parsed, locality)

    def _run(self, parsed: ParsedCommand, locality: int) -> bytes:
        fn = _HANDLERS.get(parsed.ordinal)
        if fn is None:
            self.failures += 1
            return marshal.build_response(TPM_BAD_ORDINAL)
        if not self.state.flags.started and parsed.ordinal != TPM_ORD_Startup:
            self.failures += 1
            return marshal.build_response(TPM_INVALID_POSTINIT)
        # The 1H1 param digest is consumed only by verify_auth(), which is
        # unreachable without an auth trailer — so unauthorized commands
        # (the fast-path bulk) skip the hash entirely.  The digest helper
        # charges nothing, so skipping it is virtual-time-neutral.
        ctx = CommandContext(
            state=self.state,
            ordinal=parsed.ordinal,
            reader=ByteReader(parsed.params),
            auth=parsed.auth,
            locality=locality,
            _param_digest=(
                marshal.command_param_digest(parsed.ordinal, parsed.params)
                if parsed.auth is not None else b""
            ),
        )
        try:
            out_params = fn(ctx)
        except TpmError as exc:
            self.failures += 1
            return marshal.build_response(exc.code)
        except MarshalError:
            self.failures += 1
            from repro.tpm.constants import TPM_BAD_PARAMETER

            return marshal.build_response(TPM_BAD_PARAMETER)
        if ctx._session is not None and ctx._new_nonce_even is not None:
            out_digest = marshal.response_param_digest(
                TPM_SUCCESS, parsed.ordinal, out_params
            )
            response_auth = compute_auth(
                ctx._hmac_key,
                out_digest,
                ctx._new_nonce_even,
                parsed.auth.nonce_odd,
                ctx._continue,
            )
            return marshal.build_response(
                TPM_SUCCESS,
                out_params,
                nonce_even=ctx._new_nonce_even,
                continue_session=ctx._continue,
                response_auth=response_auth,
            )
        return marshal.build_response(TPM_SUCCESS, out_params)


def registered_ordinals() -> frozenset[int]:
    """All ordinals with handlers (import side effect of the commands pkg)."""
    return frozenset(_HANDLERS)


# Importing the command modules registers every handler.  Done at the bottom
# so the decorator and context classes above already exist.
from repro.tpm.commands import (  # noqa: E402  (import-time registration)
    admin,
    counter_cmds,
    maintenance,
    nv_cmds,
    ownership,
    pcr_cmds,
    signing,
    storage,
)

__all__ = [
    "CommandContext",
    "TpmExecutor",
    "handler",
    "registered_ordinals",
]
