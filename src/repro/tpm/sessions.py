"""OIAP/OSAP authorization sessions.

TPM 1.2 proves knowledge of an entity's AuthData without sending it:
each authorized command carries ``HMAC(secret, paramDigest || nonceEven ||
nonceOdd || continueAuthSession)`` over rolling nonces (the 1.2 "1H1"
protocol).  OIAP sessions authorize any entity with its own secret; OSAP
sessions bind to one entity and HMAC with a *shared secret* derived from
the entity secret and the OSAP nonces, which is what TPM_Seal requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crypto.hmac_util import constant_time_equal, hmac_sha1
from repro.crypto.random_source import RandomSource
from repro.tpm.constants import (
    MAX_SESSIONS,
    NONCE_SIZE,
    TPM_AUTHFAIL,
    TPM_INVALID_AUTHHANDLE,
    TPM_RESOURCES,
)
from repro.util.errors import TpmError


@dataclass
class AuthSession:
    """A live authorization session inside the TPM."""

    handle: int
    kind: str                 # "oiap" | "osap"
    nonce_even: bytes         # TPM-generated, rolls every use
    entity_type: int = 0      # OSAP only
    entity_value: int = 0     # OSAP only
    shared_secret: bytes = b""  # OSAP only

    def hmac_key(self, entity_secret: bytes) -> bytes:
        """The key used for auth HMACs on this session."""
        return self.shared_secret if self.kind == "osap" else entity_secret


def osap_shared_secret(
    entity_secret: bytes, nonce_even_osap: bytes, nonce_odd_osap: bytes
) -> bytes:
    """OSAP shared secret: HMAC(entitySecret, nonceEvenOSAP || nonceOddOSAP)."""
    return hmac_sha1(entity_secret, nonce_even_osap + nonce_odd_osap)


def compute_auth(
    hmac_key: bytes,
    param_digest: bytes,
    nonce_even: bytes,
    nonce_odd: bytes,
    continue_session: bool,
) -> bytes:
    """The 1H1 authorization HMAC (same formula on both sides of the wire)."""
    return hmac_sha1(
        hmac_key,
        param_digest + nonce_even + nonce_odd + bytes([1 if continue_session else 0]),
    )


class SessionTable:
    """All live auth sessions of one TPM."""

    _FIRST_HANDLE = 0x02000000

    def __init__(self, rng: RandomSource, max_sessions: int = MAX_SESSIONS) -> None:
        self._rng = rng
        self.max_sessions = max_sessions
        self._sessions: Dict[int, AuthSession] = {}
        self._next_handle = self._FIRST_HANDLE

    def _new_handle(self) -> int:
        handle = self._next_handle
        self._next_handle += 1
        return handle

    def open_oiap(self) -> AuthSession:
        if len(self._sessions) >= self.max_sessions:
            raise TpmError(TPM_RESOURCES, "no free auth sessions")
        session = AuthSession(
            handle=self._new_handle(), kind="oiap", nonce_even=self._rng.nonce()
        )
        self._sessions[session.handle] = session
        return session

    def open_osap(
        self,
        entity_type: int,
        entity_value: int,
        entity_secret: bytes,
        nonce_odd_osap: bytes,
    ) -> tuple[AuthSession, bytes]:
        """Open an OSAP session; returns (session, nonceEvenOSAP)."""
        if len(self._sessions) >= self.max_sessions:
            raise TpmError(TPM_RESOURCES, "no free auth sessions")
        if len(nonce_odd_osap) != NONCE_SIZE:
            raise TpmError(TPM_AUTHFAIL, "bad OSAP nonce size")
        nonce_even_osap = self._rng.nonce()
        session = AuthSession(
            handle=self._new_handle(),
            kind="osap",
            nonce_even=self._rng.nonce(),
            entity_type=entity_type,
            entity_value=entity_value,
            shared_secret=osap_shared_secret(
                entity_secret, nonce_even_osap, nonce_odd_osap
            ),
        )
        self._sessions[session.handle] = session
        return session, nonce_even_osap

    def get(self, handle: int) -> AuthSession:
        try:
            return self._sessions[handle]
        except KeyError:
            raise TpmError(
                TPM_INVALID_AUTHHANDLE, f"no auth session {handle:#x}"
            ) from None

    def verify_and_roll(
        self,
        session: AuthSession,
        entity_secret: bytes,
        param_digest: bytes,
        nonce_odd: bytes,
        continue_session: bool,
        presented_auth: bytes,
    ) -> bytes:
        """Verify a command auth trailer; on success roll nonceEven.

        Returns the *new* nonceEven for the response trailer.  On failure the
        session is terminated (as the spec requires) and TPM_AUTHFAIL raised.
        """
        expected = compute_auth(
            session.hmac_key(entity_secret),
            param_digest,
            session.nonce_even,
            nonce_odd,
            continue_session,
        )
        if not constant_time_equal(expected, presented_auth):
            self.close(session.handle)
            raise TpmError(TPM_AUTHFAIL, "authorization HMAC mismatch")
        new_even = self._rng.nonce()
        session.nonce_even = new_even
        if not continue_session:
            self.close(session.handle)
        return new_even

    def close(self, handle: int) -> None:
        self._sessions.pop(handle, None)

    def flush_all(self) -> None:
        self._sessions.clear()

    @property
    def open_count(self) -> int:
        return len(self._sessions)
