"""Platform Configuration Registers.

A TPM 1.2 bank of 24 SHA-1 PCRs.  ``extend`` is the one-way accumulator
``PCR := SHA1(PCR || measurement)``; PCRs 16-23 are resettable given
sufficient locality (the DRTM/debug range), the rest only reset at startup.

Also implements TPM_PCR_SELECTION / TPM_PCR_COMPOSITE hashing, which seals,
quotes and key PCR-bindings all rely on.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.crypto.hashes import sha1
from repro.sim.timing import charge
from repro.tpm.constants import (
    DIGEST_SIZE,
    NUM_PCRS,
    RESETTABLE_PCR_FIRST,
    TPM_BADINDEX,
    TPM_NOTLOCAL,
    TPM_NOTRESETABLE,
)
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import TpmError


class PcrSelection:
    """TPM_PCR_SELECTION: a bitmap naming a subset of PCRs."""

    def __init__(self, indices: Iterable[int] = ()) -> None:
        self._mask = 0
        for idx in indices:
            if not 0 <= idx < NUM_PCRS:
                raise TpmError(TPM_BADINDEX, f"PCR index {idx} out of range")
            self._mask |= 1 << idx

    @property
    def indices(self) -> list[int]:
        return [i for i in range(NUM_PCRS) if self._mask & (1 << i)]

    def __contains__(self, idx: int) -> bool:
        return bool(self._mask & (1 << idx))

    def __bool__(self) -> bool:
        return self._mask != 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PcrSelection) and self._mask == other._mask

    def __hash__(self) -> int:
        return hash(self._mask)

    def serialize(self) -> bytes:
        w = ByteWriter()
        size = NUM_PCRS // 8
        w.u16(size)
        w.raw(self._mask.to_bytes(size, "little"))  # spec: byte 0 holds PCR 0-7
        return w.getvalue()

    @staticmethod
    def deserialize(reader: ByteReader) -> "PcrSelection":
        size = reader.u16()
        if size > NUM_PCRS // 8:
            raise TpmError(TPM_BADINDEX, f"pcrSelection of {size} bytes too large")
        mask = int.from_bytes(reader.raw(size), "little")
        sel = PcrSelection()
        sel._mask = mask
        return sel

    def __repr__(self) -> str:
        return f"PcrSelection({self.indices})"


class PcrBank:
    """The 24-register SHA-1 PCR bank."""

    def __init__(self) -> None:
        self._values = [b"\x00" * DIGEST_SIZE for _ in range(NUM_PCRS)]

    def startup_clear(self) -> None:
        """TPM_Startup(ST_CLEAR): all PCRs to zero."""
        self._values = [b"\x00" * DIGEST_SIZE for _ in range(NUM_PCRS)]

    def read(self, index: int) -> bytes:
        self._check_index(index)
        return self._values[index]

    def extend(self, index: int, measurement: bytes) -> bytes:
        """``PCR[i] := SHA1(PCR[i] || measurement)``; returns the new value."""
        self._check_index(index)
        if len(measurement) != DIGEST_SIZE:
            raise TpmError(
                TPM_BADINDEX, f"extend value must be {DIGEST_SIZE} bytes"
            )
        charge("tpm.pcr.extend")
        self._values[index] = sha1(self._values[index] + measurement)
        return self._values[index]

    def reset(self, index: int, locality: int) -> None:
        """Reset a resettable PCR; locality ≥ 2 required (simplified DRTM rule)."""
        self._check_index(index)
        if index < RESETTABLE_PCR_FIRST:
            raise TpmError(TPM_NOTRESETABLE, f"PCR {index} is not resettable")
        if locality < 2:
            raise TpmError(TPM_NOTLOCAL, f"locality {locality} may not reset PCR {index}")
        self._values[index] = b"\x00" * DIGEST_SIZE

    def snapshot(self) -> list[bytes]:
        """All PCR values (copies) — used by state serialization."""
        return list(self._values)

    def restore(self, values: Sequence[bytes]) -> None:
        if len(values) != NUM_PCRS:
            raise TpmError(TPM_BADINDEX, f"expected {NUM_PCRS} PCR values")
        for v in values:
            if len(v) != DIGEST_SIZE:
                raise TpmError(TPM_BADINDEX, "bad PCR value length")
        self._values = [bytes(v) for v in values]

    def composite_digest(self, selection: PcrSelection) -> bytes:
        """SHA-1 of TPM_PCR_COMPOSITE over the selected registers.

        This digest is what gets baked into sealed blobs, key PCR bindings
        and quote payloads, so it must be stable across serialize cycles.
        """
        values = b"".join(self._values[i] for i in selection.indices)
        composite = selection.serialize() + ByteWriter().u32(len(values)).getvalue() + values
        return sha1(composite)

    @staticmethod
    def composite_of(selection: PcrSelection, values: Sequence[bytes]) -> bytes:
        """Composite digest over explicit values (verifier side, no bank)."""
        if len(values) != len(selection.indices):
            raise TpmError(TPM_BADINDEX, "value count != selection count")
        blob = b"".join(values)
        composite = selection.serialize() + ByteWriter().u32(len(blob)).getvalue() + blob
        # Verifier-side hash: plain hashlib, no virtual-time charge, because
        # it runs on the *challenger*, not inside the TPM.
        return hashlib.sha1(composite).digest()

    @staticmethod
    def _check_index(index: int) -> None:
        if not 0 <= index < NUM_PCRS:
            raise TpmError(TPM_BADINDEX, f"PCR index {index} out of range")
