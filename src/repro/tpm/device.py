"""The TPM device: state + executor + lifecycle.

One :class:`TpmDevice` models either the platform's hardware TPM or the
engine inside a vTPM instance (the vTPM manager holds one per guest).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.random_source import RandomSource
from repro.faults import FaultKind, fire
from repro.sim.timing import charge
from repro.tpm.constants import TPM_ST_CLEAR, TPM_ST_STATE
from repro.tpm.dispatch import TpmExecutor
from repro.tpm.marshal import build_command
from repro.tpm.state import DEFAULT_KEY_BITS, TpmState
from repro.util.bytesio import ByteWriter
from repro.util.errors import TpmError


class TpmDevice:
    """A complete TPM 1.2 part with a bytes-in/bytes-out command interface."""

    def __init__(
        self,
        rng: RandomSource,
        key_bits: int = DEFAULT_KEY_BITS,
        name: str = "tpm0",
        nv_capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.state = TpmState(rng, key_bits=key_bits, nv_capacity=nv_capacity)
        self.executor = TpmExecutor(self.state)
        self.powered = False

    # -- lifecycle ------------------------------------------------------------

    def power_on(self, startup_type: int = TPM_ST_CLEAR) -> None:
        """_TPM_Init followed by TPM_Startup."""
        self.powered = True
        self.state.flags.started = False
        self.state.flags.post_initialized = True
        params = ByteWriter().u16(startup_type).getvalue()
        response = self.execute(build_command(0x99, params))
        from repro.tpm.marshal import parse_response

        parsed = parse_response(response)
        if parsed.return_code != 0:
            raise TpmError(parsed.return_code, "TPM_Startup failed during power_on")

    def execute(self, wire: bytes, locality: int = 0, parsed=None) -> bytes:
        """Run one framed command; the device never raises for TPM errors.

        The fault injector can abort the command *before* it reaches the
        executor — a transient bus/LPC error.  The command has no effect
        on TPM state, so the retry layers above can safely resend the same
        wire bytes.  ``parsed`` optionally carries an already-parsed frame
        down to the executor (parse-once fast path).
        """
        event = fire("tpm.device.execute", device=self.name)
        if event is not None and event.kind is FaultKind.DEVICE_TRANSIENT:
            charge("fault.device.transient")
            event.raise_fault()
        if event is not None and event.kind is FaultKind.WEDGE:
            # A wedged part hangs for a driver-timeout-class stall before the
            # bus transaction aborts — far costlier than a transient blip, and
            # scheduled consecutively it exhausts the caller's retry budget.
            charge("fault.device.wedge")
            event.raise_fault()
        if not self.powered:
            # An unpowered part does not answer at all; model as IO error frame.
            from repro.tpm.constants import TPM_IOERROR
            from repro.tpm.marshal import build_response

            return build_response(TPM_IOERROR)
        return self.executor.execute(wire, locality=locality, parsed=parsed)

    # -- persistence ------------------------------------------------------------

    def save_state_blob(self, include_volatile: bool = True) -> bytes:
        """Serialize the full device state (cleartext — protect it!)."""
        return self.state.serialize(include_volatile=include_volatile)

    @classmethod
    def from_state_blob(
        cls,
        blob: bytes,
        rng: Optional[RandomSource] = None,
        name: str = "tpm0",
    ) -> "TpmDevice":
        """Rebuild a device from a saved blob and resume with ST_STATE."""
        device = cls.__new__(cls)
        device.name = name
        device.state = TpmState.deserialize(blob, rng=rng)
        device.executor = TpmExecutor(device.state)
        device.powered = False
        device.power_on(startup_type=TPM_ST_STATE)
        return device
