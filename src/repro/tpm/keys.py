"""Loaded-key management: the TPM's volatile key slots.

A TPM 1.2 part has a small number of internal key slots; TPM_LoadKey2
decrypts a wrapped blob into a slot and hands back a handle, and
TPM_FlushSpecific evicts.  The SRK and EK are permanent residents with
well-known handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.rsa import RsaKeyPair
from repro.tpm.constants import (
    MAX_KEY_SLOTS,
    TPM_INVALID_KEYHANDLE,
    TPM_KH_EK,
    TPM_KH_SRK,
    TPM_KEY_IDENTITY,
    TPM_KEY_SIGNING,
    TPM_KEY_STORAGE,
    TPM_RESOURCES,
)
from repro.tpm.structures import TpmPcrInfo
from repro.util.errors import TpmError


@dataclass
class LoadedKey:
    """A key resident in a TPM slot."""

    handle: int
    usage: int
    keypair: RsaKeyPair
    usage_auth: bytes
    migration_auth: bytes
    pcr_info: Optional[TpmPcrInfo] = None
    parent_handle: int = TPM_KH_SRK

    @property
    def can_sign(self) -> bool:
        return self.usage in (TPM_KEY_SIGNING, TPM_KEY_IDENTITY)

    @property
    def can_store(self) -> bool:
        return self.usage == TPM_KEY_STORAGE


class KeySlots:
    """Handle table for volatile loaded keys plus the permanent SRK/EK."""

    _FIRST_HANDLE = 0x01000000

    def __init__(self, max_slots: int = MAX_KEY_SLOTS) -> None:
        self.max_slots = max_slots
        self._slots: Dict[int, LoadedKey] = {}
        self._next_handle = self._FIRST_HANDLE
        self._srk: Optional[LoadedKey] = None
        self._ek: Optional[LoadedKey] = None

    # -- permanent keys -----------------------------------------------------

    def install_srk(self, key: LoadedKey) -> None:
        key.handle = TPM_KH_SRK
        self._srk = key

    def install_ek(self, key: LoadedKey) -> None:
        key.handle = TPM_KH_EK
        self._ek = key

    def clear_srk(self) -> None:
        self._srk = None

    @property
    def srk(self) -> Optional[LoadedKey]:
        return self._srk

    @property
    def ek(self) -> Optional[LoadedKey]:
        return self._ek

    # -- volatile slots -----------------------------------------------------

    def load(self, key: LoadedKey) -> int:
        """Place a key into a free slot; returns its new handle."""
        if len(self._slots) >= self.max_slots:
            raise TpmError(TPM_RESOURCES, "no free key slots")
        handle = self._next_handle
        self._next_handle += 1
        key.handle = handle
        self._slots[handle] = key
        return handle

    def get(self, handle: int) -> LoadedKey:
        """Resolve a handle (including the permanent SRK/EK handles)."""
        if handle == TPM_KH_SRK:
            if self._srk is None:
                raise TpmError(TPM_INVALID_KEYHANDLE, "no SRK (take ownership first)")
            return self._srk
        if handle == TPM_KH_EK:
            if self._ek is None:
                raise TpmError(TPM_INVALID_KEYHANDLE, "no EK")
            return self._ek
        try:
            return self._slots[handle]
        except KeyError:
            raise TpmError(
                TPM_INVALID_KEYHANDLE, f"no loaded key at handle {handle:#x}"
            ) from None

    def evict(self, handle: int) -> None:
        if handle in (TPM_KH_SRK, TPM_KH_EK):
            raise TpmError(TPM_INVALID_KEYHANDLE, "cannot evict permanent keys")
        if handle not in self._slots:
            raise TpmError(TPM_INVALID_KEYHANDLE, f"no loaded key at {handle:#x}")
        del self._slots[handle]

    def evict_all(self) -> None:
        """Volatile keys vanish at TPM_Startup(ST_CLEAR)."""
        self._slots.clear()

    @property
    def loaded_count(self) -> int:
        return len(self._slots)

    def handles(self) -> list[int]:
        return sorted(self._slots)

    def loaded_keys(self) -> list[LoadedKey]:
        """All volatile keys (state serialization / secret scanning)."""
        return [self._slots[h] for h in sorted(self._slots)]
