"""Non-volatile storage (TPM_NV_*).

A small authenticated data area indexed by 32-bit NV indices, each with
owner-defined size, optional per-area auth, optional PCR binding and
write-once locking.  vTPM instances use NV areas for guest configuration
blobs; the attack experiments use them as the canonical "secret at rest".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.timing import charge
from repro.tpm.constants import (
    MAX_NV_SPACE,
    TPM_AREA_LOCKED,
    TPM_BADINDEX,
    TPM_BAD_DATASIZE,
    TPM_NOSPACE,
    TPM_NOT_FULLWRITE,
)
from repro.tpm.structures import TpmPcrInfo
from repro.util.errors import TpmError

#: permission attribute bits (subset of TPM_NV_PER_*)
NV_PER_OWNERWRITE = 0x00000002
NV_PER_AUTHWRITE = 0x00000004
NV_PER_WRITEDEFINE = 0x00002000  # lock on a size-0 write
NV_PER_AUTHREAD = 0x00040000
NV_PER_OWNERREAD = 0x00020000


@dataclass
class NvArea:
    """One defined NV index."""

    index: int
    size: int
    permissions: int
    auth: bytes
    pcr_info: Optional[TpmPcrInfo] = None
    data: bytes = b""
    write_locked: bool = False

    def __post_init__(self) -> None:
        if not self.data:
            self.data = b"\xff" * self.size  # erased-flash convention


class NvStorage:
    """The NV index space of one TPM."""

    def __init__(self, capacity: int = MAX_NV_SPACE) -> None:
        self.capacity = capacity
        self._areas: Dict[int, NvArea] = {}

    @property
    def used(self) -> int:
        return sum(a.size for a in self._areas.values())

    def define(
        self,
        index: int,
        size: int,
        permissions: int,
        auth: bytes,
        pcr_info: Optional[TpmPcrInfo] = None,
    ) -> NvArea:
        """TPM_NV_DefineSpace; size 0 deletes an existing index."""
        charge("tpm.nv.access")
        if index == 0:
            raise TpmError(TPM_BADINDEX, "NV index 0 is reserved")
        if size == 0:
            if index not in self._areas:
                raise TpmError(TPM_BADINDEX, f"NV index {index:#x} not defined")
            del self._areas[index]
            return NvArea(index=index, size=0, permissions=0, auth=b"")
        if index in self._areas:
            raise TpmError(TPM_BADINDEX, f"NV index {index:#x} already defined")
        if self.used + size > self.capacity:
            raise TpmError(
                TPM_NOSPACE,
                f"NV full: {self.used}+{size} exceeds {self.capacity} bytes",
            )
        area = NvArea(
            index=index, size=size, permissions=permissions, auth=auth, pcr_info=pcr_info
        )
        self._areas[index] = area
        return area

    def get(self, index: int) -> NvArea:
        try:
            return self._areas[index]
        except KeyError:
            raise TpmError(TPM_BADINDEX, f"NV index {index:#x} not defined") from None

    def write(self, index: int, offset: int, data: bytes) -> None:
        """TPM_NV_WriteValue (auth checked by the command layer)."""
        charge("tpm.nv.access")
        area = self.get(index)
        if area.write_locked:
            raise TpmError(TPM_AREA_LOCKED, f"NV index {index:#x} is write-locked")
        if len(data) == 0 and area.permissions & NV_PER_WRITEDEFINE:
            area.write_locked = True
            return
        if offset < 0 or offset + len(data) > area.size:
            raise TpmError(
                TPM_BAD_DATASIZE,
                f"write of {len(data)} at {offset} exceeds area size {area.size}",
            )
        buf = bytearray(area.data)
        buf[offset : offset + len(data)] = data
        area.data = bytes(buf)

    def read(self, index: int, offset: int, size: int) -> bytes:
        """TPM_NV_ReadValue (auth checked by the command layer)."""
        charge("tpm.nv.access")
        area = self.get(index)
        if offset < 0 or offset + size > area.size:
            raise TpmError(
                TPM_NOT_FULLWRITE,
                f"read of {size} at {offset} exceeds area size {area.size}",
            )
        return area.data[offset : offset + size]

    def indices(self) -> list[int]:
        return sorted(self._areas)

    def areas(self) -> list[NvArea]:
        return [self._areas[i] for i in sorted(self._areas)]
