"""Complete TPM state: flags, hierarchy, PCRs, NV, counters.

One :class:`TpmState` is the durable soul of a TPM — the hardware TPM has
exactly one; every vTPM instance owns one.  It serializes to a
self-contained blob for persistence and live migration.  The serialized
form deliberately contains the private key material in cleartext: *the
whole point of the paper* is that this blob must never live in dumpable
memory or on disk unencrypted, which is what the access-control layer's
protected placement and sealed storage enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaKeyPair, generate_keypair
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    TPM_KEY_STORAGE,
    TPM_KH_SRK,
    WELL_KNOWN_SECRET,
)
from repro.tpm.counters import Counter, CounterTable
from repro.tpm.keys import KeySlots, LoadedKey
from repro.tpm.nvram import NvArea, NvStorage
from repro.tpm.pcr import PcrBank
from repro.tpm.sessions import SessionTable
from repro.tpm.structures import TpmPcrInfo
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import MarshalError

STATE_MAGIC = b"VTPMST01"

#: default modulus size for EK/SRK; tests shrink this for host speed while
#: virtual-time charges stay at the declared class.
DEFAULT_KEY_BITS = 1024


@dataclass
class PermanentFlags:
    """Subset of TPM_PERMANENT_FLAGS the reproduction exercises."""

    owned: bool = False
    disabled: bool = False
    deactivated: bool = False
    started: bool = False
    post_initialized: bool = True  # between _TPM_Init and TPM_Startup


class TpmState:
    """All durable and volatile state of one TPM instance."""

    def __init__(
        self,
        rng: RandomSource,
        key_bits: int = DEFAULT_KEY_BITS,
        nv_capacity: Optional[int] = None,
    ) -> None:
        self.rng = rng
        self.key_bits = key_bits
        self.flags = PermanentFlags()
        self.owner_auth: bytes = WELL_KNOWN_SECRET
        self.tpm_proof: bytes = rng.bytes(AUTHDATA_SIZE)
        #: the single TPM 1.1-era Data Integrity Register
        self.dir_register: bytes = b"\x00" * 20
        self.pcrs = PcrBank()
        self.nv = NvStorage() if nv_capacity is None else NvStorage(capacity=nv_capacity)
        self.counters = CounterTable()
        self.keys = KeySlots()
        self.sessions = SessionTable(rng)
        # The endorsement key exists from manufacture.
        ek_pair = generate_keypair(key_bits, rng)
        self.keys.install_ek(
            LoadedKey(
                handle=0,
                usage=TPM_KEY_STORAGE,
                keypair=ek_pair,
                usage_auth=WELL_KNOWN_SECRET,
                migration_auth=self.tpm_proof,
            )
        )

    # -- ownership ------------------------------------------------------------

    def install_owner(self, owner_auth: bytes, srk_auth: bytes) -> None:
        """TakeOwnership: set owner secret, generate the SRK."""
        srk_pair = generate_keypair(self.key_bits, self.rng)
        self.owner_auth = owner_auth
        self.keys.install_srk(
            LoadedKey(
                handle=TPM_KH_SRK,
                usage=TPM_KEY_STORAGE,
                keypair=srk_pair,
                usage_auth=srk_auth,
                migration_auth=self.tpm_proof,
            )
        )
        self.flags.owned = True

    def clear_owner(self) -> None:
        """OwnerClear: drop owner auth, SRK and all owner-rooted state."""
        self.owner_auth = WELL_KNOWN_SECRET
        self.keys.clear_srk()
        self.keys.evict_all()
        self.sessions.flush_all()
        self.flags.owned = False

    # -- secret inventory -------------------------------------------------------

    def secret_material(self) -> list[bytes]:
        """Every secret byte-string this TPM holds (attack-scanner oracle).

        Used by the security experiments to check whether a memory/disk
        image leaks: the attack succeeds iff any of these appears in the
        captured image.
        """
        secrets: list[bytes] = [self.owner_auth, self.tpm_proof]
        ek = self.keys.ek
        if ek is not None:
            secrets.append(ek.keypair.serialize_private())
        srk = self.keys.srk
        if srk is not None:
            secrets.append(srk.keypair.serialize_private())
        for key in self.keys.loaded_keys():
            secrets.append(key.keypair.serialize_private())
            secrets.append(key.usage_auth)
        for area in self.nv.areas():
            if area.auth != WELL_KNOWN_SECRET:
                secrets.append(area.auth)
            secrets.append(area.data)
        return [s for s in secrets if s and s != WELL_KNOWN_SECRET]

    # -- serialization ------------------------------------------------------------

    def serialize(self, include_volatile: bool = True) -> bytes:
        """Full state blob (cleartext!) for persistence and migration."""
        w = ByteWriter()
        w.raw(STATE_MAGIC)
        w.u32(self.key_bits)
        w.u32(self.nv.capacity)
        w.u8(1 if self.flags.owned else 0)
        w.u8(1 if self.flags.disabled else 0)
        w.u8(1 if self.flags.deactivated else 0)
        w.u8(1 if self.flags.started else 0)
        w.raw(self.owner_auth)
        w.raw(self.tpm_proof)
        w.raw(self.dir_register)
        # EK
        ek = self.keys.ek
        w.sized(ek.keypair.serialize_private() if ek else b"")
        # SRK
        srk = self.keys.srk
        if srk is not None:
            w.u8(1)
            w.sized(srk.keypair.serialize_private())
            w.raw(srk.usage_auth)
        else:
            w.u8(0)
        # PCRs
        for value in self.pcrs.snapshot():
            w.raw(value)
        # NV areas
        areas = self.nv.areas()
        w.u32(len(areas))
        for area in areas:
            w.u32(area.index)
            w.u32(area.size)
            w.u32(area.permissions)
            w.raw(area.auth)
            w.u8(1 if area.write_locked else 0)
            if area.pcr_info is not None:
                blob = area.pcr_info.serialize()
                w.u32(len(blob))
                w.raw(blob)
            else:
                w.u32(0)
            w.sized(area.data)
        # Counters
        counters = self.counters.counters()
        w.u32(len(counters))
        for counter in counters:
            w.u32(counter.handle)
            w.raw(counter.label)
            w.u64(counter.value)
            w.raw(counter.auth)
        w.u64(self.counters._high_water)
        # Volatile loaded keys (migrated with the instance)
        if include_volatile:
            loaded = self.keys.loaded_keys()
            w.u32(len(loaded))
            for key in loaded:
                w.u32(key.handle)
                w.u16(key.usage)
                w.sized(key.keypair.serialize_private())
                w.raw(key.usage_auth)
                w.raw(key.migration_auth)
                w.u32(key.parent_handle)
                if key.pcr_info is not None:
                    blob = key.pcr_info.serialize()
                    w.u32(len(blob))
                    w.raw(blob)
                else:
                    w.u32(0)
        else:
            w.u32(0)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes, rng: Optional[RandomSource] = None) -> "TpmState":
        """Rebuild a TPM from a state blob.

        ``rng`` seeds the *future* randomness of the restored instance; the
        default derives one from the blob so restore is deterministic.
        """
        r = ByteReader(data)
        if r.raw(len(STATE_MAGIC)) != STATE_MAGIC:
            raise MarshalError("not a TPM state blob")
        key_bits = r.u32()
        nv_capacity = r.u32()
        state = TpmState.__new__(TpmState)
        state.rng = rng or RandomSource(data[:64])
        state.key_bits = key_bits
        state.flags = PermanentFlags(
            owned=bool(r.u8()),
            disabled=bool(r.u8()),
            deactivated=bool(r.u8()),
            started=bool(r.u8()),
        )
        state.owner_auth = r.raw(AUTHDATA_SIZE)
        state.tpm_proof = r.raw(AUTHDATA_SIZE)
        state.dir_register = r.raw(20)
        state.pcrs = PcrBank()
        state.nv = NvStorage(capacity=nv_capacity)
        state.counters = CounterTable()
        state.keys = KeySlots()
        state.sessions = SessionTable(state.rng)
        ek_blob = r.sized(max_size=1 << 16)
        if ek_blob:
            state.keys.install_ek(
                LoadedKey(
                    handle=0,
                    usage=TPM_KEY_STORAGE,
                    keypair=RsaKeyPair.deserialize_private(ek_blob),
                    usage_auth=WELL_KNOWN_SECRET,
                    migration_auth=state.tpm_proof,
                )
            )
        if r.u8():
            srk_pair = RsaKeyPair.deserialize_private(r.sized(max_size=1 << 16))
            srk_auth = r.raw(AUTHDATA_SIZE)
            state.keys.install_srk(
                LoadedKey(
                    handle=TPM_KH_SRK,
                    usage=TPM_KEY_STORAGE,
                    keypair=srk_pair,
                    usage_auth=srk_auth,
                    migration_auth=state.tpm_proof,
                )
            )
        from repro.tpm.constants import DIGEST_SIZE, NUM_PCRS

        state.pcrs.restore([r.raw(DIGEST_SIZE) for _ in range(NUM_PCRS)])
        for _ in range(r.u32()):
            index = r.u32()
            size = r.u32()
            permissions = r.u32()
            auth = r.raw(AUTHDATA_SIZE)
            write_locked = bool(r.u8())
            pcr_len = r.u32()
            pcr_info = None
            if pcr_len:
                sub = ByteReader(r.raw(pcr_len))
                pcr_info = TpmPcrInfo.deserialize(sub)
                sub.expect_end()
            payload = r.sized(max_size=1 << 20)
            area = NvArea(
                index=index,
                size=size,
                permissions=permissions,
                auth=auth,
                pcr_info=pcr_info,
                data=payload,
                write_locked=write_locked,
            )
            state.nv._areas[index] = area
        count = r.u32()
        for _ in range(count):
            handle = r.u32()
            label = r.raw(4)
            value = r.u64()
            auth = r.raw(AUTHDATA_SIZE)
            state.counters._counters[handle] = Counter(
                handle=handle, label=label, value=value, auth=auth
            )
            state.counters._next_handle = max(state.counters._next_handle, handle + 1)
        state.counters._high_water = r.u64()
        for _ in range(r.u32()):
            handle = r.u32()
            usage = r.u16()
            pair = RsaKeyPair.deserialize_private(r.sized(max_size=1 << 16))
            usage_auth = r.raw(AUTHDATA_SIZE)
            migration_auth = r.raw(AUTHDATA_SIZE)
            parent_handle = r.u32()
            pcr_len = r.u32()
            pcr_info = None
            if pcr_len:
                sub = ByteReader(r.raw(pcr_len))
                pcr_info = TpmPcrInfo.deserialize(sub)
                sub.expect_end()
            key = LoadedKey(
                handle=handle,
                usage=usage,
                keypair=pair,
                usage_auth=usage_auth,
                migration_auth=migration_auth,
                pcr_info=pcr_info,
                parent_handle=parent_handle,
            )
            state.keys._slots[handle] = key
            state.keys._next_handle = max(state.keys._next_handle, handle + 1)
        r.expect_end()
        return state
