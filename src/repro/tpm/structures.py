"""Wire structures: PCR info, wrapped key blobs, sealed blobs, quote info.

These are the persistent/portable artifacts a TPM emits.  Layouts follow
TPM 1.2 Part 2 in shape (field order, sized buffers, big-endian) with one
documented simplification: private portions are protected by an
authenticated symmetric cipher keyed from the parent storage key via HKDF,
rather than the spec's internal RSA/XOR encodings.  The security contract
is identical — only the holder of the parent private key can unwrap — and
the timing model charges bulk-cipher rates either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.kdf import derive_key
from repro.crypto.random_source import RandomSource
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.tpm.constants import (
    AUTHDATA_SIZE,
    DIGEST_SIZE,
    KEY_USAGE_NAMES,
    TPM_ALG_RSA,
    TPM_BAD_PARAMETER,
    TPM_DECRYPT_ERROR,
    TPM_ES_RSAESPKCSv15,
    TPM_SS_RSASSAPKCS1v15_SHA1,
)
from repro.tpm.pcr import PcrSelection
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import CryptoError, MarshalError, TpmError

#: TPM_STRUCT_VER for 1.2 structures
STRUCT_VERSION = bytes((1, 1, 0, 0))
QUOTE_FIXED = b"QUOT"
SEAL_FIXED = b"SEAL"


@dataclass(frozen=True)
class TpmPcrInfo:
    """TPM_PCR_INFO: bind an object to platform state.

    ``digest_at_release`` is the PCR composite that must hold when the
    object is used (unseal / loaded-key use).
    """

    selection: PcrSelection
    digest_at_release: bytes

    def __post_init__(self) -> None:
        if len(self.digest_at_release) != DIGEST_SIZE:
            raise MarshalError("digestAtRelease must be a SHA-1 digest")

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(self.selection.serialize())
        w.raw(self.digest_at_release)
        return w.getvalue()

    @staticmethod
    def deserialize(reader: ByteReader) -> "TpmPcrInfo":
        selection = PcrSelection.deserialize(reader)
        digest = reader.raw(DIGEST_SIZE)
        return TpmPcrInfo(selection=selection, digest_at_release=digest)


def _wrap_cipher_for(parent: RsaKeyPair) -> SymmetricKey:
    """Symmetric wrapping key derived from the parent storage key.

    Deterministic per parent, so blobs created before a state save/restore
    still unwrap afterwards.
    """
    secret = parent.d.to_bytes((parent.d.bit_length() + 7) // 8, "big")
    return SymmetricKey(derive_key(secret, b"tpm-wrap-v1", b"storage-wrap", 32))


@dataclass(frozen=True)
class PrivatePortion:
    """What lives inside the encrypted half of a key blob."""

    keypair: RsaKeyPair
    usage_auth: bytes
    migration_auth: bytes

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.sized(self.keypair.serialize_private())
        w.raw(self.usage_auth)
        w.raw(self.migration_auth)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "PrivatePortion":
        r = ByteReader(data)
        keypair = RsaKeyPair.deserialize_private(r.sized(max_size=1 << 16))
        usage_auth = r.raw(AUTHDATA_SIZE)
        migration_auth = r.raw(AUTHDATA_SIZE)
        r.expect_end()
        return PrivatePortion(
            keypair=keypair, usage_auth=usage_auth, migration_auth=migration_auth
        )


@dataclass(frozen=True)
class TpmKeyBlob:
    """TPM_KEY12-shaped wrapped key: public half in clear, private encrypted.

    Produced by TPM_CreateWrapKey / TPM_MakeIdentity; consumed by
    TPM_LoadKey2.  Only the parent storage key can decrypt ``enc_private``.
    """

    usage: int
    scheme: int
    public: RsaPublicKey
    enc_private: EncryptedBlob
    pcr_info: Optional[TpmPcrInfo] = None

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(STRUCT_VERSION)
        w.u16(self.usage)
        w.u16(self.scheme)
        w.u32(TPM_ALG_RSA)
        w.u32(self.public.bits)
        w.sized(self.public.modulus_bytes())
        w.u32(self.public.e)
        if self.pcr_info is not None:
            pcr_blob = self.pcr_info.serialize()
            w.u32(len(pcr_blob))
            w.raw(pcr_blob)
        else:
            w.u32(0)
        w.sized(self.enc_private.serialize())
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "TpmKeyBlob":
        r = ByteReader(data)
        version = r.raw(4)
        if version != STRUCT_VERSION:
            raise MarshalError(f"unsupported key struct version {version.hex()}")
        usage = r.u16()
        scheme = r.u16()
        alg = r.u32()
        if alg != TPM_ALG_RSA:
            raise MarshalError(f"unsupported key algorithm {alg:#x}")
        bits = r.u32()
        modulus = r.sized(max_size=1 << 12)
        exponent = r.u32()
        pcr_len = r.u32()
        pcr_info = None
        if pcr_len:
            sub = ByteReader(r.raw(pcr_len))
            pcr_info = TpmPcrInfo.deserialize(sub)
            sub.expect_end()
        enc_private = EncryptedBlob.deserialize(r.sized(max_size=1 << 16))
        r.expect_end()
        public = RsaPublicKey(n=int.from_bytes(modulus, "big"), e=exponent, bits=bits)
        return TpmKeyBlob(
            usage=usage,
            scheme=scheme,
            public=public,
            enc_private=enc_private,
            pcr_info=pcr_info,
        )

    @staticmethod
    def wrap(
        parent: RsaKeyPair,
        keypair: RsaKeyPair,
        usage: int,
        usage_auth: bytes,
        migration_auth: bytes,
        rng: RandomSource,
        pcr_info: Optional[TpmPcrInfo] = None,
        scheme: Optional[int] = None,
    ) -> "TpmKeyBlob":
        """Encrypt a child key's private portion under the parent."""
        if usage not in KEY_USAGE_NAMES:
            raise TpmError(TPM_BAD_PARAMETER, f"unknown key usage {usage:#x}")
        if scheme is None:
            scheme = (
                TPM_ES_RSAESPKCSv15
                if KEY_USAGE_NAMES[usage] in ("storage", "bind")
                else TPM_SS_RSASSAPKCS1v15_SHA1
            )
        portion = PrivatePortion(
            keypair=keypair, usage_auth=usage_auth, migration_auth=migration_auth
        )
        enc = _wrap_cipher_for(parent).encrypt(portion.serialize(), rng)
        return TpmKeyBlob(
            usage=usage,
            scheme=scheme,
            public=keypair.public,
            enc_private=enc,
            pcr_info=pcr_info,
        )

    def unwrap(self, parent: RsaKeyPair) -> PrivatePortion:
        """Decrypt the private portion; fails for the wrong parent."""
        try:
            plain = _wrap_cipher_for(parent).decrypt(self.enc_private)
        except CryptoError as exc:
            raise TpmError(TPM_DECRYPT_ERROR, f"key unwrap failed: {exc}") from exc
        portion = PrivatePortion.deserialize(plain)
        if portion.keypair.public.n != self.public.n:
            raise TpmError(TPM_DECRYPT_ERROR, "public/private halves disagree")
        return portion


@dataclass(frozen=True)
class SealedBlob:
    """Output of TPM_Seal: payload bound to PCR state under a storage key."""

    pcr_info: Optional[TpmPcrInfo]
    enc_payload: EncryptedBlob

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(SEAL_FIXED)
        if self.pcr_info is not None:
            blob = self.pcr_info.serialize()
            w.u32(len(blob))
            w.raw(blob)
        else:
            w.u32(0)
        w.sized(self.enc_payload.serialize())
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "SealedBlob":
        r = ByteReader(data)
        fixed = r.raw(4)
        if fixed != SEAL_FIXED:
            raise MarshalError("not a sealed blob")
        pcr_len = r.u32()
        pcr_info = None
        if pcr_len:
            sub = ByteReader(r.raw(pcr_len))
            pcr_info = TpmPcrInfo.deserialize(sub)
            sub.expect_end()
        enc = EncryptedBlob.deserialize(r.sized(max_size=1 << 20))
        r.expect_end()
        return SealedBlob(pcr_info=pcr_info, enc_payload=enc)


@dataclass(frozen=True)
class SealedPayload:
    """Plaintext interior of a sealed blob: auth secret + data."""

    auth: bytes
    data: bytes

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(self.auth)
        w.sized(self.data)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "SealedPayload":
        r = ByteReader(data)
        auth = r.raw(AUTHDATA_SIZE)
        payload = r.sized(max_size=1 << 20)
        r.expect_end()
        return SealedPayload(auth=auth, data=payload)


@dataclass(frozen=True)
class CertifyInfo:
    """Verifier-side view of TPM_CertifyKey's signed payload."""

    key_usage: int
    public: RsaPublicKey
    anti_replay: bytes
    pcr_bound: bool
    digest_at_release: Optional[bytes]

    @staticmethod
    def deserialize(data: bytes) -> "CertifyInfo":
        r = ByteReader(data)
        if r.raw(4) != b"CERT":
            raise MarshalError("not a certifyInfo structure")
        usage = r.u16()
        modulus = r.sized(max_size=1 << 12)
        exponent = r.u32()
        anti_replay = r.raw(DIGEST_SIZE)
        pcr_bound = bool(r.u8())
        digest = r.raw(DIGEST_SIZE) if pcr_bound else None
        r.expect_end()
        return CertifyInfo(
            key_usage=usage,
            public=RsaPublicKey(
                n=int.from_bytes(modulus, "big"),
                e=exponent,
                bits=len(modulus) * 8,
            ),
            anti_replay=anti_replay,
            pcr_bound=pcr_bound,
            digest_at_release=digest,
        )


def make_quote_info(composite_digest: bytes, external_data: bytes) -> bytes:
    """TPM_QUOTE_INFO: what TPM_Quote actually signs."""
    if len(composite_digest) != DIGEST_SIZE:
        raise MarshalError("composite digest must be 20 bytes")
    if len(external_data) != DIGEST_SIZE:
        raise MarshalError("external data (anti-replay nonce) must be 20 bytes")
    w = ByteWriter()
    w.raw(STRUCT_VERSION)
    w.raw(QUOTE_FIXED)
    w.raw(composite_digest)
    w.raw(external_data)
    return w.getvalue()
