"""Configuration for the access-control layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessMode(enum.Enum):
    """Which vTPM protection regime a platform runs."""

    #: Stock Xen vTPM: trust-by-domid, plaintext state, dumpable memory.
    BASELINE = "baseline"
    #: The paper's improvement: full reference monitor + protections.
    IMPROVED = "improved"


@dataclass(frozen=True)
class AccessControlConfig:
    """Per-mechanism switches (all on = the paper's full scheme).

    The ablation benchmark toggles these one at a time to attribute cost;
    the baseline platform simply never consults them.
    """

    identity_check: bool = True     # verify caller measurement per command
    policy_check: bool = True       # per-ordinal policy decision
    authz_cache: bool = True        # epoch-invalidated decision cache
    audit: bool = True              # append-only audit records
    protect_memory: bool = True     # hypervisor-protect vTPM secret pages
    seal_storage: bool = True       # encrypt state at rest, key sealed to hw TPM

    @staticmethod
    def all_on() -> "AccessControlConfig":
        return AccessControlConfig()

    @staticmethod
    def all_off() -> "AccessControlConfig":
        return AccessControlConfig(
            identity_check=False,
            policy_check=False,
            authz_cache=False,
            audit=False,
            protect_memory=False,
            seal_storage=False,
        )

    def with_only(self, component: str) -> "AccessControlConfig":
        """A config with exactly one mechanism enabled (ablation helper)."""
        base = {
            "identity_check": False,
            "policy_check": False,
            "authz_cache": False,
            "audit": False,
            "protect_memory": False,
            "seal_storage": False,
        }
        if component not in base:
            raise ValueError(f"unknown access-control component {component!r}")
        base[component] = True
        return AccessControlConfig(**base)

    def without(self, component: str) -> "AccessControlConfig":
        """A config with one mechanism disabled (leave-one-out ablation)."""
        values = {
            "identity_check": self.identity_check,
            "policy_check": self.policy_check,
            "authz_cache": self.authz_cache,
            "audit": self.audit,
            "protect_memory": self.protect_memory,
            "seal_storage": self.seal_storage,
        }
        if component not in values:
            raise ValueError(f"unknown access-control component {component!r}")
        values[component] = False
        return AccessControlConfig(**values)
