"""Hypervisor page protection for vTPM secret memory.

The memory half of the paper's defence: the frames holding vTPM instance
state inside the manager domain are flagged hypervisor-protected, so the
foreign-map interface (``xc_map_foreign_range`` / ``xm dump-core``) can no
longer read them — even from Dom0.  Grant-based sharing is unaffected, so
the split driver keeps working.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.xen.memory import MemoryRegion, PhysicalMemory


class MemoryProtector:
    """Tracks and toggles protection over vTPM secret regions."""

    def __init__(self, memory: PhysicalMemory, enabled: bool = True) -> None:
        self._memory = memory
        self.enabled = enabled
        self._protected_frames: Dict[object, List[int]] = {}

    def protect_region(self, tag: object, region: MemoryRegion) -> int:
        """Protect every frame of ``region`` under ``tag``; returns count.

        With protection disabled (baseline) this records nothing and the
        frames stay dumpable — the stock-Xen behaviour.
        """
        if not self.enabled:
            return 0
        for frame in region.frames:
            self._memory.set_protected(frame, True)
        self._protected_frames[tag] = list(region.frames)
        return len(region.frames)

    def unprotect(self, tag: object) -> int:
        """Drop protection for a tag (instance teardown); returns count."""
        frames = self._protected_frames.pop(tag, [])
        for frame in frames:
            # The frame may already be freed; tolerate that.
            try:
                self._memory.set_protected(frame, False)
            except Exception:
                continue
        return len(frames)

    def protected_frames(self) -> List[int]:
        out: List[int] = []
        for frames in self._protected_frames.values():
            out.extend(frames)
        return sorted(out)

    def is_protected(self, frame: int) -> bool:
        return self._memory.page(frame).protected
