"""Policy profiles: named grant bundles for classes of guests.

The default grant (``PolicyEngine.grant_owner``) gives a VM everything on
its own instance.  Real deployments want narrower profiles — a web
front-end that only ever unseals, an appliance that only attests.  A
profile is a named set of command classes; applying one installs exactly
those grants for (identity, instance).

Profiles compose with the deny-by-default engine: anything a profile does
not name stays denied, so e.g. an ``attestation-only`` guest cannot write
NV or mint keys even on its *own* vTPM — least privilege inside the VM's
own boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable

from repro.core.policy import CommandClass, PolicyEngine, PolicyRule
from repro.util.errors import AccessControlError


@dataclass(frozen=True)
class PolicyProfile:
    """A named bundle of command classes."""

    name: str
    classes: FrozenSet[CommandClass]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.classes:
            raise AccessControlError(f"profile {self.name!r} grants nothing")
        if CommandClass.UNKNOWN in self.classes:
            raise AccessControlError("profiles cannot grant UNKNOWN")

    def apply(
        self, engine: PolicyEngine, subject: str, instance: object
    ) -> list[PolicyRule]:
        """Install this profile's grants; returns the created rules."""
        return engine.add_rule(subject, instance, sorted(
            self.classes, key=lambda c: c.value
        ))


#: the full-rights profile grant_owner() uses, named for completeness
PROFILE_OWNER = PolicyProfile(
    name="owner",
    classes=frozenset(
        c for c in CommandClass if c is not CommandClass.UNKNOWN
    ),
    description="everything on the guest's own instance (the default)",
)

#: quote/sign and the sessions they need; no storage mutation, no admin
PROFILE_ATTESTATION_ONLY = PolicyProfile(
    name="attestation-only",
    classes=frozenset(
        {CommandClass.READ, CommandClass.MEASURE, CommandClass.USE_KEY,
         CommandClass.SESSION}
    ),
    description="measure, quote and sign; no key/NV admin, no ownership ops",
)

#: seal/unseal workloads: use keys and sessions, read state; no measuring
PROFILE_SEALED_STORAGE = PolicyProfile(
    name="sealed-storage",
    classes=frozenset(
        {CommandClass.READ, CommandClass.USE_KEY, CommandClass.SESSION}
    ),
    description="unseal/seal with existing keys; cannot even extend PCRs",
)

#: monitoring agents: read-only
PROFILE_MONITOR = PolicyProfile(
    name="monitor",
    classes=frozenset({CommandClass.READ, CommandClass.SESSION}),
    description="PCR/counter/capability reads only",
)

PROFILES: Dict[str, PolicyProfile] = {
    p.name: p
    for p in (
        PROFILE_OWNER,
        PROFILE_ATTESTATION_ONLY,
        PROFILE_SEALED_STORAGE,
        PROFILE_MONITOR,
    )
}


def profile_by_name(name: str) -> PolicyProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise AccessControlError(
            f"unknown policy profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
