"""Measured domain identity.

Stock Xen associates a vTPM instance with a *domain id* — a small integer
that is reused across reboots and trivially spoofed by a privileged
backend.  The improvement binds instances to a **launch measurement**:
``SHA-256(kernel image || name || config)`` taken when the domain is
built.  Verification recomputes the measurement from hypervisor-held
ground truth, so a rogue backend cannot claim another VM's identity by
editing XenStore.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.hashes import sha256
from repro.sim.timing import charge
from repro.util.errors import IdentityError
from repro.xen.domain import Domain

MEASUREMENT_SIZE = 32


def _canonical_config(config: Dict[str, str]) -> bytes:
    """Deterministic byte form of a domain config dict."""
    return b"\x00".join(
        f"{k}={config[k]}".encode("utf-8") for k in sorted(config)
    )


@dataclass(frozen=True)
class DomainIdentity:
    """The launch-time identity of one domain."""

    measurement: bytes
    name: str
    uuid: str

    def __post_init__(self) -> None:
        if len(self.measurement) != MEASUREMENT_SIZE:
            raise IdentityError("measurement must be a SHA-256 digest")

    @property
    def hex(self) -> str:
        return self.measurement.hex()

    def short(self) -> str:
        """Abbreviated form for logs and audit records."""
        return self.measurement[:6].hex()


def measure_domain(domain: Domain) -> bytes:
    """Compute the launch measurement from hypervisor ground truth."""
    charge("ac.identity.measure")
    payload = (
        domain.kernel_image
        + b"\x1f"
        + domain.name.encode("utf-8")
        + b"\x1f"
        + _canonical_config(domain.config)
    )
    return sha256(payload)


class IdentityRegistry:
    """Tracks measured identities and verifies callers against them.

    ``register`` runs at domain launch (the measured-boot hook);
    ``verify_current`` is the per-command fast path: it compares the cached
    measurement against one recomputed from the live domain, so a domain
    that was torn down and rebuilt with a different kernel under a recycled
    domid fails verification.
    """

    def __init__(self) -> None:
        self._by_domid: Dict[int, DomainIdentity] = {}
        #: bumped on every mutation; cached authorization decisions made
        #: against an older version are invalid (monitor epoch component)
        self.version = 0

    def register(self, domain: Domain) -> DomainIdentity:
        measurement = measure_domain(domain)
        identity = DomainIdentity(
            measurement=measurement, name=domain.name, uuid=domain.uuid
        )
        domain.measurement = measurement
        self._by_domid[domain.domid] = identity
        self.version += 1
        return identity

    def forget(self, domid: int) -> None:
        if self._by_domid.pop(domid, None) is not None:
            self.version += 1

    def lookup(self, domid: int) -> Optional[DomainIdentity]:
        return self._by_domid.get(domid)

    def verify_current(self, domain: Domain) -> DomainIdentity:
        """Cheap per-command check: cached vs live measurement.

        The full hash only reruns when the cached copy is missing; the hot
        path is a 32-byte compare, which is what ``ac.identity.check``
        charges.
        """
        charge("ac.identity.check")
        cached = self._by_domid.get(domain.domid)
        if cached is None:
            raise IdentityError(
                f"dom{domain.domid} ({domain.name}) was never measured"
            )
        live = domain.measurement
        if live is None:
            raise IdentityError(f"dom{domain.domid} carries no live measurement")
        if not hashlib.sha256(live).digest() == hashlib.sha256(cached.measurement).digest():
            # Compare via hashes so the check is constant-time in the
            # measurement contents (paranoia mirroring the auth paths).
            raise IdentityError(
                f"dom{domain.domid} measurement mismatch: expected "
                f"{cached.short()}, live differs"
            )
        return cached

    def count(self) -> int:
        return len(self._by_domid)
