"""The paper's contribution: access control for the Xen vTPM.

Five cooperating mechanisms close the "CPU and memory dump" hole the
abstract describes, while leaving the stock vTPM function intact:

* :mod:`~repro.core.identity` — measured launch identity for domains, so a
  vTPM instance binds to *what* a VM is, not a reusable domain id.
* :mod:`~repro.core.policy` — deny-by-default per-command authorization
  with O(1) amortized decisions.
* :mod:`~repro.core.monitor` — the reference monitor interposed on the
  vTPM manager's command path, combining identity, policy and audit.
* :mod:`~repro.core.protection` — hypervisor page protection that removes
  vTPM secret memory from the foreign-map/dump interface.
* :mod:`~repro.core.sealing` — persistent vTPM state encrypted under a
  root secret sealed to the *hardware* TPM.

``AccessControlConfig`` toggles each mechanism independently, which is how
the ablation experiment (Table 4) isolates their costs, and how
``AccessMode.BASELINE`` reproduces stock Xen behaviour for every
comparison.
"""

from repro.core.config import AccessControlConfig, AccessMode
from repro.core.identity import DomainIdentity, IdentityRegistry
from repro.core.policy import (
    ANY,
    CommandClass,
    Decision,
    PolicyEngine,
    PolicyRule,
    classify_ordinal,
)
from repro.core.monitor import AccessControlMonitor, BaselineMonitor, Monitor
from repro.core.protection import MemoryProtector
from repro.core.sealing import StateSealer
from repro.core.audit import AuditLog, AuditRecord
from repro.core.anchor import Anchor, AuditAnchor
from repro.core.certification import (
    EndorsementCertificate,
    VtpmCertifier,
    verify_endorsement,
)
from repro.core.profiles import PROFILES, PolicyProfile, profile_by_name

__all__ = [
    "AccessControlConfig",
    "AccessMode",
    "DomainIdentity",
    "IdentityRegistry",
    "ANY",
    "CommandClass",
    "Decision",
    "PolicyEngine",
    "PolicyRule",
    "classify_ordinal",
    "AccessControlMonitor",
    "BaselineMonitor",
    "Monitor",
    "MemoryProtector",
    "StateSealer",
    "AuditLog",
    "AuditRecord",
    "Anchor",
    "AuditAnchor",
    "EndorsementCertificate",
    "VtpmCertifier",
    "verify_endorsement",
    "PROFILES",
    "PolicyProfile",
    "profile_by_name",
]
