"""Audit-log anchoring in the hardware TPM.

The hash-chained :class:`~repro.core.audit.AuditLog` detects *edits*, but
an attacker who later owns the manager could regenerate a shorter chain
from genesis and present it as complete.  Anchoring closes that hole:
periodically the manager writes ``(sequence, chain head)`` into a
hardware-TPM NV area and bumps a hardware monotonic counter.  A verifier
who trusts only the hardware TPM can then demand that the presented log

* reaches at least the anchored sequence number,
* has exactly the anchored chain head at that sequence, and
* matches the counter's anchor count.

Rolling the log back past an anchor now requires rewinding the hardware
counter — which TPM 1.2 counters cannot do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.audit import AuditLog
from repro.tpm.client import TpmClient
from repro.tpm.nvram import NV_PER_AUTHREAD, NV_PER_AUTHWRITE
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import AccessControlError

ANCHOR_NV_INDEX = 0x00A0D17  # "AUDIT"-ish index in owner space
ANCHOR_SIZE = 4 + 8 + 32     # count(4) + sequence(8) + chain head(32)


@dataclass(frozen=True)
class Anchor:
    """One anchored checkpoint."""

    count: int          # how many anchors ever written (counter value delta)
    sequence: int       # number of records covered (log length at anchor)
    chain_head: bytes   # AuditLog head after `sequence` records

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.u32(self.count)
        w.u64(self.sequence)
        w.raw(self.chain_head)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "Anchor":
        r = ByteReader(data)
        count = r.u32()
        sequence = r.u64()
        chain_head = r.raw(32)
        r.expect_end()
        return Anchor(count=count, sequence=sequence, chain_head=chain_head)


class AuditAnchor:
    """Manager-side anchoring client over the hardware TPM."""

    def __init__(
        self,
        hw_client: TpmClient,
        owner_auth: bytes,
        area_auth: bytes,
        counter_auth: bytes,
    ) -> None:
        self._hw = hw_client
        self._area_auth = area_auth
        self._counter_auth = counter_auth
        hw_client.nv_define(
            owner_auth, ANCHOR_NV_INDEX, ANCHOR_SIZE,
            NV_PER_AUTHREAD | NV_PER_AUTHWRITE, area_auth,
        )
        self._counter_handle, self._counter_base = hw_client.create_counter(
            owner_auth, counter_auth, b"audt"
        )
        self.anchors_written = 0

    # -- writing ---------------------------------------------------------------

    def anchor(self, log: AuditLog) -> Anchor:
        """Checkpoint the log's current head into hardware."""
        if len(log) == 0:
            raise AccessControlError("refusing to anchor an empty log")
        value = self._hw.increment_counter(self._counter_auth, self._counter_handle)
        record = log.records()[-1]
        anchor = Anchor(
            count=value - self._counter_base,
            sequence=len(log),
            chain_head=record.chain_hash,
        )
        self._hw.nv_write(self._area_auth, ANCHOR_NV_INDEX, 0, anchor.serialize())
        self.anchors_written += 1
        return anchor

    # -- verifying -----------------------------------------------------------------

    def read_anchor(self) -> Optional[Anchor]:
        """The latest hardware-held checkpoint (None before first anchor)."""
        data = self._hw.nv_read(
            ANCHOR_NV_INDEX, 0, ANCHOR_SIZE, auth=self._area_auth
        )
        if data == b"\xff" * ANCHOR_SIZE:
            return None
        return Anchor.deserialize(data)

    def counter_anchor_count(self) -> int:
        """How many anchors the hardware counter has witnessed."""
        return self._hw.read_counter(self._counter_handle) - self._counter_base

    def verify(self, log: AuditLog) -> tuple[bool, str]:
        """Check a presented log against the hardware state.

        Returns (ok, reason).  Catches in-place edits (chain), truncation
        below the anchored sequence, head substitution at the anchored
        sequence, and anchor-count mismatches (a replayed old NV image).
        """
        if not log.verify_chain():
            return False, "hash chain broken (record edited)"
        anchor = self.read_anchor()
        witnessed = self.counter_anchor_count()
        if anchor is None:
            if witnessed != 0:
                return False, (
                    f"counter witnessed {witnessed} anchors but NV holds none "
                    "(anchor area rolled back)"
                )
            return True, "no anchors yet; chain self-consistent"
        if anchor.count != witnessed:
            return False, (
                f"NV anchor #{anchor.count} but counter witnessed {witnessed} "
                "(stale anchor replayed)"
            )
        if len(log) < anchor.sequence:
            return False, (
                f"log has {len(log)} records but hardware anchored "
                f"{anchor.sequence} (truncated)"
            )
        head_at_anchor = log.records()[anchor.sequence - 1].chain_hash
        if head_at_anchor != anchor.chain_head:
            return False, "chain head at anchored sequence differs (regenerated log)"
        return True, f"anchored at sequence {anchor.sequence}, chain intact"
