"""Append-only, hash-chained audit log for access decisions.

Every monitor decision (allow *and* deny) produces a record; records chain
``h_i = SHA-256(h_{i-1} || record_i)`` so truncation or in-place edits are
detectable — the standard response to "the attacker owns the log file".

The hot path uses **buffered chaining**: :meth:`AuditLog.append_buffered`
captures the record fields and encoded bytes immediately (and charges the
modeled ``ac.audit.append`` cost at that point), but defers the SHA-256
chain extension until the log is next *read* — so a burst of commands pays
one tight hashing loop instead of interleaving a digest into every
dispatch.  The final chain hash is byte-identical to eager chaining: the
encoded bytes and their order are fixed at append time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from repro.sim import timing as _timing
from repro.sim.timing import charge

GENESIS = hashlib.sha256(b"vtpm-audit-genesis").digest()


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One immutable audit entry."""

    sequence: int
    timestamp_us: float
    subject: str            # identity hex (or 'dom<N>' pre-identity)
    instance: object
    operation: str          # ordinal name
    allowed: bool
    reason: str
    chain_hash: bytes = b""

    def encode(self) -> bytes:
        return (
            f"{self.sequence}|{self.timestamp_us:.3f}|{self.subject}|"
            f"{self.instance}|{self.operation}|"
            f"{'ALLOW' if self.allowed else 'DENY'}|{self.reason}"
        ).encode("utf-8")

    def encode_decision(self) -> bytes:
        """The timestamp-free encoding: only decision-relevant fields.

        Two runs that take different amounts of *virtual time* but make
        the same decisions (e.g. authz cache on vs off) agree on this
        encoding while their full chains legitimately differ.
        """
        return (
            f"{self.sequence}|{self.subject}|{self.instance}|"
            f"{self.operation}|{'ALLOW' if self.allowed else 'DENY'}|"
            f"{self.reason}"
        ).encode("utf-8")


class AuditLog:
    """The manager's append-only decision log."""

    __slots__ = ("_flushed", "_pending", "_chain_head")

    def __init__(self) -> None:
        self._flushed: List[AuditRecord] = []
        #: appended-but-not-yet-chained entries:
        #: (sequence, timestamp_us, subject, instance, op, allowed, reason, encoded)
        self._pending: List[tuple] = []
        self._chain_head = GENESIS

    # -- the write path ----------------------------------------------------------

    def append_buffered(
        self,
        subject: str,
        instance: object,
        operation: str,
        allowed: bool,
        reason: str,
    ) -> None:
        """Record a decision without extending the hash chain yet.

        The encoded bytes (and therefore the eventual chain hash) are fully
        determined here; only the SHA-256 work is deferred to the next read.
        """
        pending = self._pending
        sequence = len(self._flushed) + len(pending)
        timestamp_us = _timing._current_context.clock.now_us
        encoded = (
            f"{sequence}|{timestamp_us:.3f}|{subject}|"
            f"{instance}|{operation}|"
            f"{'ALLOW' if allowed else 'DENY'}|{reason}"
        ).encode("utf-8")
        charge("ac.audit.append", len(encoded))
        pending.append(
            (sequence, timestamp_us, subject, instance, operation, allowed,
             reason, encoded)
        )

    def append(
        self,
        subject: str,
        instance: object,
        operation: str,
        allowed: bool,
        reason: str,
    ) -> AuditRecord:
        """Append and chain immediately; returns the finished record."""
        self.append_buffered(subject, instance, operation, allowed, reason)
        self._flush()
        return self._flushed[-1]

    def _flush(self) -> None:
        """Extend the chain over every pending entry (one tight loop)."""
        if not self._pending:
            return
        head = self._chain_head
        sha256 = hashlib.sha256
        flushed = self._flushed
        for (sequence, timestamp_us, subject, instance, operation, allowed,
             reason, encoded) in self._pending:
            head = sha256(head + encoded).digest()
            flushed.append(
                AuditRecord(
                    sequence=sequence,
                    timestamp_us=timestamp_us,
                    subject=subject,
                    instance=instance,
                    operation=operation,
                    allowed=allowed,
                    reason=reason,
                    chain_hash=head,
                )
            )
        self._pending.clear()
        self._chain_head = head

    # -- internal views (tests poke these; keep them flush-consistent) ----------

    @property
    def _records(self) -> List[AuditRecord]:
        self._flush()
        return self._flushed

    @_records.setter
    def _records(self, value: List[AuditRecord]) -> None:
        self._flush()
        self._flushed = list(value)

    @property
    def _head(self) -> bytes:
        self._flush()
        return self._chain_head

    @_head.setter
    def _head(self, value: bytes) -> None:
        self._flush()
        self._chain_head = value

    # -- verification -----------------------------------------------------------

    def chain_head(self) -> bytes:
        """The current chain head (flushes pending entries first)."""
        self._flush()
        return self._chain_head

    def decision_chain_hash(self) -> bytes:
        """Chain hash over the timestamp-free decision encodings.

        The differential oracle compares this across configurations whose
        virtual-time costs differ by design (decision cache on vs off):
        equality means every record agrees on sequence, subject, instance,
        operation, verdict and reason — everything but the clock.
        """
        head = GENESIS
        for record in self._records:
            head = hashlib.sha256(head + record.encode_decision()).digest()
        return head

    def verify_chain(self) -> bool:
        """Recompute the whole chain; False means tampering."""
        self._flush()
        head = GENESIS
        for record in self._flushed:
            head = hashlib.sha256(head + record.encode()).digest()
            if head != record.chain_hash:
                return False
        return head == self._chain_head

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flushed) + len(self._pending)

    def records(self) -> List[AuditRecord]:
        return list(self._records)

    def denials(self) -> List[AuditRecord]:
        return [r for r in self._records if not r.allowed]

    def for_subject(self, subject: str) -> List[AuditRecord]:
        return [r for r in self._records if r.subject == subject]

    def for_instance(self, instance: object) -> List[AuditRecord]:
        return [r for r in self._records if r.instance == instance]

    def tail(self, count: int = 10) -> List[AuditRecord]:
        return self._records[-count:]
