"""Append-only, hash-chained audit log for access decisions.

Every monitor decision (allow *and* deny) produces a record; records chain
``h_i = SHA-256(h_{i-1} || record_i)`` so truncation or in-place edits are
detectable — the standard response to "the attacker owns the log file".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sim.timing import charge, get_context

GENESIS = hashlib.sha256(b"vtpm-audit-genesis").digest()


@dataclass(frozen=True)
class AuditRecord:
    """One immutable audit entry."""

    sequence: int
    timestamp_us: float
    subject: str            # identity hex (or 'dom<N>' pre-identity)
    instance: object
    operation: str          # ordinal name
    allowed: bool
    reason: str
    chain_hash: bytes = b""

    def encode(self) -> bytes:
        return (
            f"{self.sequence}|{self.timestamp_us:.3f}|{self.subject}|"
            f"{self.instance}|{self.operation}|"
            f"{'ALLOW' if self.allowed else 'DENY'}|{self.reason}"
        ).encode("utf-8")


class AuditLog:
    """The manager's append-only decision log."""

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self._head = GENESIS

    def append(
        self,
        subject: str,
        instance: object,
        operation: str,
        allowed: bool,
        reason: str,
    ) -> AuditRecord:
        partial = AuditRecord(
            sequence=len(self._records),
            timestamp_us=get_context().clock.now_us,
            subject=subject,
            instance=instance,
            operation=operation,
            allowed=allowed,
            reason=reason,
        )
        encoded = partial.encode()
        charge("ac.audit.append", len(encoded))
        self._head = hashlib.sha256(self._head + encoded).digest()
        record = AuditRecord(
            sequence=partial.sequence,
            timestamp_us=partial.timestamp_us,
            subject=partial.subject,
            instance=partial.instance,
            operation=partial.operation,
            allowed=partial.allowed,
            reason=partial.reason,
            chain_hash=self._head,
        )
        self._records.append(record)
        return record

    # -- verification -----------------------------------------------------------

    def verify_chain(self) -> bool:
        """Recompute the whole chain; False means tampering."""
        head = GENESIS
        for record in self._records:
            head = hashlib.sha256(head + record.encode()).digest()
            if head != record.chain_hash:
                return False
        return head == self._head

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[AuditRecord]:
        return list(self._records)

    def denials(self) -> List[AuditRecord]:
        return [r for r in self._records if not r.allowed]

    def for_subject(self, subject: str) -> List[AuditRecord]:
        return [r for r in self._records if r.subject == subject]

    def for_instance(self, instance: object) -> List[AuditRecord]:
        return [r for r in self._records if r.instance == instance]

    def tail(self, count: int = 10) -> List[AuditRecord]:
        return self._records[-count:]
