"""The reference monitor on the vTPM command path.

The vTPM manager calls :meth:`Monitor.authorize` for every command packet
*before* it reaches a vTPM instance.  The baseline monitor reproduces
stock Xen (trust whatever the backend claims, no checks, no cost); the
access-control monitor performs the paper's checks:

1. **binding** — the caller domain's *measured identity* must equal the
   identity the instance was created for (defeats domid recycling and
   rogue backend re-binding);
2. **policy** — the (identity, instance, ordinal-class) triple must be
   granted (defeats over-broad command access, e.g. a guest driving
   owner-admin ordinals at another instance);
3. **audit** — the decision is appended to the hash-chained log.

The monitor also owns the **authorization decision cache**: the paper's
argument is that these checks are a small per-command constant, and for
the common case — the same bound guest re-issuing the same command class
at the same instance — the full identity + policy walk is provably
redundant.  A hit is keyed by (caller domid, *live* launch measurement,
instance, ordinal class) and charges only ``ac.policy.cache_hit``.  Any
event that could change a decision bumps the cache epoch, so revocation
takes effect on the very next command:

* policy mutation (rule add/revoke — tracked via ``PolicyEngine.version``),
* identity re-registration or forgetting (``IdentityRegistry.version``),
* instance destruction or creation (the monitor's own epoch counter).

A rebuilt domain under a recycled domid misses the cache even within an
epoch because the key includes the live measurement, and only *allow*
decisions are ever cached.  Audit records are still appended on every
command, hit or miss, so the hash chain is complete either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.audit import AuditLog
from repro.core.config import AccessControlConfig
from repro.core.identity import IdentityRegistry
from repro.core.policy import PolicyEngine, classify_ordinal
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.obs.trace import NULL_SPAN
from repro.sim.timing import charge
from repro.tpm.constants import ordinal_name
from repro.tpm.marshal import ParsedCommand, parse_command
from repro.util.errors import IdentityError, MarshalError
from repro.xen.domain import Domain

_AC_DECISIONS_ALLOW = obs_counters.counter("ac.decisions", outcome="allow")
_AC_DECISIONS_DENY = obs_counters.counter("ac.decisions", outcome="deny")
_AC_CACHE_HIT = obs_counters.counter("ac.cache", result="hit")
_AC_CACHE_MISS = obs_counters.counter("ac.cache", result="miss")
#: per-class ``ac.commands`` handles, filled on first sight of each class
_AC_COMMANDS: Dict[str, obs_counters.CounterHandle] = {}


def _ac_commands(cls: str) -> obs_counters.CounterHandle:
    handle = _AC_COMMANDS.get(cls)
    if handle is None:
        handle = _AC_COMMANDS[cls] = obs_counters.counter(
            "ac.commands", cls=cls
        )
    return handle


@dataclass(frozen=True, slots=True)
class AuthorizationResult:
    """What the monitor concluded for one command.

    ``parsed`` carries the wire frame the monitor already parsed so the
    dispatch layer below never re-parses it (parse-once fast path); it is
    ``None`` when the monitor did not need to parse (baseline) or the
    frame was malformed.
    """

    allowed: bool
    subject: str
    operation: str
    reason: str
    parsed: Optional[ParsedCommand] = None


class Monitor:
    """Interface both monitors implement."""

    #: optional resilience gate: ``(instance_id, CommandClass) -> deny
    #: reason or None``.  Installed by the supervisor; consulted by the
    #: access-control monitor so degraded-mode ordinal gating is enforced
    #: at the reference monitor, not only at the ring's admission layer.
    health_gate = None
    #: optional companion index (``Supervisor.unhealthy_instances``):
    #: instance ids with a non-healthy record.  When present, the gate
    #: call is skipped for ids not listed — one dict-membership test per
    #: command in the all-green steady state.  ``None`` means "no index,
    #: always consult the gate".
    health_index = None

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        raise NotImplementedError

    def on_instance_created(
        self, instance_id: int, identity_hex: str, profile=None
    ) -> None:
        """Hook: a new instance was bound to an identity."""

    def on_instance_destroyed(self, instance_id: int) -> None:
        """Hook: an instance disappeared."""

    def on_fault(self, instance_id: int, exc: Exception) -> None:
        """Hook: a subsystem fault surfaced as a degraded response."""

    def on_rebind_denied(
        self, subject: str, instance_id: int, reason: str
    ) -> None:
        """Hook: a backend re-bind failed the identity-binding check."""


class BaselineMonitor(Monitor):
    """Stock Xen vTPM behaviour: no checks, no charges, allow everything."""

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        return AuthorizationResult(
            allowed=True,
            subject=f"dom{caller.domid}",
            operation="*",
            reason="baseline: backend-claimed binding trusted",
        )


#: TEST-ONLY fault-injection hook for the verification subsystem.  When
#: true, the decision cache's composite epoch ignores policy-version
#: bumps, so a cached *allow* survives a revocation — exactly the class
#: of bug the conformance explorer exists to catch.  Never set outside
#: ``repro verify --inject-bug`` self-checks and tests.
INJECT_STALE_POLICY_EPOCH = False


class AccessControlMonitor(Monitor):
    """The paper's reference monitor."""

    def __init__(
        self,
        identities: IdentityRegistry,
        policy: PolicyEngine,
        audit: AuditLog,
        config: Optional[AccessControlConfig] = None,
    ) -> None:
        self.identities = identities
        self.policy = policy
        self.audit = audit
        self.config = config or AccessControlConfig()
        self.checks = 0
        self.denials = 0
        # -- decision cache ------------------------------------------------
        #: (domid, live measurement, instance, class) -> (subject, reason)
        self._cache: Dict[Tuple, Tuple[str, str]] = {}
        #: monitor-local epoch component (instance lifecycle events)
        self._epoch = 0
        #: the composite epoch the current cache contents were built under
        self._cache_epoch: Tuple[int, int, int] = (-1, -1, -1)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache plumbing ----------------------------------------------------------

    def invalidate_cache(self) -> None:
        """Force every cached decision to be re-derived (new epoch)."""
        self._epoch += 1

    def _current_epoch(self) -> Tuple[int, int, int]:
        return (self._epoch, self.policy.version, self.identities.version)

    # -- lifecycle hooks ---------------------------------------------------------

    def on_instance_created(
        self, instance_id: int, identity_hex: str, profile=None
    ) -> None:
        """Grant the owning identity its rights on the instance.

        ``profile`` (a :class:`~repro.core.profiles.PolicyProfile`) narrows
        the grant; the default is the full owner profile.
        """
        self._epoch += 1
        if self.config.policy_check:
            if profile is None:
                self.policy.grant_owner(identity_hex, instance_id)
            else:
                profile.apply(self.policy, identity_hex, instance_id)

    def on_instance_destroyed(self, instance_id: int) -> None:
        self._epoch += 1
        for rule in self.policy.rules_for_instance(instance_id):
            self.policy.revoke_rule(rule.rule_id)

    # -- the per-command path ----------------------------------------------------

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        tracer = obs_trace._current_tracer
        if tracer is None:
            result = self._authorize(
                caller, instance_id, bound_identity_hex, wire, NULL_SPAN, None
            )
        else:
            with tracer.start_span("authz", {"instance": instance_id}) as span:
                result = self._authorize(
                    caller, instance_id, bound_identity_hex, wire, span,
                    tracer,
                )
        if obs_counters._current_registry is not None:
            cls = (
                classify_ordinal(result.parsed.ordinal).value
                if result.parsed is not None else "malformed"
            )
            _ac_commands(cls).inc()
            if result.allowed:
                _AC_DECISIONS_ALLOW.inc()
            else:
                _AC_DECISIONS_DENY.inc()
        return result

    def _authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes, span, tracer,
    ) -> AuthorizationResult:
        self.checks += 1
        if tracer is None:
            try:
                parsed = parse_command(wire)
            except MarshalError as exc:  # malformed frames: deny early
                return self._deny(
                    f"dom{caller.domid}", instance_id, "malformed",
                    f"unparseable command frame: {exc}",
                )
        else:
            with tracer.start_span("parse"):
                try:
                    parsed = parse_command(wire)
                except MarshalError as exc:
                    return self._deny(
                        f"dom{caller.domid}", instance_id, "malformed",
                        f"unparseable command frame: {exc}",
                    )
        ordinal = parsed.ordinal
        config = self.config
        command_class = classify_ordinal(ordinal)

        # Resilience gating runs before the decision cache: health state
        # changes without bumping any cache epoch, so a cached allow must
        # never bypass a quarantine.  The gate itself is charge-free.
        # With the supervisor's unhealthy-instance index installed, the
        # steady-state cost is one membership test; the full gate walk
        # runs only while this instance is actually unhealthy.
        gate = self.health_gate
        if gate is not None:
            index = self.health_index
            if index is None or instance_id in index:
                veto = gate(instance_id, command_class)
                if veto is not None:
                    return self._deny(
                        f"dom{caller.domid}", instance_id,
                        ordinal_name(ordinal), veto,
                    )

        cache_key: Optional[Tuple] = None
        if config.authz_cache:
            epoch = (self._epoch, self.policy.version, self.identities.version)
            if INJECT_STALE_POLICY_EPOCH:  # test-only, see module docstring
                epoch = (epoch[0], self._cache_epoch[1], epoch[2])
            if epoch != self._cache_epoch:
                self._cache.clear()
                self._cache_epoch = epoch
            cache_key = (
                caller.domid, caller.measurement, instance_id, command_class,
            )
            hit = self._cache.get(cache_key)
            if hit is not None:
                self.cache_hits += 1
                _AC_CACHE_HIT.inc()
                charge("ac.policy.cache_hit")
                subject, reason = hit
                operation = ordinal_name(ordinal)
                if config.audit:
                    if tracer is None:
                        self.audit.append_buffered(
                            subject, instance_id, operation, True, reason
                        )
                    else:
                        span.set("cache", "hit")
                        with tracer.start_span("audit"):
                            self.audit.append_buffered(
                                subject, instance_id, operation, True, reason
                            )
                elif tracer is not None:
                    span.set("cache", "hit")
                return AuthorizationResult(
                    allowed=True, subject=subject, operation=operation,
                    reason=reason, parsed=parsed,
                )
            self.cache_misses += 1
            span.set("cache", "miss")
            _AC_CACHE_MISS.inc()

        operation = ordinal_name(ordinal)

        # 1. identity binding
        subject = f"dom{caller.domid}"
        if not config.identity_check:
            # Policy-only ablation: use the registered identity as the
            # subject without re-verifying it (trust-but-lookup), so policy
            # rules keyed by identity still apply.
            known = self.identities.lookup(caller.domid)
            if known is not None:
                subject = known.hex
        if config.identity_check:
            try:
                identity = self.identities.verify_current(caller)
            except IdentityError as exc:
                return self._deny(subject, instance_id, operation, str(exc))
            subject = identity.hex
            if bound_identity_hex is not None and subject != bound_identity_hex:
                return self._deny(
                    subject,
                    instance_id,
                    operation,
                    f"instance {instance_id} is bound to identity "
                    f"{bound_identity_hex[:12]}…, caller is {subject[:12]}…",
                )

        # 2. policy
        if config.policy_check:
            decision = self.policy.decide(subject, instance_id, ordinal)
            if not decision.allowed:
                return self._deny(subject, instance_id, operation, decision.reason)
            reason = decision.reason
        else:
            reason = "policy check disabled"

        # Only allows are cached; denials always re-derive so a fixed
        # policy or repaired identity takes effect immediately.
        if cache_key is not None:
            self._cache[cache_key] = (subject, reason)

        # 3. audit the allow
        if config.audit:
            if tracer is None:
                self.audit.append_buffered(
                    subject, instance_id, operation, True, reason
                )
            else:
                with tracer.start_span("audit"):
                    self.audit.append_buffered(
                        subject, instance_id, operation, True, reason
                    )
        return AuthorizationResult(
            allowed=True, subject=subject, operation=operation, reason=reason,
            parsed=parsed,
        )

    def on_fault(self, instance_id: int, exc: Exception) -> None:
        """A fault burned through the retry budget (or was a hard failure)
        and degraded into a ``TPM_FAIL`` response — chain it into the audit
        log so operators can distinguish chaos from attack."""
        if self.config.audit:
            self.audit.append_buffered(
                subject="manager",
                instance=instance_id,
                operation="FAULT-DEGRADED",
                allowed=False,
                reason=str(exc),
            )

    def on_rebind_denied(
        self, subject: str, instance_id: int, reason: str
    ) -> None:
        """A backend re-bind failed the fail-closed identity check: count
        it as a denial and chain it into the audit log — this is the rogue
        re-binding attack being stopped at the configuration layer."""
        self.denials += 1
        if obs_counters._current_registry is not None:
            _AC_DECISIONS_DENY.inc()
        if self.config.audit:
            self.audit.append_buffered(
                subject, instance_id, "VTPM_Rebind", False, reason
            )

    def _deny(
        self, subject: str, instance_id: int, operation: str, reason: str
    ) -> AuthorizationResult:
        self.denials += 1
        if self.config.audit:
            tracer = obs_trace._current_tracer
            if tracer is None:
                self.audit.append_buffered(
                    subject, instance_id, operation, False, reason
                )
            else:
                with tracer.start_span("audit"):
                    self.audit.append_buffered(
                        subject, instance_id, operation, False, reason
                    )
        return AuthorizationResult(
            allowed=False, subject=subject, operation=operation, reason=reason
        )
