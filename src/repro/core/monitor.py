"""The reference monitor on the vTPM command path.

The vTPM manager calls :meth:`Monitor.authorize` for every command packet
*before* it reaches a vTPM instance.  The baseline monitor reproduces
stock Xen (trust whatever the backend claims, no checks, no cost); the
access-control monitor performs the paper's checks:

1. **binding** — the caller domain's *measured identity* must equal the
   identity the instance was created for (defeats domid recycling and
   rogue backend re-binding);
2. **policy** — the (identity, instance, ordinal-class) triple must be
   granted (defeats over-broad command access, e.g. a guest driving
   owner-admin ordinals at another instance);
3. **audit** — the decision is appended to the hash-chained log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.audit import AuditLog
from repro.core.config import AccessControlConfig
from repro.core.identity import IdentityRegistry
from repro.core.policy import PolicyEngine
from repro.tpm.constants import ordinal_name
from repro.tpm.marshal import parse_command
from repro.util.errors import AccessDenied, IdentityError, MarshalError
from repro.xen.domain import Domain


@dataclass(frozen=True)
class AuthorizationResult:
    """What the monitor concluded for one command."""

    allowed: bool
    subject: str
    operation: str
    reason: str


class Monitor:
    """Interface both monitors implement."""

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        raise NotImplementedError

    def on_instance_created(
        self, instance_id: int, identity_hex: str, profile=None
    ) -> None:
        """Hook: a new instance was bound to an identity."""

    def on_instance_destroyed(self, instance_id: int) -> None:
        """Hook: an instance disappeared."""

    def on_fault(self, instance_id: int, exc: Exception) -> None:
        """Hook: a subsystem fault surfaced as a degraded response."""


class BaselineMonitor(Monitor):
    """Stock Xen vTPM behaviour: no checks, no charges, allow everything."""

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        return AuthorizationResult(
            allowed=True,
            subject=f"dom{caller.domid}",
            operation="*",
            reason="baseline: backend-claimed binding trusted",
        )


class AccessControlMonitor(Monitor):
    """The paper's reference monitor."""

    def __init__(
        self,
        identities: IdentityRegistry,
        policy: PolicyEngine,
        audit: AuditLog,
        config: Optional[AccessControlConfig] = None,
    ) -> None:
        self.identities = identities
        self.policy = policy
        self.audit = audit
        self.config = config or AccessControlConfig()
        self.checks = 0
        self.denials = 0

    def on_instance_created(
        self, instance_id: int, identity_hex: str, profile=None
    ) -> None:
        """Grant the owning identity its rights on the instance.

        ``profile`` (a :class:`~repro.core.profiles.PolicyProfile`) narrows
        the grant; the default is the full owner profile.
        """
        if self.config.policy_check:
            if profile is None:
                self.policy.grant_owner(identity_hex, instance_id)
            else:
                profile.apply(self.policy, identity_hex, instance_id)

    def on_instance_destroyed(self, instance_id: int) -> None:
        doomed = [
            r.rule_id
            for r in self.policy._rules.values()
            if r.instance == instance_id
        ]
        for rule_id in doomed:
            self.policy.revoke_rule(rule_id)

    def authorize(
        self, caller: Domain, instance_id: int, bound_identity_hex: Optional[str],
        wire: bytes,
    ) -> AuthorizationResult:
        self.checks += 1
        try:
            ordinal = parse_command(wire).ordinal
        except (MarshalError, Exception) as exc:  # malformed frames: deny early
            if not isinstance(exc, MarshalError):
                raise
            return self._deny(
                f"dom{caller.domid}", instance_id, "malformed",
                f"unparseable command frame: {exc}",
            )
        operation = ordinal_name(ordinal)

        # 1. identity binding
        subject = f"dom{caller.domid}"
        if not self.config.identity_check:
            # Policy-only ablation: use the registered identity as the
            # subject without re-verifying it (trust-but-lookup), so policy
            # rules keyed by identity still apply.
            known = self.identities.lookup(caller.domid)
            if known is not None:
                subject = known.hex
        if self.config.identity_check:
            try:
                identity = self.identities.verify_current(caller)
            except IdentityError as exc:
                return self._deny(subject, instance_id, operation, str(exc))
            subject = identity.hex
            if bound_identity_hex is not None and subject != bound_identity_hex:
                return self._deny(
                    subject,
                    instance_id,
                    operation,
                    f"instance {instance_id} is bound to identity "
                    f"{bound_identity_hex[:12]}…, caller is {subject[:12]}…",
                )

        # 2. policy
        if self.config.policy_check:
            decision = self.policy.decide(subject, instance_id, ordinal)
            if not decision.allowed:
                return self._deny(subject, instance_id, operation, decision.reason)
            reason = decision.reason
        else:
            reason = "policy check disabled"

        # 3. audit the allow
        if self.config.audit:
            self.audit.append(subject, instance_id, operation, True, reason)
        return AuthorizationResult(
            allowed=True, subject=subject, operation=operation, reason=reason
        )

    def on_fault(self, instance_id: int, exc: Exception) -> None:
        """A fault burned through the retry budget (or was a hard failure)
        and degraded into a ``TPM_FAIL`` response — chain it into the audit
        log so operators can distinguish chaos from attack."""
        if self.config.audit:
            self.audit.append(
                subject="manager",
                instance=instance_id,
                operation="FAULT-DEGRADED",
                allowed=False,
                reason=str(exc),
            )

    def _deny(
        self, subject: str, instance_id: int, operation: str, reason: str
    ) -> AuthorizationResult:
        self.denials += 1
        if self.config.audit:
            self.audit.append(subject, instance_id, operation, False, reason)
        return AuthorizationResult(
            allowed=False, subject=subject, operation=operation, reason=reason
        )
