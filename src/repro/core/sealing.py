"""Sealed persistent state for vTPM instances.

The storage half of the defence.  The manager owns a random **root
secret**; every instance's state file is encrypted (authenticated) with a
key derived from that root plus the instance UUID and owning identity.
The root itself is kept *sealed to the hardware TPM* bound to the
platform's boot PCRs, so:

* a stolen state file is ciphertext;
* a stolen state file **plus** the sealed-root file is still useless off
  the original platform (the hardware TPM refuses to unseal there);
* on-platform, only the measured manager stack (matching PCRs) can unlock.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.crypto.kdf import derive_key
from repro.crypto.random_source import RandomSource
from repro.crypto.symmetric import EncryptedBlob, SymmetricKey
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KH_SRK
from repro.tpm.pcr import PcrSelection
from repro.util.errors import SealingError, TpmError

ROOT_SECRET_SIZE = 32


class StateSealer:
    """Encrypts/decrypts vTPM instance state under a TPM-sealed root."""

    def __init__(
        self,
        hw_client: TpmClient,
        srk_auth: bytes,
        rng: RandomSource,
    ) -> None:
        self._hw = hw_client
        self._srk_auth = srk_auth
        self._rng = rng
        self._root: Optional[bytes] = None
        self._blob_auth = rng.bytes(20)
        self.sealed_root_blob: Optional[bytes] = None

    # -- root lifecycle --------------------------------------------------------

    def initialize(self, pcr_indices: Iterable[int] = (0, 1, 2)) -> bytes:
        """Generate the root secret and seal it to the hardware TPM.

        Returns the sealed blob (safe to persist next to the state files).
        """
        indices = list(pcr_indices)
        self._root = self._rng.bytes(ROOT_SECRET_SIZE)
        selection = PcrSelection(indices)
        digest = None
        if indices:
            # Bind to the *current* platform state: read live PCRs through
            # the hardware TPM and compute the composite the verifier way.
            from repro.tpm.pcr import PcrBank

            values = [self._hw.pcr_read(i) for i in indices]
            digest = PcrBank.composite_of(selection, values)
        self.sealed_root_blob = self._hw.seal(
            TPM_KH_SRK,
            self._srk_auth,
            self._root,
            self._blob_auth,
            pcr_selection=selection if indices else None,
            digest_at_release=digest,
        )
        return self.sealed_root_blob

    def lock(self) -> None:
        """Drop the in-memory root (manager shutdown)."""
        self._root = None

    def unlock(self, sealed_blob: Optional[bytes] = None) -> None:
        """Recover the root via hardware-TPM unseal.

        Fails with :class:`SealingError` if the platform PCRs moved or the
        blob belongs to a different machine.
        """
        blob = sealed_blob or self.sealed_root_blob
        if blob is None:
            raise SealingError("no sealed root blob to unlock from")
        try:
            self._root = self._hw.unseal(TPM_KH_SRK, self._srk_auth, blob, self._blob_auth)
        except TpmError as exc:
            raise SealingError(
                f"hardware TPM refused to unseal the root (code {exc.code:#x}); "
                "wrong platform or changed boot measurements"
            ) from exc
        if len(self._root) != ROOT_SECRET_SIZE:
            self._root = None
            raise SealingError("unsealed root has the wrong size")

    @property
    def unlocked(self) -> bool:
        return self._root is not None

    # -- per-instance state protection ------------------------------------------

    def _instance_key(self, instance_uuid: str, identity_hex: str) -> SymmetricKey:
        if self._root is None:
            raise SealingError("sealer is locked; unlock() first")
        material = derive_key(
            self._root,
            instance_uuid.encode("utf-8"),
            b"vtpm-state|" + identity_hex.encode("utf-8"),
            32,
        )
        return SymmetricKey(material)

    def seal_state(
        self, instance_uuid: str, identity_hex: str, state: bytes
    ) -> bytes:
        """Encrypt one instance's state blob for rest."""
        key = self._instance_key(instance_uuid, identity_hex)
        return key.encrypt(state, self._rng).serialize()

    def unseal_state(
        self, instance_uuid: str, identity_hex: str, blob: bytes
    ) -> bytes:
        """Decrypt a state file; tamper or wrong identity/uuid fails closed."""
        key = self._instance_key(instance_uuid, identity_hex)
        try:
            return key.decrypt(EncryptedBlob.deserialize(blob))
        except Exception as exc:
            raise SealingError(f"state unseal failed: {exc}") from exc
