"""Per-command vTPM authorization policy.

Ordinals group into a handful of **command classes** (read, measure,
use-key, storage-admin, owner-admin, session); rules grant a (subject,
instance, class) triple, with wildcards on any position.  The engine is
deny-by-default and compiles rules into a hash table so the per-command
decision is an O(1) amortized lookup over at most eight key shapes — this
is what keeps the monitor's overhead flat as policies grow (Table 3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.sim.timing import charge
from repro.tpm import constants as tc
from repro.util.errors import AccessControlError

#: wildcard sentinel usable for subject and instance positions
ANY = "*"


class CommandClass(enum.Enum):
    """Coarse authorization classes over TPM ordinals."""

    READ = "read"              # non-mutating queries
    MEASURE = "measure"        # PCR extend/reset
    USE_KEY = "use-key"        # crypto with loaded keys, seal/unseal
    STORAGE_ADMIN = "storage-admin"  # key loading/creation, NV, counters
    OWNER_ADMIN = "owner-admin"      # ownership lifecycle
    SESSION = "session"        # auth-session management
    UNKNOWN = "unknown"        # unrecognised ordinals (never allowed)


_CLASS_BY_ORDINAL: Dict[int, CommandClass] = {
    tc.TPM_ORD_PcrRead: CommandClass.READ,
    tc.TPM_ORD_GetRandom: CommandClass.READ,
    tc.TPM_ORD_GetCapability: CommandClass.READ,
    tc.TPM_ORD_ReadCounter: CommandClass.READ,
    tc.TPM_ORD_ReadPubek: CommandClass.READ,
    tc.TPM_ORD_SelfTestFull: CommandClass.READ,
    tc.TPM_ORD_ContinueSelfTest: CommandClass.READ,
    tc.TPM_ORD_Startup: CommandClass.READ,
    tc.TPM_ORD_SaveState: CommandClass.READ,
    tc.TPM_ORD_Extend: CommandClass.MEASURE,
    tc.TPM_ORD_PCR_Reset: CommandClass.MEASURE,
    tc.TPM_ORD_Quote: CommandClass.USE_KEY,
    tc.TPM_ORD_Sign: CommandClass.USE_KEY,
    tc.TPM_ORD_Seal: CommandClass.USE_KEY,
    tc.TPM_ORD_Unseal: CommandClass.USE_KEY,
    tc.TPM_ORD_UnBind: CommandClass.USE_KEY,
    tc.TPM_ORD_GetPubKey: CommandClass.USE_KEY,
    tc.TPM_ORD_ActivateIdentity: CommandClass.USE_KEY,
    tc.TPM_ORD_CertifyKey: CommandClass.USE_KEY,
    tc.TPM_ORD_CreateWrapKey: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_LoadKey2: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_NV_DefineSpace: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_NV_WriteValue: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_NV_ReadValue: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_CreateCounter: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_IncrementCounter: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_ReleaseCounter: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_MakeIdentity: CommandClass.OWNER_ADMIN,
    tc.TPM_ORD_TakeOwnership: CommandClass.OWNER_ADMIN,
    tc.TPM_ORD_OwnerClear: CommandClass.OWNER_ADMIN,
    tc.TPM_ORD_ForceClear: CommandClass.OWNER_ADMIN,
    tc.TPM_ORD_ChangeAuth: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_CreateMigrationBlob: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_ConvertMigrationBlob: CommandClass.STORAGE_ADMIN,
    tc.TPM_ORD_DirWriteAuth: CommandClass.OWNER_ADMIN,
    tc.TPM_ORD_DirRead: CommandClass.READ,
    tc.TPM_ORD_GetTestResult: CommandClass.READ,
    tc.TPM_ORD_OIAP: CommandClass.SESSION,
    tc.TPM_ORD_OSAP: CommandClass.SESSION,
    tc.TPM_ORD_FlushSpecific: CommandClass.SESSION,
}

#: classes a vTPM owner needs for normal operation
OWNER_CLASSES = (
    CommandClass.READ,
    CommandClass.MEASURE,
    CommandClass.USE_KEY,
    CommandClass.STORAGE_ADMIN,
    CommandClass.OWNER_ADMIN,
    CommandClass.SESSION,
)


def classify_ordinal(ordinal: int) -> CommandClass:
    """Map an ordinal to its authorization class."""
    return _CLASS_BY_ORDINAL.get(ordinal, CommandClass.UNKNOWN)


@dataclass(frozen=True)
class PolicyRule:
    """Grant ``subject`` the right to run ``command_class`` on ``instance``.

    ``subject`` is an identity measurement hex string (or :data:`ANY`);
    ``instance`` is a vTPM instance id (or :data:`ANY`).
    """

    rule_id: int
    subject: str
    instance: object  # int instance id or ANY
    command_class: CommandClass

    def key(self) -> Tuple[str, object, CommandClass]:
        return (self.subject, self.instance, self.command_class)


@dataclass(frozen=True)
class Decision:
    """Outcome of a policy lookup."""

    allowed: bool
    reason: str
    rule_id: Optional[int] = None


class PolicyEngine:
    """Deny-by-default rule store with compiled O(1) decisions."""

    def __init__(self) -> None:
        self._rules: Dict[int, PolicyRule] = {}
        self._index: Dict[Tuple[str, object, CommandClass], int] = {}
        # Secondary indexes so revocation sweeps are O(rules touched), not
        # O(all rules): rule ids by subject and by (exact) instance.
        self._by_subject: Dict[str, set] = {}
        self._by_instance: Dict[object, set] = {}
        self._ids = itertools.count(1)
        self.decisions = 0
        #: bumped on every rule add/revoke; the monitor's decision cache
        #: treats any change as a new epoch, so revocation is immediate
        self.version = 0

    # -- administration ------------------------------------------------------

    def add_rule(
        self,
        subject: str,
        instance: object,
        command_class: CommandClass | Iterable[CommandClass],
    ) -> list[PolicyRule]:
        """Install one rule per class given; returns the created rules."""
        classes = (
            [command_class]
            if isinstance(command_class, CommandClass)
            else list(command_class)
        )
        if not classes:
            raise AccessControlError("rule must name at least one command class")
        created = []
        for cls in classes:
            charge("ac.policy.compile", 1)
            rule = PolicyRule(
                rule_id=next(self._ids),
                subject=subject,
                instance=instance,
                command_class=cls,
            )
            self._rules[rule.rule_id] = rule
            self._index[rule.key()] = rule.rule_id
            self._by_subject.setdefault(rule.subject, set()).add(rule.rule_id)
            self._by_instance.setdefault(rule.instance, set()).add(rule.rule_id)
            self.version += 1
            created.append(rule)
        return created

    def grant_owner(self, subject: str, instance: object) -> list[PolicyRule]:
        """The standard grant: everything an instance owner needs."""
        return self.add_rule(subject, instance, OWNER_CLASSES)

    def revoke_rule(self, rule_id: int) -> None:
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise AccessControlError(f"no policy rule {rule_id}")
        if self._index.get(rule.key()) == rule_id:
            del self._index[rule.key()]
        self._discard_from(self._by_subject, rule.subject, rule_id)
        self._discard_from(self._by_instance, rule.instance, rule_id)
        self.version += 1

    @staticmethod
    def _discard_from(index: Dict[object, set], key: object, rule_id: int) -> None:
        ids = index.get(key)
        if ids is not None:
            ids.discard(rule_id)
            if not ids:
                del index[key]

    def revoke_subject(self, subject: str) -> int:
        """Remove every rule for a subject; returns how many were dropped."""
        doomed = sorted(self._by_subject.get(subject, ()))
        for rule_id in doomed:
            self.revoke_rule(rule_id)
        return len(doomed)

    def revoke_instance(self, instance: object) -> int:
        """Remove every rule naming ``instance`` exactly (not wildcards)."""
        doomed = sorted(self._by_instance.get(instance, ()))
        for rule_id in doomed:
            self.revoke_rule(rule_id)
        return len(doomed)

    def rules_for_instance(self, instance: object) -> list[PolicyRule]:
        """Rules whose instance position names ``instance`` exactly."""
        ids = self._by_instance.get(instance, ())
        return [self._rules[rule_id] for rule_id in sorted(ids)]

    def rules_for_subject(self, subject: str) -> list[PolicyRule]:
        """Rules whose subject position names ``subject`` exactly."""
        ids = self._by_subject.get(subject, ())
        return [self._rules[rule_id] for rule_id in sorted(ids)]

    @property
    def rule_count(self) -> int:
        return len(self._rules)

    # -- persistence ------------------------------------------------------------

    def serialize(self) -> bytes:
        """Stable byte form of the installed rules (admin backup/restore).

        Instances are stored as signed integers; the :data:`ANY` wildcard
        maps to -1.
        """
        from repro.util.bytesio import ByteWriter

        w = ByteWriter()
        w.raw(b"VTPMPOL1")
        rules = [self._rules[rid] for rid in sorted(self._rules)]
        w.u32(len(rules))
        for rule in rules:
            w.sized(rule.subject.encode("utf-8"))
            instance = -1 if rule.instance == ANY else int(rule.instance)
            w.u64(instance & 0xFFFFFFFFFFFFFFFF)
            w.sized(rule.command_class.value.encode("ascii"))
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "PolicyEngine":
        """Rebuild an engine from :meth:`serialize` output."""
        from repro.util.bytesio import ByteReader
        from repro.util.errors import MarshalError

        r = ByteReader(data)
        if r.raw(8) != b"VTPMPOL1":
            raise MarshalError("not a serialized policy")
        engine = PolicyEngine()
        for _ in range(r.u32()):
            subject = r.sized(max_size=256).decode("utf-8")
            raw_instance = r.u64()
            instance: object = (
                ANY if raw_instance == 0xFFFFFFFFFFFFFFFF else raw_instance
            )
            cls = CommandClass(r.sized(max_size=32).decode("ascii"))
            engine.add_rule(subject, instance, cls)
        r.expect_end()
        return engine

    # -- the hot path ---------------------------------------------------------

    def decide(self, subject: str, instance: object, ordinal: int) -> Decision:
        """Authorize one command: checks the four specificity shapes.

        Lookup cost is constant in the number of installed rules — the
        index is a hash table keyed by exact (subject, instance, class)
        triples with wildcards materialized as their own keys.
        """
        charge("ac.policy.lookup")
        self.decisions += 1
        cls = classify_ordinal(ordinal)
        if cls is CommandClass.UNKNOWN:
            return Decision(allowed=False, reason=f"unknown ordinal {ordinal:#x}")
        for key in (
            (subject, instance, cls),
            (subject, ANY, cls),
            (ANY, instance, cls),
            (ANY, ANY, cls),
        ):
            rule_id = self._index.get(key)
            if rule_id is not None:
                return Decision(
                    allowed=True,
                    reason=f"rule {rule_id} grants {cls.value}",
                    rule_id=rule_id,
                )
        return Decision(
            allowed=False,
            reason=f"no rule grants {cls.value} on instance {instance} "
            f"to subject {subject[:12]}",
        )
