"""Deep attestation: chain vTPM quotes to the hardware TPM.

A vTPM quote only proves "some software TPM signed these PCRs" — a
challenger must also learn that the signing vTPM really runs on a
trustworthy platform, bound to the VM it claims.  This module implements
the certification chain the vTPM literature calls *deep attestation*:

1. the platform owner mints an **AIK on the hardware TPM**;
2. the manager issues an **endorsement certificate** for a guest's vTPM
   key: a hardware-AIK signature over (vTPM key modulus, the VM's measured
   identity, the platform's boot-PCR composite);
3. a challenger verifies guest quotes with the vTPM key, the endorsement
   with the hardware AIK, and the platform state inside the endorsement.

Endorsement requests flow through the reference monitor: only the VM whose
identity an instance is bound to can get keys endorsed for it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.rsa import RsaPublicKey
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KH_SRK
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.util.bytesio import ByteReader, ByteWriter
from repro.util.errors import AccessControlError, AccessDenied

CERT_MAGIC = b"VTPMCERT"
#: platform boot PCRs covered by every endorsement
PLATFORM_PCRS = (0, 1, 2)


@dataclass(frozen=True)
class EndorsementCertificate:
    """A hardware-AIK-signed binding of a vTPM key to a VM identity."""

    vtpm_key_modulus: bytes
    identity_hex: str
    platform_composite: bytes
    signature: bytes

    def statement(self) -> bytes:
        """The exact bytes the hardware AIK signed."""
        w = ByteWriter()
        w.raw(CERT_MAGIC)
        w.sized(self.vtpm_key_modulus)
        w.sized(self.identity_hex.encode("ascii"))
        w.raw(self.platform_composite)
        return w.getvalue()

    def serialize(self) -> bytes:
        w = ByteWriter()
        w.raw(self.statement())
        w.sized(self.signature)
        return w.getvalue()

    @staticmethod
    def deserialize(data: bytes) -> "EndorsementCertificate":
        r = ByteReader(data)
        magic = r.raw(len(CERT_MAGIC))
        if magic != CERT_MAGIC:
            raise AccessControlError("not an endorsement certificate")
        modulus = r.sized(max_size=1 << 12)
        identity_hex = r.sized(max_size=256).decode("ascii")
        composite = r.raw(20)
        signature = r.sized(max_size=1 << 12)
        r.expect_end()
        return EndorsementCertificate(
            vtpm_key_modulus=modulus,
            identity_hex=identity_hex,
            platform_composite=composite,
            signature=signature,
        )


class VtpmCertifier:
    """Manager-side endorsement issuer backed by a hardware AIK."""

    def __init__(
        self,
        hw_client: TpmClient,
        owner_auth: bytes,
        srk_auth: bytes,
        aik_auth: bytes,
    ) -> None:
        self._hw = hw_client
        self._aik_auth = aik_auth
        aik_blob, _binding = hw_client.make_identity(
            owner_auth, aik_auth, b"vtpm-certifier"
        )
        self._aik_handle = hw_client.load_key2(TPM_KH_SRK, srk_auth, aik_blob)
        self.aik_public: RsaPublicKey = hw_client.get_pub_key(
            self._aik_handle, aik_auth
        )
        self.certificates_issued = 0

    def platform_composite(self) -> bytes:
        """Composite of the platform boot PCRs, read live from hardware."""
        selection = PcrSelection(PLATFORM_PCRS)
        values = [self._hw.pcr_read(i) for i in PLATFORM_PCRS]
        return PcrBank.composite_of(selection, values)

    def endorse(
        self,
        manager,                      # VtpmManager
        requester_domid: int,
        instance_id: int,
        vtpm_key_public: RsaPublicKey,
    ) -> EndorsementCertificate:
        """Issue an endorsement after the monitor-style binding check.

        The requester must be the domain whose measured identity the
        instance is bound to — a rogue guest cannot obtain certificates
        naming a victim's identity.
        """
        instance = manager.instance(instance_id)
        identity_hex = instance.bound_identity_hex
        if identity_hex is None:
            raise AccessControlError(
                "endorsement requires an identity-bound instance "
                "(improved mode)"
            )
        if manager.identities is None:
            raise AccessControlError("manager has no identity registry")
        caller = manager.xen.domain(requester_domid)
        caller_identity = manager.identities.verify_current(caller)
        if caller_identity.hex != identity_hex:
            raise AccessDenied(
                caller_identity.hex,
                "endorse",
                f"instance {instance_id} is bound to {identity_hex[:12]}…",
            )
        cert = EndorsementCertificate(
            vtpm_key_modulus=vtpm_key_public.modulus_bytes(),
            identity_hex=identity_hex,
            platform_composite=self.platform_composite(),
            signature=b"",
        )
        digest = hashlib.sha1(cert.statement()).digest()
        signature = self._hw.sign(self._aik_handle, self._aik_auth, digest)
        self.certificates_issued += 1
        return EndorsementCertificate(
            vtpm_key_modulus=cert.vtpm_key_modulus,
            identity_hex=cert.identity_hex,
            platform_composite=cert.platform_composite,
            signature=signature,
        )


def verify_endorsement(
    cert: EndorsementCertificate,
    hw_aik_public: RsaPublicKey,
    expected_identity_hex: str | None = None,
    expected_platform_composite: bytes | None = None,
) -> bool:
    """Challenger-side verification of the whole chain link.

    Checks the hardware-AIK signature, and optionally that the endorsed
    identity and platform state match the challenger's reference values.
    """
    digest = hashlib.sha1(cert.statement()).digest()
    if not hw_aik_public.verify_sha1(digest, cert.signature):
        return False
    if expected_identity_hex is not None and cert.identity_hex != expected_identity_hex:
        return False
    if (
        expected_platform_composite is not None
        and cert.platform_composite != expected_platform_composite
    ):
        return False
    return True
