"""Bounded retry-with-backoff, paid for in virtual time.

The recovery layers (back-end command forwarding, storage persistence,
instance restore, the migration driver) all share this loop: attempt the
operation, catch *transient* injected faults, charge an exponentially
growing backoff against the virtual clock, and try again.  Non-transient
faults — the injector's model of a hard crash — propagate untouched, and
a fault that survives every attempt surfaces as
:class:`~repro.util.errors.RetryExhausted`.

Two refinements keep the loop honest at fleet scale:

* **bounded seeded jitter** — when many instances hit the same transient
  fault at once, pure exponential backoff synchronizes their retry waves
  (every instance resends in lockstep, re-colliding forever).  Each
  backoff step is therefore stretched by a deterministic fraction in
  ``[0, 0.5)`` derived by hashing ``(site, jitter_token, attempt)``, so
  callers that pass a per-instance token (the back-end passes its
  instance id) de-correlate without sacrificing replay determinism.  The
  nominal step is the *minimum*, never shortened.
* **total-backoff cap** — the cumulative backoff charged by one
  ``with_retry`` episode is capped, so a caller that raises ``attempts``
  cannot stall the virtual clock unboundedly; attempts beyond the cap
  still run, they just stop paying.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.faults.injector import note_recovery, note_retry
from repro.obs import counters as obs_counters
from repro.sim.timing import charge, get_context
from repro.util.errors import FaultInjected, RetryExhausted

T = TypeVar("T")

#: default attempt budget for transient faults
DEFAULT_ATTEMPTS = 4
#: first backoff step; doubles per retry (virtual microseconds)
DEFAULT_BACKOFF_US = 250.0
#: default ceiling on the *cumulative* backoff one episode may charge
DEFAULT_MAX_TOTAL_BACKOFF_US = 60_000.0
#: jitter stretches each step by up to this fraction (never shortens it)
JITTER_FRAC = 0.5


def is_transient(exc: Exception) -> bool:
    return isinstance(exc, FaultInjected) and exc.transient


def backoff_jitter_frac(site: str, token: object, attempt: int) -> float:
    """Deterministic jitter fraction in ``[0, JITTER_FRAC)``.

    A pure function of (site, token, attempt) — no global state — so the
    same seeded run replays the identical backoff schedule, while two
    instances retrying the same site at the same moment diverge as long
    as they pass different tokens.
    """
    digest = hashlib.sha256(
        f"{site}|{token}|{attempt}".encode("utf-8")
    ).digest()
    return JITTER_FRAC * (int.from_bytes(digest[:8], "big") / 2.0 ** 64)


def with_retry(
    attempt: Callable[..., T],
    *args,
    site: str,
    attempts: int = DEFAULT_ATTEMPTS,
    base_backoff_us: float = DEFAULT_BACKOFF_US,
    retry_on: Tuple[Type[Exception], ...] = (FaultInjected,),
    jitter_token: Optional[object] = None,
    max_total_backoff_us: float = DEFAULT_MAX_TOTAL_BACKOFF_US,
) -> T:
    """Run ``attempt(*args)`` with bounded backoff on transient injected faults.

    Each retry charges ``fault.retry.backoff`` for ``base_backoff_us * 2^i``
    virtual microseconds (stretched by the seeded jitter when
    ``jitter_token`` is given), so recovery latency is measurable on the
    same clock as everything else.  The cumulative charge is capped at
    ``max_total_backoff_us``.  A successful retry is recorded as one
    recovery (with the virtual time the whole episode took); an exhausted
    episode is counted per site in the ambient counter registry
    (``faults.retry_exhausted{site=…}``) before it raises.

    Positional arguments are forwarded to ``attempt`` so per-call hot paths
    (the back-end forwarding every command) need not allocate a closure.
    """
    start_us = get_context().clock.now_us
    last: Exception | None = None
    backoff_spent_us = 0.0
    for i in range(attempts):
        try:
            result = attempt(*args)
        except retry_on as exc:
            if not is_transient(exc):
                raise
            last = exc
            note_retry(site)
            step_us = base_backoff_us * (2.0 ** i)
            if jitter_token is not None:
                step_us *= 1.0 + backoff_jitter_frac(site, jitter_token, i)
            step_us = min(step_us, max(0.0, max_total_backoff_us - backoff_spent_us))
            if step_us > 0.0:
                backoff_spent_us += step_us
                charge("fault.retry.backoff", step_us)
            continue
        if last is not None:
            note_recovery(site, get_context().clock.now_us - start_us)
        return result
    assert last is not None
    obs_counters.inc("faults.retry_exhausted", site=site)
    raise RetryExhausted(site, attempts, last)
