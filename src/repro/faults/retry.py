"""Bounded retry-with-backoff, paid for in virtual time.

The recovery layers (back-end command forwarding, storage persistence,
instance restore, the migration driver) all share this loop: attempt the
operation, catch *transient* injected faults, charge an exponentially
growing backoff against the virtual clock, and try again.  Non-transient
faults — the injector's model of a hard crash — propagate untouched, and
a fault that survives every attempt surfaces as
:class:`~repro.util.errors.RetryExhausted`.
"""

from __future__ import annotations

from typing import Callable, Tuple, Type, TypeVar

from repro.faults.injector import note_recovery, note_retry
from repro.sim.timing import charge, get_context
from repro.util.errors import FaultInjected, RetryExhausted

T = TypeVar("T")

#: default attempt budget for transient faults
DEFAULT_ATTEMPTS = 4
#: first backoff step; doubles per retry (virtual microseconds)
DEFAULT_BACKOFF_US = 250.0


def is_transient(exc: Exception) -> bool:
    return isinstance(exc, FaultInjected) and exc.transient


def with_retry(
    attempt: Callable[..., T],
    *args,
    site: str,
    attempts: int = DEFAULT_ATTEMPTS,
    base_backoff_us: float = DEFAULT_BACKOFF_US,
    retry_on: Tuple[Type[Exception], ...] = (FaultInjected,),
) -> T:
    """Run ``attempt(*args)`` with bounded backoff on transient injected faults.

    Each retry charges ``fault.retry.backoff`` for ``base_backoff_us * 2^i``
    virtual microseconds, so recovery latency is measurable on the same
    clock as everything else.  A successful retry is recorded as one
    recovery (with the virtual time the whole episode took).

    Positional arguments are forwarded to ``attempt`` so per-call hot paths
    (the back-end forwarding every command) need not allocate a closure.
    """
    start_us = get_context().clock.now_us
    last: Exception | None = None
    for i in range(attempts):
        try:
            result = attempt(*args)
        except retry_on as exc:
            if not is_transient(exc):
                raise
            last = exc
            note_retry(site)
            charge("fault.retry.backoff", base_backoff_us * (2.0 ** i))
            continue
        if last is not None:
            note_recovery(site, get_context().clock.now_us - start_us)
        return result
    assert last is not None
    raise RetryExhausted(site, attempts, last)
