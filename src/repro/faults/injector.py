"""The deterministic fault injector and its ambient installation.

Instrumented code calls :func:`fire` at named hook sites (the fast path is
one ``None`` check when no injector is installed).  The installed
:class:`FaultInjector` consults the plan's specs for that site, counts the
call, and — when a spec's schedule is due — emits a :class:`FaultEvent`.
The *caller* decides what the event means (tear a write, drop a kick,
raise :class:`~repro.util.errors.FaultInjected`); the injector only
decides *whether* and records everything it decided.

Determinism: scheduling depends only on per-site call counts, the virtual
clock, and a DRBG forked from the plan seed — so two runs of the same
seeded workload observe byte-identical fault sequences, which is what the
chaos demo asserts.

Every fired event, retry and recovery is mirrored into the injector's
counters, optionally into an audit log (as ``FAULT:*`` records on the
hash chain) and a :class:`~repro.metrics.recorder.LatencyRecorder`
(sample names ``fault.<kind>``, ``fault.retry``, ``fault.recovery``) so
chaos is first-class observable, not a side channel.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.crypto.random_source import RandomSource
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.sim.timing import get_context
from repro.util.errors import FaultInjected


@dataclass(frozen=True)
class FaultEvent:
    """One fault decision, as recorded for determinism checks."""

    seq: int
    kind: FaultKind
    site: str
    call_index: int
    t_us: float
    transient: bool
    detail: str = ""

    def signature(self) -> Tuple[str, str, int]:
        """The time-free identity used to compare two runs."""
        return (self.kind.value, self.site, self.call_index)

    def raise_fault(self) -> None:
        """Raise this event as a :class:`FaultInjected`."""
        raise FaultInjected(
            self.kind.value, self.site, transient=self.transient, detail=self.detail
        )


class FaultInjector:
    """Executes one :class:`FaultPlan` against a running stack.

    Parameters
    ----------
    plan:
        The schedule to execute.
    audit:
        Optional audit log (anything with the :class:`AuditLog.append`
        signature); fired faults and recoveries land on the hash chain.
    metrics:
        Optional :class:`LatencyRecorder`; fault counts and recovery
        latencies are recorded as samples.
    """

    def __init__(self, plan: FaultPlan, audit=None, metrics=None) -> None:
        self.plan = plan
        self.audit = audit
        self.metrics = metrics
        self._rng = RandomSource(f"fault-plan-{plan.name}-{plan.seed}".encode())
        self._site_calls: Dict[str, int] = {}
        self._spec_fires: Dict[Tuple[str, int], int] = {}
        self.events: List[FaultEvent] = []
        self.fault_counts: Dict[str, int] = {}
        self.retries = 0
        self.recoveries = 0
        self.enabled = True

    # -- the hook entry point -----------------------------------------------------

    def fire(self, site: str, **ctx) -> Optional[FaultEvent]:
        """Count one call at ``site``; return an event if a fault is due."""
        if not self.enabled:
            return None
        index = self._site_calls.get(site, 0)
        self._site_calls[site] = index + 1
        now_us = get_context().clock.now_us
        for spec_idx, spec in enumerate(self.plan.for_site(site)):
            key = (site, spec_idx)
            if not self._due(spec, key, index, now_us, ctx):
                continue
            event = FaultEvent(
                seq=len(self.events),
                kind=spec.kind,
                site=site,
                call_index=index,
                t_us=now_us,
                transient=spec.transient,
                detail=str(ctx.get("name", ctx.get("device", ""))),
            )
            self._record(event, key)
            return event
        return None

    def _due(
        self,
        spec: FaultSpec,
        key: Tuple[str, int],
        index: int,
        now_us: float,
        ctx: Dict[str, object],
    ) -> bool:
        if spec.max_fires is not None and self._spec_fires.get(key, 0) >= spec.max_fires:
            return False
        if now_us < spec.after_us:
            return False
        if spec.until_us is not None and now_us > spec.until_us:
            return False
        if not spec.matches_context(ctx):
            return False
        decision = spec.due_at(index)
        if decision is None:  # probabilistic schedule: one deterministic draw
            draw = self._rng.uniform(0.0, 1.0)
            decision = draw < (spec.probability or 0.0)
        return bool(decision)

    def _record(self, event: FaultEvent, key: Tuple[str, int]) -> None:
        self._spec_fires[key] = self._spec_fires.get(key, 0) + 1
        self.events.append(event)
        kind = event.kind.value
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        obs_counters.inc("faults.injected", kind=kind)
        obs_trace.span_event("fault", kind=kind, site=event.site,
                             call_index=event.call_index)
        if self.audit is not None:
            self.audit.append(
                subject="fault-injector",
                instance=event.detail or event.site,
                operation=f"FAULT:{kind}",
                allowed=True,
                reason=f"{event.site}#{event.call_index}",
            )
        if self.metrics is not None:
            self.metrics.record(f"fault.{kind}", 0.0)

    # -- recovery bookkeeping ------------------------------------------------------

    def note_retry(self, site: str) -> None:
        self.retries += 1
        obs_counters.inc("faults.retries", site=site)
        if self.metrics is not None:
            self.metrics.record("fault.retry", 0.0)

    def note_recovery(self, site: str, elapsed_us: float = 0.0) -> None:
        self.recoveries += 1
        obs_counters.inc("faults.recoveries", site=site)
        if self.audit is not None:
            self.audit.append(
                subject="fault-injector",
                instance=site,
                operation="FAULT-RECOVERY",
                allowed=True,
                reason=f"recovered after injected fault ({elapsed_us:.1f} us)",
            )
        if self.metrics is not None:
            self.metrics.record("fault.recovery", max(0.0, elapsed_us))

    # -- reporting ------------------------------------------------------------------

    def event_signature(self) -> Tuple[Tuple[str, str, int], ...]:
        """Time-free fault sequence; equal across same-seed runs."""
        return tuple(event.signature() for event in self.events)

    def report(self) -> Dict[str, object]:
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "faults": dict(sorted(self.fault_counts.items())),
            "total_faults": len(self.events),
            "retries": self.retries,
            "recoveries": self.recoveries,
        }


# -- ambient installation ------------------------------------------------------------

_current_injector: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install (or clear, with ``None``) the ambient injector."""
    global _current_injector
    previous = _current_injector
    _current_injector = injector
    return previous


def current() -> Optional[FaultInjector]:
    return _current_injector


@contextlib.contextmanager
def injector_scope(injector: FaultInjector) -> Iterator[FaultInjector]:
    """``with injector_scope(inj):`` — faults fire only inside the block."""
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)


def fire(site: str, **ctx) -> Optional[FaultEvent]:
    """Hook entry point used by instrumented code; no-op when chaos is off."""
    if _current_injector is None:
        return None
    return _current_injector.fire(site, **ctx)


def note_retry(site: str) -> None:
    if _current_injector is not None:
        _current_injector.note_retry(site)


def note_recovery(site: str, elapsed_us: float = 0.0) -> None:
    if _current_injector is not None:
        _current_injector.note_recovery(site, elapsed_us)
