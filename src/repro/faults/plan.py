"""Fault plans: which faults fire, where, and when.

A :class:`FaultPlan` is an immutable, seedable description of the chaos a
run should endure — a list of :class:`FaultSpec` entries, each naming a
fault *kind*, the hook *site* it attacks, and a deterministic schedule
(every Nth call, explicit call indices, or a probability drawn from the
injector's forked DRBG).  The plan itself holds no mutable state; the
:class:`~repro.faults.injector.FaultInjector` tracks call counts and fire
counts so the same plan can drive many runs.

Schedules are expressed in *site call counts* and, optionally, virtual
time windows — both deterministic under the simulated clock, so a seeded
plan reproduces the identical fault sequence on every run.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Sequence, Tuple

from repro.util.errors import SimulationError


class FaultKind(Enum):
    """Every fault the injector knows how to deliver."""

    #: the shared-page transfer stalls; the kick arrives late
    RING_STALL = "ring-stall"
    #: the event-channel notification is lost; the peer never wakes
    RING_DROP_NOTIFY = "ring-drop-notify"
    #: a state write is cut short mid-blob (crash or media error)
    STORAGE_TORN_WRITE = "storage-torn-write"
    #: a read returns flipped bits (transient controller/DMA error)
    STORAGE_READ_CORRUPT = "storage-read-corrupt"
    #: the manager's disk is full; the write is refused
    STORAGE_ENOSPC = "storage-enospc"
    #: the (hardware or virtual) TPM fails one command transiently
    DEVICE_TRANSIENT = "device-transient"
    #: the migration network path drops the package mid-transfer
    MIGRATION_NET_DROP = "migration-net-drop"
    #: the destination platform crashes after issuing its offer
    MIGRATION_DEST_CRASH = "migration-dest-crash"
    #: the (virtual) TPM wedges: every command hangs for a scheduler-visible
    #: stall and then aborts — scheduled consecutively it burns through the
    #: whole retry budget, which is what the supervisor quarantines on
    WEDGE = "wedge"
    #: a restarted instance fails its supervised health probe, so the
    #: breaker re-opens and the instance flaps back into quarantine
    FLAP = "flap"
    #: the inter-host cluster link drops one transfer (attestation
    #: handshake or migration package); the orchestrator renegotiates
    PARTITION = "partition"
    #: a whole host's manager daemon dies hard; the fleet recovers it
    #: from the last committed checkpoint and re-binds its residents
    HOST_CRASH = "host-crash"


#: which hook site each kind is allowed to attack (sanity-checks plans)
KIND_SITES: Dict[FaultKind, str] = {
    FaultKind.RING_STALL: "xen.ring.notify",
    FaultKind.RING_DROP_NOTIFY: "xen.ring.notify",
    FaultKind.STORAGE_TORN_WRITE: "vtpm.storage.write",
    FaultKind.STORAGE_READ_CORRUPT: "vtpm.storage.read",
    FaultKind.STORAGE_ENOSPC: "vtpm.storage.write",
    FaultKind.DEVICE_TRANSIENT: "tpm.device.execute",
    FaultKind.MIGRATION_NET_DROP: "vtpm.migration.net",
    FaultKind.MIGRATION_DEST_CRASH: "vtpm.migration.dest",
    FaultKind.WEDGE: "tpm.device.execute",
    FaultKind.FLAP: "vtpm.supervisor.probe",
    FaultKind.PARTITION: "cluster.link",
    FaultKind.HOST_CRASH: "cluster.host",
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Exactly one of ``every`` / ``at`` / ``probability`` selects the
    schedule, evaluated against the 0-based per-site call index:

    * ``every=N`` (with ``offset``) — fire when ``(idx - offset) % N == 0``
      and ``idx >= offset``;
    * ``at=(i, j, ...)`` — fire at exactly those call indices;
    * ``probability=p`` — fire when a DRBG draw falls below ``p``.

    ``match`` narrows the spec to hook calls whose context values glob-match
    (e.g. ``{"device": "vtpm*"}`` spares the hardware TPM).  ``transient``
    marks the fault as clearable by retry; hard-crash specs set it False so
    the error propagates to the harness.  ``after_us``/``until_us`` bound
    the virtual-time window in which the spec is live.
    """

    kind: FaultKind
    every: Optional[int] = None
    offset: int = 0
    at: Tuple[int, ...] = ()
    probability: Optional[float] = None
    max_fires: Optional[int] = None
    transient: bool = True
    match: Tuple[Tuple[str, str], ...] = ()
    after_us: float = 0.0
    until_us: Optional[float] = None

    def __post_init__(self) -> None:
        chosen = sum(
            1 for s in (self.every, self.at or None, self.probability) if s
        )
        if chosen != 1:
            raise SimulationError(
                f"{self.kind.value}: exactly one of every/at/probability required"
            )
        if self.every is not None and self.every <= 0:
            raise SimulationError(f"{self.kind.value}: every must be positive")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise SimulationError(
                f"{self.kind.value}: probability must be in (0, 1]"
            )

    @property
    def site(self) -> str:
        return KIND_SITES[self.kind]

    def matches_context(self, ctx: Dict[str, object]) -> bool:
        return all(
            fnmatch.fnmatchcase(str(ctx.get(key, "")), pattern)
            for key, pattern in self.match
        )

    def due_at(self, index: int) -> Optional[bool]:
        """Schedule decision for a call index; None means 'ask the DRBG'."""
        if self.at:
            return index in self.at
        if self.every is not None:
            return index >= self.offset and (index - self.offset) % self.every == 0
        return None  # probabilistic: the injector draws


@dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of fault specs plus the seed that drives them."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        by_site: Dict[str, list] = {}
        for spec in self.specs:
            by_site.setdefault(spec.site, []).append(spec)
        object.__setattr__(self, "_by_site", by_site)

    def for_site(self, site: str) -> Sequence[FaultSpec]:
        return self._by_site.get(site, ())

    def kinds(self) -> Tuple[FaultKind, ...]:
        return tuple(dict.fromkeys(spec.kind for spec in self.specs))

    def __len__(self) -> int:
        return len(self.specs)


def spec(kind: FaultKind, **kwargs) -> FaultSpec:
    """Terse spec constructor: ``spec(FaultKind.RING_STALL, every=40)``.

    ``match`` may be passed as a dict; it is frozen into sorted tuples so
    specs stay hashable.
    """
    match = kwargs.pop("match", None)
    if match:
        kwargs["match"] = tuple(sorted((k, v) for k, v in dict(match).items()))
    if "at" in kwargs:
        kwargs["at"] = tuple(kwargs["at"])
    return FaultSpec(kind=kind, **kwargs)
