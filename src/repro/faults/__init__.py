"""Deterministic fault injection and recovery instrumentation.

The subsystem has three pieces:

* :mod:`repro.faults.plan` — :class:`FaultKind`, :class:`FaultSpec` and
  :class:`FaultPlan`: an immutable, seeded description of which faults
  fire at which hook sites and when;
* :mod:`repro.faults.injector` — :class:`FaultInjector` plus the ambient
  ``fire()`` hook the instrumented layers call (ring transfers, storage,
  TPM devices, migration);
* :mod:`repro.faults.retry` — :func:`with_retry`, the bounded
  backoff-in-virtual-time loop the recovery paths share.

With no injector installed every hook is a single ``None`` check, so the
fault-free fast path stays fault-free and free.
"""

from repro.faults.injector import (
    FaultEvent,
    FaultInjector,
    current,
    fire,
    injector_scope,
    install,
    note_recovery,
    note_retry,
)
from repro.faults.plan import KIND_SITES, FaultKind, FaultPlan, FaultSpec, spec
from repro.faults.retry import DEFAULT_ATTEMPTS, DEFAULT_BACKOFF_US, with_retry

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "KIND_SITES",
    "DEFAULT_ATTEMPTS",
    "DEFAULT_BACKOFF_US",
    "current",
    "fire",
    "injector_scope",
    "install",
    "note_recovery",
    "note_retry",
    "spec",
    "with_retry",
]
