"""The attested cross-host migration orchestrator.

One migration is a five-leg protocol, every cross-host leg passing the
``cluster.link`` fault site:

1. **handshake** — the source mints a nonce and asks the target for an
   attestation report bound to it;
2. **verify** — the source checks the report against the target's
   enrolment-time measured identity and the fleet policy epoch.  Any
   mismatch raises :class:`~repro.util.errors.ClusterError` *before* an
   offer is consumed or a byte of state leaves the source — fail closed,
   the guest keeps serving where it is;
3. **offer + export** — the verified target mints a single-use
   hardware-TPM-bound :class:`~repro.vtpm.migration.MigrationOffer`; the
   source opens a sealed export transaction against it;
4. **transfer + import** — the package crosses the link (where a
   ``PARTITION`` may drop it); the target unbinds the session key in its
   hardware TPM, checks identity continuity, and instantiates;
5. **commit** — only now does the source destroy its copy, tear down the
   old domain, and re-point the router.

Transient faults in any leg roll the whole attempt back (abort the
transaction, cancel the offer, destroy the half-made target domain) and
renegotiate from scratch with a fresh nonce and offer — the single-use
offer semantics make replaying an interrupted attempt impossible.

``storm`` executes a batch of moves back-to-back, which is the chaos
demo's rebalance-under-fire mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.attestation import verify_report
from repro.faults import FaultKind, fire, note_recovery, note_retry
from repro.obs import inc, span
from repro.sim.timing import charge, get_context
from repro.util.errors import ClusterError, FaultInjected, RetryExhausted
from repro.vtpm.migration import MIGRATION_ATTEMPTS

HANDSHAKE_NONCE_SIZE = 20


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or failed) migration, for the replay oracle."""

    guest: str
    source: str
    target: str
    outcome: str  # "moved" | "failed"
    attempts: int


class ClusterMigrator:
    """Drives guests between hosts through the attested sealed path."""

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        self._rng = fleet.rng.fork("cluster-migrator")
        #: append-only, time-free migration trail
        self.trail: List[MigrationRecord] = []

    # -- the cross-host wire -----------------------------------------------------

    def _link(self, target_host: str, guest: str, phase: str) -> None:
        """One message crossing the inter-host link (partitionable)."""
        event = fire(
            "cluster.link", host=target_host, guest=guest, phase=phase
        )
        if event is not None and event.kind is FaultKind.PARTITION:
            event.raise_fault()

    # -- one migration ------------------------------------------------------------

    def migrate(
        self, name: str, target_host_id: str,
        attempts: int = MIGRATION_ATTEMPTS,
    ):
        """Move guest ``name`` to ``target_host_id``; returns the new instance."""
        fleet = self.fleet
        location = fleet.router.locate(name)
        if location.host_id == target_host_id:
            raise ClusterError(f"guest {name!r} already lives on "
                               f"{target_host_id}")
        source = fleet.hosts[location.host_id]
        target = fleet.hosts[target_host_id]
        if not target.admissible():
            raise ClusterError(
                f"host {target_host_id} is not admissible "
                f"({target.state.value}, {target.spare_capacity} slots free)"
            )
        source_domain = source.platform.xen.domain(location.domid)
        with span(
            "cluster.migrate", guest=name, source=source.host_id,
            target=target.host_id,
        ):
            start_us = get_context().clock.now_us
            interrupted = 0
            last: Optional[Exception] = None
            for attempt in range(1, attempts + 1):
                try:
                    instance, target_vm = self._attempt(
                        name, source, target, source_domain
                    )
                except FaultInjected as exc:
                    if not exc.transient:
                        raise
                    last = exc
                    interrupted += 1
                    note_retry("cluster.migrate")
                    charge("vtpm.migration.retry")
                    continue
                # Success: the source copy is gone (commit_export), so
                # finish the domain teardown and re-point the router.
                source.platform.guests.pop(name, None)
                if source.platform.identities is not None:
                    source.platform.identities.forget(source_domain.domid)
                source.platform.xen.destroy_domain(source_domain.domid)
                fleet.router.relocate(
                    name, target.host_id, target_vm.domid,
                    instance.instance_id, target_vm.uuid,
                )
                if interrupted:
                    note_recovery(
                        "cluster.migrate",
                        get_context().clock.now_us - start_us,
                    )
                inc("cluster.migrations", outcome="moved",
                    target=target.host_id)
                self.trail.append(MigrationRecord(
                    guest=name, source=source.host_id,
                    target=target.host_id, outcome="moved", attempts=attempt,
                ))
                return instance
            inc("cluster.migrations", outcome="failed")
            self.trail.append(MigrationRecord(
                guest=name, source=source.host_id, target=target.host_id,
                outcome="failed", attempts=attempts,
            ))
            raise RetryExhausted(
                "cluster.migrate", attempts,
                last or ClusterError(f"migration of {name!r} kept failing"),
            )

    def _attempt(self, name: str, source, target, source_domain):
        """One full attested attempt; raises FaultInjected on a cut link."""
        fleet = self.fleet
        # Leg 1+2: attestation handshake, then fail-closed verification.
        # ClusterError from verify_report propagates — a target that fails
        # attestation is not a transient condition retries can fix.
        nonce = self._rng.bytes(HANDSHAKE_NONCE_SIZE)
        self._link(target.host_id, name, phase="challenge")
        report = target.attestation_report(nonce)
        self._link(source.host_id, name, phase="report")
        verify_report(
            report,
            expected_identity=fleet.enrolled_identity(target.host_id),
            expected_epoch=fleet.policy_epoch,
            nonce=nonce,
        )
        # Leg 3: single-use offer + sealed export transaction.
        offer = target.platform.migration.prepare_target()
        txn = source.platform.migration.begin_export_sealed(
            source_domain.uuid, offer
        )
        target_vm = None
        try:
            # Leg 4: the package crosses the link; the target instantiates.
            self._link(target.host_id, name, phase="transfer")
            target_vm = target.platform.xen.create_domain(
                source_domain.name,
                kernel_image=source_domain.kernel_image,
                config=dict(source_domain.config),
            )
            instance = target.platform.migration.import_sealed(
                txn.package, target_vm
            )
        except FaultInjected:
            # Roll the attempt back: the source instance keeps serving,
            # the offer dies unconsumed, the half-made domain is scrubbed.
            source.platform.migration.abort_export(txn)
            target.platform.migration.cancel_offer(offer.offer_id)
            if target_vm is not None:
                target.platform.xen.destroy_domain(target_vm.domid)
            raise
        # Leg 5: destination holds good state — destroy the source copy.
        source.platform.migration.commit_export(txn)
        return instance, target_vm

    # -- storm mode ----------------------------------------------------------------

    def storm(
        self, moves: List[Tuple[str, str, str]]
    ) -> List[MigrationRecord]:
        """Execute a batch of rebalance moves back-to-back.

        Each move runs the full attested protocol.  A move whose target
        stopped being admissible mid-storm is recorded as failed and the
        storm continues — a rebalance must never take the fleet down.
        """
        executed: List[MigrationRecord] = []
        with span("cluster.storm", moves=len(moves)):
            for guest, _source, target_id in moves:
                try:
                    self.migrate(guest, target_id)
                # repro: allow[fail-closed] -- migrate() already recorded and counted this failure
                except RetryExhausted:
                    pass
                except ClusterError:
                    inc("cluster.migrations", outcome="refused")
                    self.trail.append(MigrationRecord(
                        guest=guest,
                        source=_source,
                        target=target_id,
                        outcome="failed",
                        attempts=0,
                    ))
                executed.append(self.trail[-1])
        return executed

    # -- oracle view ----------------------------------------------------------------

    def trail_signature(self) -> Tuple[Tuple[str, str, str, str, int], ...]:
        return tuple(
            (r.guest, r.source, r.target, r.outcome, r.attempts)
            for r in self.trail
        )
