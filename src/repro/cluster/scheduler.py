"""Deterministic placement: where new guests land, and when to move them.

The ring proposes candidates in a stable order; the scheduler filters
them to admissible hosts (``UP`` with spare capacity) and scores the
first few by the three signals the fleet already measures:

* **capacity pressure** — residents / capacity;
* **load** — the host-level admission EWMA over routed-command virtual
  latency, normalised by the configured base estimate;
* **health** — the penalty sum over the platform's resilience records
  (a host nursing quarantined instances attracts nothing new).

Lowest score wins; ties break by ring order, so placement is a pure
function of fleet state and the decision trail replays identically under
a fixed seed — the demo's determinism oracle compares trails across
runs.  Rebalancing is the same decision inverted: a guest whose current
host is no longer its best admissible candidate is proposed for
migration, worst displacement first, capped by ``max_moves``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.host import Host
from repro.obs import inc
from repro.util.errors import ClusterError

#: how many admissible ring candidates are scored per decision
SCORE_CANDIDATES = 3


@dataclass(frozen=True)
class PlacementDecision:
    """One scheduling decision, recorded for the replay oracle."""

    guest: str
    chosen: str
    #: (host_id, score) for every candidate considered, in ring order
    scored: Tuple[Tuple[str, float], ...]


class PlacementScheduler:
    """Capacity-, load-, and health-aware placement over the hash ring."""

    def __init__(
        self, ring: ConsistentHashRing, hosts: Dict[str, Host]
    ) -> None:
        self.ring = ring
        self.hosts = hosts
        #: append-only decision trail (placements and rebalance proposals)
        self.trail: List[PlacementDecision] = []

    # -- scoring -----------------------------------------------------------------

    def _score(self, host: Host) -> float:
        pressure = host.resident_count / host.capacity
        load = host.load_estimate_us / host.admission.config.service_estimate_us
        return round(pressure + load + host.health_penalty(), 6)

    def _decide(self, guest: str) -> PlacementDecision:
        admissible = [
            host_id
            for host_id in self.ring.candidates(guest)
            if self.hosts[host_id].admissible()
        ]
        if not admissible:
            inc("cluster.placements", outcome="failed")
            raise ClusterError(
                f"no admissible host for guest {guest!r}: every host is "
                f"down, draining, or at capacity"
            )
        scored = tuple(
            (host_id, self._score(self.hosts[host_id]))
            for host_id in admissible[:SCORE_CANDIDATES]
        )
        chosen = min(scored, key=lambda entry: entry[1])[0]
        return PlacementDecision(guest=guest, chosen=chosen, scored=scored)

    # -- the two decisions -------------------------------------------------------

    def place(self, guest: str) -> str:
        """Pick the host a new guest lands on; records the decision."""
        decision = self._decide(guest)
        self.trail.append(decision)
        inc("cluster.placements", outcome="placed", host=decision.chosen)
        return decision.chosen

    def rebalance_plan(
        self,
        placements: Dict[str, str],
        max_moves: Optional[int] = None,
    ) -> List[Tuple[str, str, str]]:
        """Moves that bring ``{guest: current_host}`` toward ideal.

        Returns ``(guest, source, target)`` tuples, worst-placed guest
        first.  Proposals only — the migrator executes them (each through
        the full attestation handshake), and a proposal that stops being
        valid mid-storm (its target crashed) simply fails that move.
        """
        proposals: List[Tuple[float, str, str, str]] = []
        for guest in sorted(placements):
            current = placements[guest]
            decision = self._decide(guest)
            if decision.chosen == current:
                continue
            current_score = (
                self._score(self.hosts[current])
                if current in self.hosts
                else float("inf")
            )
            ideal_score = dict(decision.scored)[decision.chosen]
            gain = current_score - ideal_score
            self.trail.append(decision)
            proposals.append((gain, guest, current, decision.chosen))
        proposals.sort(key=lambda p: (-p[0], p[1]))
        if max_moves is not None:
            proposals = proposals[:max_moves]
        return [(guest, src, dst) for _gain, guest, src, dst in proposals]

    # -- oracle view -------------------------------------------------------------

    def trail_signature(self) -> Tuple[Tuple[str, str, Tuple], ...]:
        """Time-free trail view for replay-identity comparison."""
        return tuple(
            (d.guest, d.chosen, d.scored) for d in self.trail
        )
