"""The inter-host attestation handshake guarding cross-host migration.

Before a sealed vTPM export ever leaves a source host, the target must
prove two things about itself:

1. **Measured identity** — a digest over its hardware TPM's boot PCRs
   (the BIOS → bootloader → xen+dom0 chain measured at platform build).
   The fleet recorded this at enrolment; a host whose boot measurements
   moved since (compromised loader, different hypervisor) produces a
   different digest and the handshake fails *closed*: no offer is
   consumed, no state crosses the wire, and the guest keeps serving on
   the source.
2. **Policy epoch** — the fleet-wide access-control generation.  A host
   that missed a policy push would enforce stale rules on the migrated
   instance; refusing the migration is the conservative answer the
   paper's binding argument demands.

The report is bound to a per-handshake nonce so a captured report cannot
vouch for a later, different migration.  Verification failures raise
:class:`~repro.util.errors.ClusterError` and are counted under
``cluster.attestations`` for the trace exposition.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.obs import inc

#: the hardware PCRs whose chain constitutes a host's measured identity —
#: the same indices the state sealer binds sealed storage to
HOST_IDENTITY_PCRS = (0, 1, 2)


@dataclass(frozen=True)
class AttestationReport:
    """What a target host asserts about itself for one migration."""

    host_id: str
    nonce: bytes
    measured_identity: str  # hex digest over HOST_IDENTITY_PCRS
    policy_epoch: int


def measure_host(hw_client) -> str:
    """Digest the host's boot-measurement PCR chain (live read)."""
    h = hashlib.sha256()
    for index in HOST_IDENTITY_PCRS:
        h.update(hw_client.pcr_read(index))
    return h.hexdigest()


def verify_report(
    report: AttestationReport,
    expected_identity: str,
    expected_epoch: int,
    nonce: bytes,
) -> None:
    """Source-side verification; any mismatch fails the migration closed."""
    from repro.util.errors import ClusterError

    if report.nonce != nonce:
        inc("cluster.attestations", outcome="rejected", why="nonce")
        raise ClusterError(
            f"attestation of host {report.host_id} is not bound to this "
            f"handshake (nonce mismatch)"
        )
    if report.measured_identity != expected_identity:
        inc("cluster.attestations", outcome="rejected", why="identity")
        raise ClusterError(
            f"host {report.host_id} failed attestation: measured identity "
            f"diverged from its enrolment"
        )
    if report.policy_epoch != expected_epoch:
        inc("cluster.attestations", outcome="rejected", why="epoch")
        raise ClusterError(
            f"host {report.host_id} enforces policy epoch "
            f"{report.policy_epoch}, fleet is at {expected_epoch}"
        )
    inc("cluster.attestations", outcome="verified")
