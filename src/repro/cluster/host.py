"""One addressable fleet node: a whole platform behind a host id.

A :class:`Host` wraps one :class:`~repro.harness.builder.Platform`
(hypervisor + hardware TPM + vTPM manager + monitor + optional
supervisor) and adds the fleet-facing surface: a capacity budget, a load
EWMA fed by the router, a health score derived from the platform's
resilience records, the attestation report used in migration handshakes,
and the crash/hard-restart lifecycle the ``HOST_CRASH`` fault drives.

Hosts never talk to each other directly — the fleet's router, scheduler
and migrator are the only cross-host paths, and each of those passes
through the ``cluster.link`` fault site.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Tuple

from repro.cluster.attestation import AttestationReport, measure_host
from repro.obs import inc
from repro.resilience.admission import AdmissionController
from repro.resilience.health import HealthState
from repro.util.errors import ClusterError
from repro.xen.domain import Domain


class HostState(enum.Enum):
    """Fleet-visible lifecycle of one host."""

    #: serving: the scheduler may place and the router may forward
    UP = "up"
    #: no new placements; existing residents still served (pre-maintenance)
    DRAINING = "draining"
    #: manager daemon dead; nothing routable until recovery completes
    CRASHED = "crashed"


#: scheduler health penalty per non-healthy resilience record
HEALTH_PENALTY = {
    HealthState.HEALTHY: 0.0,
    HealthState.DEGRADED: 1.0,
    HealthState.RESTARTING: 2.0,
    HealthState.QUARANTINED: 3.0,
    HealthState.FAILED: 1.0,  # failed guests stop consuming capacity soon
}


class Host:
    """One hypervisor + vTPM manager + monitor (+ supervisor) node."""

    def __init__(self, host_id: str, platform, capacity: int) -> None:
        if capacity < 1:
            raise ClusterError(f"host {host_id!r} needs positive capacity")
        self.host_id = host_id
        self.platform = platform
        self.capacity = capacity
        self.state = HostState.UP
        self.policy_epoch = 1
        #: reuses the admission layer's EWMA as the host-level load signal;
        #: the router feeds it one observation per routed command
        self.admission = AdmissionController(f"host:{host_id}")
        #: measured at enrolment; attestation re-reads the PCRs live, so
        #: a host whose boot chain moved after enrolment fails to verify
        self.enrolled_identity = measure_host(platform.hw_client)

    # -- signals the scheduler consumes --------------------------------------------

    @property
    def resident_count(self) -> int:
        return len(self.platform.manager.instances())

    @property
    def spare_capacity(self) -> int:
        return self.capacity - self.resident_count

    def observe_service_us(self, elapsed_us: float) -> None:
        self.admission.observe_service_us(elapsed_us)

    @property
    def load_estimate_us(self) -> float:
        return self.admission.service_estimate_us

    def health_penalty(self) -> float:
        """Sum of per-guest penalties from the resilience records."""
        supervisor = self.platform.supervisor
        if supervisor is None:
            return 0.0
        return sum(
            HEALTH_PENALTY[record.state]
            for record in supervisor._records.values()
        )

    def admissible(self) -> bool:
        """May the scheduler place (or migrate) a new guest here?"""
        return self.state is HostState.UP and self.spare_capacity > 0

    # -- attestation -----------------------------------------------------------------

    def attestation_report(self, nonce: bytes) -> AttestationReport:
        """What this host asserts about itself, bound to one handshake."""
        if self.state is not HostState.UP:
            raise ClusterError(
                f"host {self.host_id} is {self.state.value}: cannot attest"
            )
        return AttestationReport(
            host_id=self.host_id,
            nonce=nonce,
            measured_identity=measure_host(self.platform.hw_client),
            policy_epoch=self.policy_epoch,
        )

    # -- crash / recovery --------------------------------------------------------------

    def crash(self) -> None:
        """The manager daemon dies hard; volatile instance state is gone."""
        if self.state is HostState.CRASHED:
            raise ClusterError(f"host {self.host_id} is already crashed")
        self.state = HostState.CRASHED
        self.platform.migration.crash()  # in-flight offers die with it
        inc("cluster.host_crashes", host=self.host_id)

    def hard_restart(
        self, residents: Iterable[Tuple[str, Domain]]
    ) -> Dict[str, int]:
        """Bring a crashed host back from its last committed checkpoints.

        ``residents`` names every vTPM the router knows lives here —
        including instances migrated in after boot, which the platform's
        own ``restart_manager`` (keyed to locally added guests) cannot
        see.  Sealed state is bound to *this* host's hardware TPM, so
        recovery is strictly in-place: lock and re-earn the sealer root,
        drop every volatile instance object, restore each resident from
        the generation-stamped store, and re-point any local back-ends.
        Returns ``{vm_uuid: new_instance_id}``.
        """
        if self.state is not HostState.CRASHED:
            raise ClusterError(
                f"host {self.host_id} is {self.state.value}, not crashed"
            )
        platform = self.platform
        manager = platform.manager
        if platform.sealer is not None:
            platform.sealer.lock()
            platform.sealer.unlock()
        for instance in list(manager.instances()):
            manager.destroy_instance(instance.instance_id, persist=False)
        new_ids: Dict[str, int] = {}
        for _name, domain in sorted(residents, key=lambda r: r[0]):
            restored = manager.restore_instance(domain)
            new_ids[domain.uuid] = restored.instance_id
        for handle in platform.guests.values():
            new_id = new_ids.get(handle.domain.uuid)
            if new_id is not None:
                handle.backend.rebind(new_id)  # fail-closed identity check
                handle.instance_id = new_id
        self.state = HostState.UP
        inc("cluster.host_recoveries", host=self.host_id)
        return new_ids

    # -- exposition --------------------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        return {
            "host": self.host_id,
            "state": self.state.value,
            "residents": self.resident_count,
            "capacity": self.capacity,
            "load_estimate_us": round(self.load_estimate_us, 2),
            "health_penalty": self.health_penalty(),
            "policy_epoch": self.policy_epoch,
        }
