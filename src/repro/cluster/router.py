"""The fleet router: workloads address guests by name, never by host.

A workload holds a name like ``"web07"``; the router owns the only map
from names to ``(host, domain, instance)`` and forwards each command to
wherever the instance currently lives.  Migration and host recovery
re-point the map atomically, so callers never observe an intermediate
address.

Forwarding crosses the ``cluster.link`` fault site under the same
bounded-retry contract as the single-host backend path: a transient
``PARTITION`` is retried with backoff in virtual time, and an exhausted
episode degrades to the manager's well-formed ``TPM_FAIL`` response —
never a silent drop, which is what lets the demo's ledger assert
``answered == submitted`` through a migration storm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.host import Host, HostState
from repro.crypto.random_source import RandomSource
from repro.faults import FaultKind, fire, with_retry
from repro.obs import inc, span
from repro.sim.timing import get_context
from repro.tpm.client import TpmClient
from repro.util.errors import ClusterError, RetryExhausted


@dataclass
class GuestLocation:
    """Where one named guest's vTPM currently lives."""

    host_id: str
    domid: int
    instance_id: int
    vm_uuid: str


class FleetRouter:
    """Name-to-instance indirection over every host's manager."""

    def __init__(self, hosts: Dict[str, Host]) -> None:
        self.hosts = hosts
        self._locations: Dict[str, GuestLocation] = {}
        self.routed = 0
        self.degraded = 0

    # -- the name map ------------------------------------------------------------

    def register(
        self, name: str, host_id: str, domid: int, instance_id: int,
        vm_uuid: str,
    ) -> None:
        if name in self._locations:
            raise ClusterError(f"guest {name!r} is already registered")
        self._locations[name] = GuestLocation(
            host_id=host_id, domid=domid, instance_id=instance_id,
            vm_uuid=vm_uuid,
        )

    def relocate(
        self, name: str, host_id: str, domid: int, instance_id: int,
        vm_uuid: str,
    ) -> None:
        """Re-point one name after a migration (atomic from callers' view)."""
        self.locate(name)  # raises on unknown names
        self._locations[name] = GuestLocation(
            host_id=host_id, domid=domid, instance_id=instance_id,
            vm_uuid=vm_uuid,
        )

    def rebind_instance(self, name: str, new_instance_id: int) -> None:
        """Same host, new instance id (post-crash restore)."""
        self.locate(name).instance_id = new_instance_id

    def forget(self, name: str) -> None:
        del self._locations[name]

    def locate(self, name: str) -> GuestLocation:
        location = self._locations.get(name)
        if location is None:
            raise ClusterError(f"no guest named {name!r} in the fleet")
        return location

    def locations(self) -> Dict[str, GuestLocation]:
        return dict(self._locations)

    def placements(self) -> Dict[str, str]:
        """``{guest: host_id}`` — the scheduler's rebalance input."""
        return {
            name: loc.host_id for name, loc in sorted(self._locations.items())
        }

    # -- forwarding --------------------------------------------------------------

    def send(self, name: str, wire: bytes) -> bytes:
        """Forward one command frame to wherever ``name`` lives now."""
        location = self.locate(name)
        host = self.hosts[location.host_id]
        if host.state is HostState.CRASHED:
            raise ClusterError(
                f"host {location.host_id} is crashed; guest {name!r} is "
                f"unroutable until recovery"
            )
        with span(
            "cluster.route", guest=name, host=location.host_id,
            instance=location.instance_id,
        ):
            manager = host.platform.manager

            def attempt() -> bytes:
                event = fire(
                    "cluster.link", host=location.host_id, guest=name,
                    phase="route",
                )
                if event is not None and event.kind is FaultKind.PARTITION:
                    event.raise_fault()
                return manager.handle_command(
                    location.domid, location.instance_id, wire
                )

            started_us = get_context().clock.now_us
            try:
                response = with_retry(attempt, site="cluster.link")
            except RetryExhausted as exc:
                self.degraded += 1
                inc("cluster.routed", host=location.host_id,
                    outcome="degraded")
                return manager.fault_response(location.instance_id, exc)
            host.observe_service_us(get_context().clock.now_us - started_us)
            self.routed += 1
            inc("cluster.routed", host=location.host_id, outcome="ok")
            return response

    def client_for(self, name: str) -> TpmClient:
        """A TPM client whose transport follows the guest across hosts.

        The client rng is keyed to the guest name alone, so a workload
        driving the same command script gets byte-identical auth traffic
        regardless of which host the instance occupies.
        """
        return TpmClient(
            lambda wire: self.send(name, wire),
            RandomSource(f"cluster-client-{name}".encode()),
        )
