"""Multi-host vTPM fleet: sharded managers, placement, attested migration.

One :class:`Fleet` owns N :class:`Host` objects — each a full platform
(hypervisor, hardware TPM, manager, monitor, supervisor) — on a single
shared virtual clock.  Guests are addressed by name through the
:class:`FleetRouter`; the :class:`PlacementScheduler` decides which
host's manager shards each vTPM (consistent hashing filtered by
capacity, load and health signals); the :class:`ClusterMigrator` moves
instances between hosts through the sealed-export path behind a
fail-closed attestation handshake.

``python -m repro cluster`` runs the acceptance demo; the unit and
integration suites exercise every piece in isolation.
"""

from repro.cluster.attestation import (
    HOST_IDENTITY_PCRS,
    AttestationReport,
    measure_host,
    verify_report,
)
from repro.cluster.demo import (
    ClusterReport,
    default_cluster_plan,
    run_cluster_demo,
    run_cluster_workload,
)
from repro.cluster.fleet import Fleet, build_fleet
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.host import Host, HostState
from repro.cluster.migrator import ClusterMigrator, MigrationRecord
from repro.cluster.router import FleetRouter, GuestLocation
from repro.cluster.scheduler import PlacementDecision, PlacementScheduler

__all__ = [
    "AttestationReport",
    "ClusterMigrator",
    "ClusterReport",
    "ConsistentHashRing",
    "Fleet",
    "FleetRouter",
    "GuestLocation",
    "HOST_IDENTITY_PCRS",
    "Host",
    "HostState",
    "MigrationRecord",
    "PlacementDecision",
    "PlacementScheduler",
    "build_fleet",
    "default_cluster_plan",
    "measure_host",
    "run_cluster_demo",
    "run_cluster_workload",
    "verify_report",
]
