"""The fleet: N hosts, one virtual clock, one placement authority.

``build_fleet`` assembles N full platforms (each its own hypervisor,
hardware TPM, manager, monitor and supervisor) on the *shared* ambient
timing context — the discrete-event clock is fleet-global, which is what
makes cross-host schedules (placement trails, migration storms, breaker
sequences) deterministic and replay-comparable.

The fleet owns the pieces the tentpole names:

* the consistent-hash ring + :class:`PlacementScheduler` (sharded
  manager pool: every guest's vTPM lives in exactly one host's manager,
  chosen deterministically);
* the :class:`FleetRouter` (workloads address guests by name);
* the :class:`ClusterMigrator` (attested cross-host movement);
* host lifecycle — the ``cluster.host`` fault site is polled once per
  host per workload step, and a fired ``HOST_CRASH`` drives the
  crash → hard-restart → re-route leg inline, exactly like the
  supervisor drives instance restarts.

Enrolment: at build time the fleet records every host's measured
identity (hardware PCR chain) and stamps the fleet policy epoch on it.
Those enrolment records are what migration handshakes verify against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.host import Host, HostState
from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.migrator import ClusterMigrator, MigrationRecord
from repro.cluster.router import FleetRouter
from repro.cluster.scheduler import PlacementScheduler
from repro.core.config import AccessMode
from repro.crypto.random_source import RandomSource
from repro.faults import FaultKind, fire
from repro.harness.builder import build_platform
from repro.obs import inc, span
from repro.util.errors import ClusterError


class Fleet:
    """N addressable hosts behind one scheduler, router and migrator."""

    def __init__(
        self,
        mode: AccessMode,
        num_hosts: int,
        seed: int = 2027,
        capacity: int = 16,
        name: str = "fleet",
        supervise: bool = True,
    ) -> None:
        if num_hosts < 1:
            raise ClusterError("a fleet needs at least one host")
        self.mode = mode
        self.seed = seed
        self.name = name
        self.rng = RandomSource(f"{name}-{seed}".encode())
        self.policy_epoch = 1
        self.hosts: Dict[str, Host] = {}
        self.ring = ConsistentHashRing()
        for index in range(num_hosts):
            host_id = f"h{index}"
            platform = build_platform(
                mode, seed=seed + index, name=f"{name}-{host_id}"
            )
            if supervise:
                platform.enable_supervision()
            host = Host(host_id, platform, capacity=capacity)
            host.policy_epoch = self.policy_epoch
            self.hosts[host_id] = host
            self.ring.add(host_id, weight=capacity)
        #: enrolment-time measured identities — the attestation baseline
        self._enrolled: Dict[str, str] = {
            host_id: host.enrolled_identity
            for host_id, host in self.hosts.items()
        }
        self.router = FleetRouter(self.hosts)
        self.scheduler = PlacementScheduler(self.ring, self.hosts)
        self.migrator = ClusterMigrator(self)

    # -- enrolment ----------------------------------------------------------------

    def enrolled_identity(self, host_id: str) -> str:
        identity = self._enrolled.get(host_id)
        if identity is None:
            raise ClusterError(f"host {host_id!r} was never enrolled")
        return identity

    def bump_policy_epoch(self, host_ids: Optional[List[str]] = None) -> int:
        """Push a new policy generation to all (or only some) hosts.

        Leaving a host off the push models the stale-policy condition the
        migration handshake must refuse.
        """
        self.policy_epoch += 1
        for host_id in (host_ids if host_ids is not None else self.hosts):
            self.hosts[host_id].policy_epoch = self.policy_epoch
        return self.policy_epoch

    # -- guests -------------------------------------------------------------------

    def add_guest(self, name: str, **kwargs) -> str:
        """Place and create one guest; returns the chosen host id."""
        host_id = self.scheduler.place(name)
        host = self.hosts[host_id]
        handle = host.platform.add_guest(name, **kwargs)
        self.router.register(
            name, host_id, handle.domain.domid, handle.instance_id,
            handle.domain.uuid,
        )
        return host_id

    def instance_for(self, name: str):
        """The live vTPM instance behind one guest name (any host)."""
        location = self.router.locate(name)
        return self.hosts[location.host_id].platform.manager.instance_for_vm(
            location.vm_uuid
        )

    # -- movement -----------------------------------------------------------------

    def migrate(self, name: str, target_host_id: str):
        return self.migrator.migrate(name, target_host_id)

    def rebalance(
        self, max_moves: Optional[int] = None
    ) -> List[MigrationRecord]:
        """Plan and execute a rebalance storm under the current signals."""
        plan = self.scheduler.rebalance_plan(
            self.router.placements(), max_moves=max_moves
        )
        if not plan:
            return []
        return self.migrator.storm(plan)

    # -- host lifecycle -----------------------------------------------------------

    def poll_host_faults(self) -> int:
        """Give the injector one shot at every UP host; returns crashes.

        Called once per workload step.  A fired ``HOST_CRASH`` drives the
        whole crash → recover leg inline: the host's volatile manager
        state dies, and the replacement daemon restores every resident
        the router knows about from the last committed checkpoint, then
        the router is re-pointed.  The fault is *handled*, not raised —
        like the supervisor's restart leg, recovery is the behaviour
        under test.
        """
        crashes = 0
        for host_id in sorted(self.hosts):
            host = self.hosts[host_id]
            if host.state is not HostState.UP:
                continue
            event = fire("cluster.host", host=host_id)
            if event is not None and event.kind is FaultKind.HOST_CRASH:
                crashes += 1
                self.crash_host(host_id)
                self.recover_host(host_id)
        return crashes

    def crash_host(self, host_id: str, flush: bool = True) -> None:
        """Kill one host's manager daemon hard.

        ``flush=True`` models the periodic checkpointer having run just
        before the crash (the chaos demo's convention); ``flush=False``
        leaves whatever the last workload checkpoint committed.
        """
        host = self.hosts[host_id]
        if flush:
            host.platform.manager.save_all()
        host.crash()

    def recover_host(self, host_id: str) -> Dict[str, int]:
        """Hard-restart a crashed host and re-point the router."""
        host = self.hosts[host_id]
        residents = [
            (name, host.platform.xen.domain(location.domid))
            for name, location in sorted(self.router.locations().items())
            if location.host_id == host_id
        ]
        with span("cluster.recover", host=host_id, residents=len(residents)):
            new_ids = host.hard_restart(residents)
        for name, location in self.router.locations().items():
            if location.host_id == host_id:
                self.router.rebind_instance(name, new_ids[location.vm_uuid])
        return new_ids

    # -- exposition ---------------------------------------------------------------

    def describe(self) -> List[Dict[str, object]]:
        return [self.hosts[h].describe() for h in sorted(self.hosts)]


def build_fleet(
    mode: AccessMode = AccessMode.IMPROVED,
    num_hosts: int = 4,
    seed: int = 2027,
    capacity: int = 16,
    name: str = "fleet",
    supervise: bool = True,
) -> Fleet:
    """The one-liner the demo, benchmarks and tests build fleets through."""
    return Fleet(
        mode=mode,
        num_hosts=num_hosts,
        seed=seed,
        capacity=capacity,
        name=name,
        supervise=supervise,
    )
