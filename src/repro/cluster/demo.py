"""The cluster acceptance demo: a fleet surviving a storm and a crash.

The claim mirrors the single-host chaos demo, scaled out: N hosts and M
guests run a deterministic per-guest command script while the fleet is
subjected to link partitions, a migration storm (a third of the guests
rebalanced mid-run through the attested sealed path) and one whole-host
crash with in-place recovery.  The oracles:

* **zero silent drops** — every submitted frame receives exactly one
  well-formed response (retried partitions return the real response;
  exhausted episodes return a degraded ``TPM_FAIL``, never nothing);
* **placed or failed** — every guest ends on an ``UP`` host, or its
  placement failed explicitly at admission;
* **no state loss, no placement sensitivity** — every guest's PCR/NV
  digest *and* its response-byte digest are byte-identical to a
  single-host, fault-free control run of the same per-guest scripts;
* **replay identity** — placement decisions, migration records and the
  fault sequence are identical across same-seed runs.

The per-guest scripts use only deterministic no-auth commands (extend,
PCR read) — exactly the commands whose responses depend on nothing but
the instance's own state, which is what makes the cross-host response
comparison meaningful.
"""

from __future__ import annotations

import contextlib
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.fleet import Fleet, build_fleet
from repro.cluster.host import HostState
from repro.core.config import AccessMode
from repro.crypto.random_source import RandomSource
from repro.faults import FaultInjector, FaultKind, FaultPlan, injector_scope, spec
from repro.harness.builder import fresh_timing_context
from repro.harness.chaos import _state_digest
from repro.obs import counters as obs_counters
from repro.obs import trace as obs_trace
from repro.sim.timing import get_context
from repro.tpm import marshal
from repro.tpm.constants import NUM_PCRS, TPM_ORD_Extend, TPM_ORD_PcrRead
from repro.util.errors import ClusterError, ReproError

DEFAULT_HOSTS = 4
DEFAULT_GUESTS = 32
DEFAULT_STEPS = 96
CHECKPOINT_EVERY = 24
#: every STORM_STRIDE-th guest (sorted) is rebalanced in the storm
STORM_STRIDE = 3


def default_cluster_plan(
    seed: int, num_hosts: int, crash_step: int, crash_host: str = "h1"
) -> FaultPlan:
    """Link partitions throughout, one whole-host crash mid-run.

    The ``cluster.host`` site is polled once per UP host per step (sorted
    order), so the crash spec arms at the first poll of ``crash_step``
    and the ``match`` filter lets it fire on the named host only.
    """
    crash_offset = max(0, (crash_step - 1) * num_hosts)
    return FaultPlan(
        name="cluster-chaos",
        seed=seed,
        specs=(
            # Sparse enough that one bounded-retry episode always clears
            # it (no two consecutive link calls both fire), so responses
            # stay byte-identical to the fault-free control.
            spec(FaultKind.PARTITION, every=23),
            spec(
                FaultKind.HOST_CRASH,
                every=1,
                offset=crash_offset,
                max_fires=1,
                match={"host": crash_host},
            ),
        ),
    )


@dataclass
class ClusterReport:
    """Everything one fleet run produced, for comparison and display."""

    seed: int
    hosts: int
    guests: int
    steps: int
    plan_name: str
    #: per-guest PCR/NV digest of the final instance, wherever it lives
    state_digests: Dict[str, str]
    #: per-guest SHA-256 over every response frame, in script order
    response_digests: Dict[str, str]
    fault_counts: Dict[str, int]
    total_faults: int
    event_signature: Tuple[Tuple[str, str, int], ...]
    placement_signature: Tuple
    migration_signature: Tuple[Tuple[str, str, str, str, int], ...]
    #: the zero-silent-drop ledger
    submitted: int
    answered: int
    malformed: int
    #: guests whose placement failed explicitly (admission refused)
    placement_failures: List[str]
    final_placements: Dict[str, str]
    host_states: Dict[str, str]
    host_crashes: int
    migrations_moved: int
    migrations_failed: int
    routed: int
    degraded: int
    elapsed_virtual_us: float
    #: decisions double-checked by the piggyback conformance oracle
    #: (0 unless the run was started with ``conformance=True``)
    conformance_checks: int = 0

    def summary_lines(self) -> List[str]:
        lines = [
            f"plan={self.plan_name} seed={self.seed} "
            f"hosts={self.hosts} guests={self.guests} steps={self.steps}",
            f"faults injected: {self.total_faults} "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.fault_counts.items())) or 'none'})",
            f"ledger: submitted={self.submitted} answered={self.answered} "
            f"malformed={self.malformed} degraded={self.degraded}",
            f"host crashes survived: {self.host_crashes}; migrations: "
            f"{self.migrations_moved} moved, {self.migrations_failed} failed",
            f"placements: "
            + ", ".join(
                f"{h}={sum(1 for p in self.final_placements.values() if p == h)}"
                for h in sorted(self.host_states)
            )
            + (f"; failed={self.placement_failures}"
               if self.placement_failures else ""),
            f"virtual time={self.elapsed_virtual_us / 1000.0:.2f} ms",
        ]
        digest_head = sorted(self.state_digests.items())[:4]
        for name, digest in digest_head:
            lines.append(f"state[{name}] = {digest[:16]}…")
        if len(self.state_digests) > len(digest_head):
            lines.append(f"… and {len(self.state_digests) - len(digest_head)} "
                         f"more guests, all digested")
        return lines


def _extend_wire(index: int, measurement: bytes) -> bytes:
    return marshal.build_command(
        TPM_ORD_Extend, struct.pack(">I", index) + measurement
    )


def _pcr_read_wire(index: int) -> bytes:
    return marshal.build_command(TPM_ORD_PcrRead, struct.pack(">I", index))


def _storm_moves(
    fleet: Fleet, guest_names: List[str]
) -> List[Tuple[str, str, str]]:
    """Every STORM_STRIDE-th guest moves to its next admissible ring
    candidate — guaranteed cross-host movement, unlike a pure rebalance
    of an already-well-placed fleet."""
    moves: List[Tuple[str, str, str]] = []
    for position, name in enumerate(sorted(guest_names)):
        if position % STORM_STRIDE:
            continue
        location = fleet.router.locate(name)
        candidates = fleet.ring.candidates(name)
        start = (
            candidates.index(location.host_id) + 1
            if location.host_id in candidates
            else 0
        )
        for offset in range(len(candidates)):
            target = candidates[(start + offset) % len(candidates)]
            if target != location.host_id and fleet.hosts[target].admissible():
                moves.append((name, location.host_id, target))
                break
    return moves


def run_cluster_workload(
    seed: int = 2027,
    hosts: int = DEFAULT_HOSTS,
    guests: int = DEFAULT_GUESTS,
    steps: int = DEFAULT_STEPS,
    plan: Optional[FaultPlan] = None,
    storm: bool = True,
    mode: AccessMode = AccessMode.IMPROVED,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
    conformance: bool = False,
) -> ClusterReport:
    """One full fleet run; ``plan=None`` means the fault-free control.

    Each guest's command script is drawn from an rng keyed to *(seed,
    guest name)* alone — independent of host count, placement, and every
    other guest — so the same scripts replay against any fleet shape and
    the per-guest digests are directly comparable across shapes.

    ``conformance=True`` piggybacks the charge-free reference-model
    oracle (:mod:`repro.verify.oracle`) on every host's monitor and
    raises if any authorization decision disagrees with it.
    """
    fresh_timing_context()
    with contextlib.ExitStack() as stack:
        if tracer is not None:
            stack.enter_context(obs_trace.tracer_scope(tracer))
        if counters is not None:
            stack.enter_context(obs_counters.registry_scope(counters))
        return _run_cluster_workload(
            seed, hosts, guests, steps, plan, storm, mode, conformance
        )


def _run_cluster_workload(
    seed: int,
    hosts: int,
    guests: int,
    steps: int,
    plan: Optional[FaultPlan],
    storm: bool,
    mode: AccessMode,
    conformance: bool = False,
) -> ClusterReport:
    # Capacity covers a whole fleet's worth of guests per host, so the
    # one-host control run and mid-storm transients always fit.
    fleet = build_fleet(
        mode=mode, num_hosts=hosts, seed=seed, capacity=max(guests, 4),
    )
    oracles = []
    if conformance:
        from repro.verify.oracle import attach_oracle

        oracles = [
            attach_oracle(fleet.hosts[host_id].platform)
            for host_id in sorted(fleet.hosts)
        ]
    guest_names = [f"g{index:02d}" for index in range(guests)]
    placement_failures: List[str] = []
    for name in guest_names:
        try:
            fleet.add_guest(name)
        except ClusterError:
            placement_failures.append(name)
    placed = [n for n in guest_names if n not in placement_failures]

    streams = {
        name: RandomSource(f"cluster-wl-{seed}-{name}".encode())
        for name in placed
    }
    response_hash = {name: hashlib.sha256() for name in placed}

    injector = FaultInjector(
        plan if plan is not None else FaultPlan(name="fault-free", seed=seed),
        audit=fleet.hosts["h0"].platform.audit,
    )

    submitted = 0
    answered = 0
    malformed = 0
    storm_step = max(1, steps // 3)
    crash_count = 0
    start_us = get_context().clock.now_us

    with injector_scope(injector):
        for step in range(1, steps + 1):
            crash_count += fleet.poll_host_faults()
            for name in placed:
                rng = streams[name]
                op = rng.randint_below(100)
                if op < 55:
                    wire = _extend_wire(
                        rng.randint_below(NUM_PCRS), rng.bytes(20)
                    )
                else:
                    wire = _pcr_read_wire(rng.randint_below(NUM_PCRS))
                submitted += 1
                response = fleet.router.send(name, wire)
                answered += 1
                try:
                    marshal.parse_response(response)
                # repro: allow[fail-closed] -- demo oracle counts malformed frames as its signal
                except ReproError:
                    malformed += 1
                response_hash[name].update(response)

            if step % CHECKPOINT_EVERY == 0:
                for host_id in sorted(fleet.hosts):
                    fleet.hosts[host_id].platform.manager.save_all()

            if storm and step == storm_step and len(fleet.hosts) > 1:
                fleet.migrator.storm(_storm_moves(fleet, placed))

        state_digests = {
            name: _state_digest(fleet.instance_for(name)) for name in placed
        }

    conformance_checks = 0
    if oracles:
        from repro.verify.oracle import settle_oracles

        conformance_checks = settle_oracles(oracles)

    moved = sum(
        1 for r in fleet.migrator.trail if r.outcome == "moved"
    )
    failed = sum(
        1 for r in fleet.migrator.trail if r.outcome == "failed"
    )
    return ClusterReport(
        seed=seed,
        hosts=hosts,
        guests=guests,
        steps=steps,
        plan_name=injector.plan.name,
        state_digests=state_digests,
        response_digests={
            name: h.hexdigest() for name, h in response_hash.items()
        },
        fault_counts=dict(injector.fault_counts),
        total_faults=len(injector.events),
        event_signature=injector.event_signature(),
        placement_signature=fleet.scheduler.trail_signature(),
        migration_signature=fleet.migrator.trail_signature(),
        submitted=submitted,
        answered=answered,
        malformed=malformed,
        placement_failures=placement_failures,
        final_placements=fleet.router.placements(),
        host_states={
            host_id: host.state.value
            for host_id, host in sorted(fleet.hosts.items())
        },
        host_crashes=crash_count,
        migrations_moved=moved,
        migrations_failed=failed,
        routed=fleet.router.routed,
        degraded=fleet.router.degraded,
        elapsed_virtual_us=get_context().clock.now_us - start_us,
        conformance_checks=conformance_checks,
    )


def run_cluster_demo(
    seed: int = 2027,
    hosts: int = DEFAULT_HOSTS,
    guests: int = DEFAULT_GUESTS,
    steps: int = DEFAULT_STEPS,
    plan: Optional[FaultPlan] = None,
    tracer: Optional[obs_trace.Tracer] = None,
    counters: Optional[obs_counters.CounterRegistry] = None,
) -> Dict[str, object]:
    """The acceptance demo: single-host control vs chaotic fleet vs replay.

    Raises :class:`AssertionError` on any violated oracle.  ``tracer`` /
    ``counters`` observe the chaotic run only, so the replay comparison
    doubles as the observer non-interference check.
    """
    chaos_plan = plan if plan is not None else default_cluster_plan(
        seed, hosts, crash_step=max(1, (2 * steps) // 3)
    )
    control = run_cluster_workload(
        seed=seed, hosts=1, guests=guests, steps=steps, plan=None,
        storm=False,
    )
    chaotic = run_cluster_workload(
        seed=seed, hosts=hosts, guests=guests, steps=steps, plan=chaos_plan,
        storm=True, tracer=tracer, counters=counters,
    )
    replay = run_cluster_workload(
        seed=seed, hosts=hosts, guests=guests, steps=steps, plan=chaos_plan,
        storm=True,
    )

    assert control.total_faults == 0, "control run must be fault-free"
    assert chaotic.fault_counts.get("partition", 0) > 0, (
        "the plan never partitioned the cluster link"
    )
    assert chaotic.host_crashes >= 1, "the plan never crashed a host"
    assert chaotic.migrations_moved >= 1, "the storm never moved a guest"
    # Zero silent drops, in every run.
    for report in (control, chaotic, replay):
        assert report.answered == report.submitted, (
            f"{report.plan_name}: "
            f"{report.submitted - report.answered} frames silently dropped"
        )
        assert report.malformed == 0, (
            f"{report.plan_name}: {report.malformed} malformed responses"
        )
    # Placed-or-failed: every guest ends on an UP host or failed loudly.
    for report in (chaotic, replay):
        for guest, host_id in report.final_placements.items():
            assert report.host_states[host_id] == HostState.UP.value, (
                f"guest {guest} stranded on {host_id} "
                f"({report.host_states[host_id]})"
            )
        assert (
            len(report.final_placements) + len(report.placement_failures)
            == report.guests
        )
    # No state loss, no placement sensitivity: digests match the
    # single-host fault-free control byte for byte.
    assert chaotic.state_digests == control.state_digests, (
        "state divergence vs the single-host fault-free control"
    )
    assert chaotic.response_digests == control.response_digests, (
        "response divergence vs the single-host fault-free control"
    )
    # Replay identity: schedules and fault sequence reproduce exactly.
    assert chaotic.event_signature == replay.event_signature
    assert chaotic.placement_signature == replay.placement_signature
    assert chaotic.migration_signature == replay.migration_signature
    assert chaotic.state_digests == replay.state_digests
    assert chaotic.response_digests == replay.response_digests
    return {
        "control": control,
        "chaotic": chaotic,
        "replay": replay,
        "zero_dropped": True,
        "state_preserved": True,
        "deterministic": True,
    }
