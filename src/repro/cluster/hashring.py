"""Consistent-hash ring for sharding vTPM instances across hosts.

Placement must be stable (adding a host moves only the guests that now
hash to it), deterministic (same members + same key → same candidate walk
on every run and every host), and weighted (a host with twice the
capacity owns roughly twice the keyspace).  The classic construction
does all three: each host contributes ``weight × VNODES_PER_WEIGHT``
virtual nodes at SHA-256-derived points on a 64-bit ring, and a key's
candidate list is the distinct hosts met walking clockwise from the
key's own point.

The ring knows nothing about health or load — it proposes an *order* of
candidates, and the :class:`~repro.cluster.scheduler.PlacementScheduler`
scores and filters them.  Keeping the two concerns separate is what makes
rebalancing after membership or health changes a pure function of
observable state.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

from repro.util.errors import ClusterError

#: virtual nodes per unit of weight; enough to keep the keyspace spread
#: within a few percent of fair at single-digit host counts
VNODES_PER_WEIGHT = 16


def _point(label: str) -> int:
    """A stable 64-bit ring position for one label."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Weighted consistent hashing over opaque node ids."""

    def __init__(self) -> None:
        self._weights: Dict[str, int] = {}
        self._points: List[Tuple[int, str]] = []  # sorted (position, node)

    # -- membership --------------------------------------------------------------

    def add(self, node_id: str, weight: int = 1) -> None:
        if node_id in self._weights:
            raise ClusterError(f"node {node_id!r} already on the ring")
        if weight < 1:
            raise ClusterError(f"node {node_id!r} needs positive weight")
        self._weights[node_id] = weight
        for replica in range(weight * VNODES_PER_WEIGHT):
            bisect.insort(
                self._points, (_point(f"{node_id}#{replica}"), node_id)
            )

    def remove(self, node_id: str) -> None:
        if node_id not in self._weights:
            raise ClusterError(f"node {node_id!r} is not on the ring")
        del self._weights[node_id]
        self._points = [p for p in self._points if p[1] != node_id]

    def nodes(self) -> List[str]:
        return sorted(self._weights)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    # -- lookup ------------------------------------------------------------------

    def candidates(self, key: str, count: int = 0) -> List[str]:
        """Distinct nodes in ring order from ``key``'s point.

        ``count=0`` returns every member once — the full preference order
        the scheduler filters.  The walk is a pure function of membership
        and the key, which is what the replay-identity oracle leans on.
        """
        if not self._points:
            raise ClusterError("consistent-hash ring has no members")
        wanted = count or len(self._weights)
        start = bisect.bisect_right(self._points, (_point(key), "￿"))
        found: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) >= wanted:
                    break
        return found

    def primary(self, key: str) -> str:
        return self.candidates(key, count=1)[0]
