"""The attack matrix: every attack against one platform regime (Table 2)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import AccessMode
from repro.harness.builder import Platform, build_platform


class AttackOutcome(enum.Enum):
    SUCCEEDED = "succeeded"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class AttackReport:
    """One cell of the attack matrix."""

    attack: str
    description: str
    mode: AccessMode
    outcome: AttackOutcome
    detail: str

    @property
    def succeeded(self) -> bool:
        return self.outcome is AttackOutcome.SUCCEEDED


OWNER_AUTH = b"victim-owner-auth!!!"
COUNTER_AUTH = b"victim-counter-auth!"


def run_attack_matrix(
    mode: AccessMode,
    seed: int = 42,
    platform: Optional[Platform] = None,
) -> List[AttackReport]:
    """Build a victim platform, run every attack, and report each outcome.

    The platform hosts a victim guest (with real vTPM usage: ownership,
    measurements, sealed data) and an attacker guest; each attack then runs
    with the privileges its threat model grants.
    """
    from repro.attacks.cpudump import CpuDumpAttack
    from repro.attacks.memdump import MemoryDumpAttack
    from repro.attacks.replay import ReplayAttack
    from repro.attacks.rogue import RogueRebindAttack
    from repro.attacks.theft import (
        ForeignRestoreAttack,
        MigrationInterceptAttack,
        StateFileTheftAttack,
    )

    p = platform or build_platform(mode, seed=seed, name=f"victim-{mode.value}")
    victim = p.add_guest("victim-web")
    attacker = p.add_guest("attacker-vm")
    # The victim actually uses its vTPM, so there are real secrets to steal.
    import hashlib

    ek = victim.client.read_pubek()
    victim.client.take_ownership(OWNER_AUTH, b"victim-srk-auth!!!!!", ek)
    victim.client.extend(10, hashlib.sha1(b"victim-app-v1").digest())
    from repro.tpm.constants import TPM_KH_SRK

    victim.client.seal(
        TPM_KH_SRK, b"victim-srk-auth!!!!!", b"customer-database-key-material",
        b"victim-data-auth!!!!",
    )

    reports: List[AttackReport] = []

    def record(attack, succeeded: bool, detail: str) -> None:
        reports.append(
            AttackReport(
                attack=attack.name,
                description=attack.description,
                mode=mode,
                outcome=(
                    AttackOutcome.SUCCEEDED if succeeded else AttackOutcome.BLOCKED
                ),
                detail=detail,
            )
        )

    memdump = MemoryDumpAttack(p)
    record(memdump, *memdump.run(victim.instance_id))

    cpudump = CpuDumpAttack(p)
    record(cpudump, *cpudump.run(victim.instance_id))

    rogue = RogueRebindAttack(p, attacker=attacker, victim=victim)
    record(rogue, *rogue.run())

    replay = ReplayAttack(
        p, victim=victim, owner_auth=OWNER_AUTH, counter_auth=COUNTER_AUTH
    )
    record(replay, *replay.run())

    theft = StateFileTheftAttack(p)
    record(theft, *theft.run(victim.instance_id))

    restore = ForeignRestoreAttack(p)
    record(restore, *restore.run(victim.instance_id))

    # Migration interception needs a destination platform of the same regime.
    destination = build_platform(mode, seed=seed + 1, name=f"dst-{mode.value}")
    intercept = MigrationInterceptAttack(p, destination)
    record(intercept, *intercept.run(victim))

    return reports


def matrix_rows(
    baseline: List[AttackReport], improved: List[AttackReport]
) -> List[tuple[str, str, str]]:
    """Pair the two regimes into printable (attack, baseline, improved) rows."""
    by_name_b = {r.attack: r for r in baseline}
    by_name_i = {r.attack: r for r in improved}
    rows = []
    for name in by_name_b:
        rows.append(
            (
                name,
                by_name_b[name].outcome.value,
                by_name_i[name].outcome.value if name in by_name_i else "?",
            )
        )
    return rows
