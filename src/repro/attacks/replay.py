"""Replay attack: re-inject a captured authorized command.

A Dom0-level attacker can map the victim's ring page (it is granted to the
back-end domain) and inject bytes that look exactly like front-end traffic
— so the manager-level identity check *cannot* distinguish a replay.  The
designed defence is TPM 1.2's own rolling-nonce authorization: the session
nonce advanced when the original executed, so the stale HMAC fails.

This attack therefore documents defence-in-depth: it is blocked in **both**
regimes, by the TPM protocol layer rather than the new access-control
layer.  (Table 2 reports the blocking layer per cell.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.builder import GuestHandle, Platform
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_IncrementCounter, TPM_SUCCESS


@dataclass
class ReplayAttack:
    """Capture an IncrementCounter and replay it through the ring."""

    platform: Platform
    victim: GuestHandle
    owner_auth: bytes
    counter_auth: bytes

    name = "replay"
    description = "Dom0 re-injects a captured authorized command into the ring"

    def run(self) -> tuple[bool, str]:
        victim = self.victim
        handle, _start = victim.client.create_counter(
            self.owner_auth, self.counter_auth, b"repl"
        )
        # Tap the victim's transport to capture the authorized increment.
        captured: list[bytes] = []
        original_send = victim.client._send

        def tap(wire: bytes) -> bytes:
            captured.append(wire)
            return original_send(wire)

        victim.client._send = tap
        try:
            after_first = victim.client.increment_counter(self.counter_auth, handle)
        finally:
            victim.client._send = original_send
        increments = [
            w for w in captured
            if marshal.parse_command(w).ordinal == TPM_ORD_IncrementCounter
        ]
        if not increments:
            return False, "capture failed: no IncrementCounter observed"
        replay_wire = increments[-1]
        # Inject through the manager exactly as ring-injected bytes would
        # arrive: attributed to the victim front-end domain.
        response = self.platform.manager.handle_command(
            victim.domain.domid, victim.instance_id, replay_wire
        )
        code = marshal.parse_response(response).return_code
        now = victim.client.read_counter(handle)
        if code == TPM_SUCCESS or now != after_first:
            return True, (
                f"replay executed (code {code:#x}); counter moved "
                f"{after_first} → {now}"
            )
        return False, (
            f"replay rejected with code {code:#x} (rolling nonce); "
            f"counter still {now}"
        )
