"""CPU-dump attack: snapshot the manager's vCPU registers mid-operation.

Models the abstract's "CPU dump software": while the manager executes vTPM
crypto, private-key fragments transit its registers.  A privileged
attacker reads the vCPU context (``xc_vcpu_getcontext``) right after a
victim command and checks the registers against the victim's key material.
The improved manager scrubs key-bearing registers after every command, so
the same dump comes back zeroed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.builder import Platform
from repro.xen.hypercall import HypercallInterface


@dataclass
class CpuDumpAttack:
    """Dump manager vCPU context and compare against victim key material."""

    platform: Platform
    attacker_domid: int = 0

    name = "cpu-dump"
    description = "Dom0 reads manager vCPU registers during vTPM crypto"

    def run(self, victim_instance_id: int) -> tuple[bool, str]:
        platform = self.platform
        victim = platform.manager.instance(victim_instance_id)
        # Drive one command through the victim's path so key material is
        # "in flight" at dump time (GetRandom exercises the dispatch path).
        from repro.tpm.marshal import build_command
        from repro.tpm.constants import TPM_ORD_GetRandom
        from repro.util.bytesio import ByteWriter

        guest_domid = self._victim_domid(victim.vm_uuid)
        wire = build_command(TPM_ORD_GetRandom, ByteWriter().u32(8).getvalue())
        platform.manager.handle_command(guest_domid, victim_instance_id, wire)

        hypercalls = HypercallInterface(platform.xen, self.attacker_domid)
        registers = hypercalls.dump_vcpu(platform.manager.manager_domid)
        dumped = b"".join(
            registers[r].to_bytes(8, "big") for r in ("rax", "rbx", "rcx", "rdx")
        )
        ek = victim.device.state.keys.ek
        fragment = ek.keypair.serialize_private()[:32] if ek else b""
        if fragment and dumped == fragment:
            return True, "vCPU dump contained 32 bytes of the victim EK private key"
        if any(registers[r] for r in ("rax", "rbx", "rcx", "rdx")):
            return False, "registers held non-matching data (scrubbed or reused)"
        return False, "key-bearing registers were zeroed before the dump"

    def _victim_domid(self, vm_uuid: str) -> int:
        for domain in self.platform.xen.domains():
            if domain.uuid == vm_uuid:
                return domain.domid
        raise LookupError(f"no domain with uuid {vm_uuid}")
