"""Rogue re-binding attack: point a back-end at someone else's vTPM.

In stock Xen the instance a front-end talks to is *backend configuration*
(a number in XenStore that Dom0 can edit at will).  A compromised Dom0 —
or an attacker VM colluding with a tampered backend — re-binds its
connection to the victim's instance number and then drives the victim's
vTPM directly: reading its PCRs (breaks privacy) and extending them
(breaks every future attestation and unseal).

TPM 1.2 does **not** authenticate PCRRead/Extend, so the TPM itself cannot
stop this; only the manager-level binding check (measured identity vs
instance owner) can — which is the heart of the paper's improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.builder import GuestHandle, Platform
from repro.util.errors import TpmError, VtpmError


@dataclass
class RogueRebindAttack:
    """Attacker guest re-binds to the victim instance and drives it."""

    platform: Platform
    attacker: GuestHandle
    victim: GuestHandle

    name = "rogue-rebind"
    description = "back-end re-bound to victim instance; attacker drives victim vTPM"

    def run(self) -> tuple[bool, str]:
        original = self.attacker.backend.instance_id
        victim_pcr_before = self.victim.client.pcr_read(10)
        try:
            self.attacker.backend.rebind(self.victim.instance_id)
        except VtpmError as exc:
            # Improved regime: the backend's fail-closed identity check
            # refuses the re-bind before a single command can flow.
            return False, f"backend refused the re-bind: {exc}"
        try:
            # Privacy: read victim platform state through the hijacked ring.
            leaked = self.attacker.client.pcr_read(10)
            # Integrity: corrupt victim PCR 10 so its future quotes/unseals break.
            self.attacker.client.extend(10, b"\xee" * 20)
        except TpmError as exc:
            return False, (
                f"manager denied the re-bound connection (code {exc.code:#x})"
            )
        finally:
            self.attacker.backend.rebind(original)
        victim_pcr_after = self.victim.client.pcr_read(10)
        if leaked == victim_pcr_before and victim_pcr_after != victim_pcr_before:
            return True, (
                "attacker read victim PCR10 and corrupted it through the "
                "re-bound back-end"
            )
        return False, "re-bound commands executed but had no observable effect"
