"""Data-at-rest and data-in-flight theft attacks.

* :class:`StateFileTheftAttack` — copy the manager's state files from disk
  and scan for key material (baseline stores plaintext).
* :class:`MigrationInterceptAttack` — capture the migration byte stream
  between two platforms and scan it.
* :class:`ForeignRestoreAttack` — take the stolen files *and* the sealed
  root blob to a different physical machine and try to open them there;
  the hardware-TPM sealing makes the loot platform-locked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.attacks.memdump import secrets_found
from repro.core.config import AccessMode
from repro.core.sealing import StateSealer
from repro.harness.builder import GuestHandle, Platform, SRK_AUTH
from repro.tpm.state import TpmState
from repro.util.errors import MarshalError, SealingError
from repro.vtpm.storage import latest_raw_payload


@dataclass
class StateFileTheftAttack:
    """Steal every vTPM state file from the manager's disk."""

    platform: Platform

    name = "state-theft"
    description = "attacker copies persistent vTPM state files from Dom0 disk"

    def run(self, victim_instance_id: int) -> tuple[bool, str]:
        manager = self.platform.manager
        manager.save_all()  # the files a long-running manager would have
        loot = manager.storage.disk.raw_contents()
        image = b"".join(loot.values())
        victim = manager.instance(victim_instance_id)
        hits = secrets_found(image, victim.device.state.secret_material())
        if hits:
            return True, (
                f"{len(loot)} stolen files contained {len(hits)} secret strings "
                "in cleartext"
            )
        return False, (
            f"{len(loot)} stolen files are ciphertext; no victim secrets found"
        )


@dataclass
class MigrationInterceptAttack:
    """Capture the vTPM migration stream between two platforms."""

    source: Platform
    destination: Platform

    name = "migration-intercept"
    description = "attacker records vTPM migration traffic on the wire"

    def run(self, victim: GuestHandle) -> tuple[bool, str]:
        source, destination = self.source, self.destination
        victim_secrets = source.manager.instance(
            victim.instance_id
        ).device.state.secret_material()
        target_vm = destination.xen.create_domain(
            victim.domain.name,
            kernel_image=victim.domain.kernel_image,
            config=dict(victim.domain.config),
        )
        if source.mode is AccessMode.IMPROVED:
            offer = destination.migration.prepare_target()
            package = source.migration.export_sealed(victim.domain.uuid, offer)
            destination.migration.import_sealed(package, target_vm)
        else:
            package = source.migration.export_plaintext(victim.domain.uuid)
            destination.migration.import_plaintext(package, target_vm)
        hits = secrets_found(package.payload, victim_secrets)
        if hits:
            return True, (
                f"captured {len(package)} bytes of migration traffic containing "
                f"{len(hits)} secret strings"
            )
        return False, (
            f"captured {len(package)} bytes; stream is sealed to the destination "
            "hardware TPM"
        )


@dataclass
class ForeignRestoreAttack:
    """Restore stolen state files on the attacker's own machine."""

    platform: Platform
    attacker_platform: Optional[Platform] = None

    name = "foreign-restore"
    description = "attacker rebuilds stolen vTPM state on another physical host"

    def run(self, victim_instance_id: int) -> tuple[bool, str]:
        manager = self.platform.manager
        manager.save_all()
        victim = manager.instance(victim_instance_id)
        loot = manager.storage.disk.raw_contents()
        # Strip the crash-consistency generation frame — a thief reads the
        # newest complete payload straight off the stolen medium.
        state_file = latest_raw_payload(loot, victim.vm_uuid)
        if state_file is None:
            return False, "no state file on disk for the victim"
        # Direct rebuild: works iff the file is cleartext TPM state.
        try:
            TpmState.deserialize(state_file)
            return True, (
                "state file parsed as cleartext TPM state on a foreign host; "
                "full key hierarchy recovered"
            )
        # repro: allow[fail-closed] -- attack harness deliberately probes malformed frames
        except MarshalError:
            pass
        # Ciphertext: the attacker also stole the sealed root blob and tries
        # to unlock it with *their own* machine's hardware TPM.
        attacker = self.attacker_platform or Platform(
            mode=AccessMode.IMPROVED, seed=666, name="attacker-host"
        )
        sealed_root = (
            self.platform.sealer.sealed_root_blob if self.platform.sealer else None
        )
        if sealed_root is None:
            return False, "state file is ciphertext and no sealed root exists"
        foreign_sealer = StateSealer(
            attacker.hw_client, SRK_AUTH, attacker.rng.fork("thief")
        )
        try:
            foreign_sealer.unlock(sealed_root)
        except SealingError as exc:
            return False, f"foreign hardware TPM refused the sealed root: {exc}"
        return True, "foreign TPM unsealed the root (should be impossible)"
