"""Memory-dump attack: ``xm dump-core`` against the vTPM manager domain.

The attacker holds Dom0 root (the paper's Amazon scenario: a malicious or
compromised administrator).  It snapshots every mappable frame of the
manager domain and greps the image for the victim instance's secret
material — EK/SRK private halves, owner auth, NV payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.harness.builder import Platform
from repro.xen.hypercall import HypercallInterface

#: ignore secrets shorter than this when scanning (avoids trivial false
#: positives on tiny byte strings)
MIN_SECRET_LEN = 16


def secrets_found(image: bytes, secrets: Iterable[bytes]) -> List[bytes]:
    """Which of ``secrets`` appear verbatim in ``image``."""
    return [s for s in secrets if len(s) >= MIN_SECRET_LEN and s in image]


@dataclass
class MemoryDumpAttack:
    """Dump the manager domain and hunt for a victim instance's secrets."""

    platform: Platform
    attacker_domid: int = 0  # Dom0

    name = "mem-dump-manager"
    description = "Dom0 dumps vTPM manager memory and scans for key material"

    def run(self, victim_instance_id: int) -> tuple[bool, str]:
        """Returns (succeeded, detail)."""
        hypercalls = HypercallInterface(self.platform.xen, self.attacker_domid)
        manager_domid = self.platform.manager.manager_domid
        image_pages = hypercalls.dump_domain_memory(manager_domid)
        image = b"".join(image_pages.values())
        victim = self.platform.manager.instance(victim_instance_id)
        secrets = victim.device.state.secret_material()
        hits = secrets_found(image, secrets)
        if hits:
            return True, (
                f"dump of dom{manager_domid} ({len(image_pages)} pages) "
                f"contained {len(hits)}/{len(secrets)} secret strings"
            )
        return False, (
            f"dump of dom{manager_domid} yielded {len(image_pages)} pages; "
            f"no vTPM secrets present"
        )
