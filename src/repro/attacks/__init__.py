"""Attack toolkit: the adversary from the paper's abstract, made concrete.

Each attack models a capability of a privileged (Dom0-level) or co-resident
attacker against the vTPM subsystem:

* :mod:`~repro.attacks.memdump` — "memory dump software": foreign-map
  the manager's pages and scan for key material.
* :mod:`~repro.attacks.cpudump` — "CPU dump software": snapshot vCPU
  registers while vTPM crypto is in flight.
* :mod:`~repro.attacks.rogue` — re-bind a back-end to a victim's instance.
* :mod:`~repro.attacks.replay` — resend a captured authorized command.
* :mod:`~repro.attacks.theft` — steal state files at rest or migration
  traffic in flight; try restoring loot on a foreign platform.
* :mod:`~repro.attacks.scenarios` — run the whole matrix against a
  platform and report success/blocked per attack (Table 2).
"""

from repro.attacks.scenarios import AttackOutcome, AttackReport, run_attack_matrix
from repro.attacks.memdump import MemoryDumpAttack, secrets_found
from repro.attacks.cpudump import CpuDumpAttack
from repro.attacks.rogue import RogueRebindAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.theft import (
    MigrationInterceptAttack,
    StateFileTheftAttack,
    ForeignRestoreAttack,
)

__all__ = [
    "AttackOutcome",
    "AttackReport",
    "run_attack_matrix",
    "MemoryDumpAttack",
    "secrets_found",
    "CpuDumpAttack",
    "RogueRebindAttack",
    "ReplayAttack",
    "MigrationInterceptAttack",
    "StateFileTheftAttack",
    "ForeignRestoreAttack",
]
