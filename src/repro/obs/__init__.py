"""End-to-end observability: trace spans, counters, sinks.

The pipeline (frontend → ring → backend → manager → monitor → engine) is
instrumented with :func:`span` / :func:`inc` hook sites.  Both are
ambient-installed like the fault injector: with nothing installed every
hook is a single ``None`` check, charges no virtual time, and touches no
simulation state — the integration suite asserts that traced and
untraced runs produce byte-identical state digests and audit chains.

Typical use::

    from repro import obs

    sink = obs.InMemorySink()
    with obs.tracer_scope(obs.Tracer(sink)), \\
         obs.registry_scope(obs.CounterRegistry()) as counters:
        guest.client.pcr_read(10)
    sink.validate()                     # structural oracle
    print(counters.exposition())        # text exposition format
"""

from repro.obs.counters import (
    CounterHandle,
    CounterRegistry,
    counter,
    current_registry,
    inc,
    install_registry,
    registry_scope,
    set_gauge,
)
from repro.obs.sinks import (
    CountingSink,
    InMemorySink,
    JsonlSink,
    SelfTimeSink,
    format_span_tree,
    load_jsonl,
    validate_tree_dict,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    span,
    span_event,
    tracer_scope,
    validate_span_tree,
)

__all__ = [
    "CounterHandle",
    "CounterRegistry",
    "CountingSink",
    "InMemorySink",
    "JsonlSink",
    "NULL_SPAN",
    "SelfTimeSink",
    "Span",
    "Tracer",
    "counter",
    "current_registry",
    "current_tracer",
    "format_span_tree",
    "inc",
    "install_registry",
    "install_tracer",
    "load_jsonl",
    "registry_scope",
    "set_gauge",
    "span",
    "span_event",
    "tracer_scope",
    "validate_span_tree",
    "validate_tree_dict",
]
