"""Process-wide counter/gauge registry with a text exposition format.

Counters answer the questions the span trees are too granular for: how
many commands of each ordinal class ran, the allow/deny split, the
decision-cache hit ratio, batch sizes, injected faults and retries.
Hook sites call the module-level :func:`inc` / :func:`set_gauge`; with no
registry installed those are a single ``None`` check, so the disabled
path costs nothing and can never perturb the simulation.

Hot sites use **counter handles** instead: a :class:`CounterHandle` is
created once at module-import time with :func:`counter` and pre-resolves
its ``(name, labels)`` series key.  Its :meth:`~CounterHandle.inc` is a
global read, two identity compares and a list-cell add — no kwargs dict,
no tuple building, no hashing — yet it follows registry installation and
timing-context epochs exactly like the named path (a stale-epoch write
still raises).  Counts are stored in shared one-element list cells, so
handle writes and named writes to the same series land in one place.

A registry is **bound to the timing context it first records under**.
``fresh_timing_context()`` starts a new measurement epoch (clock back to
zero), and silently mixing counts across that reset is the same bug the
:class:`~repro.metrics.recorder.LatencyRecorder` fix guards against — so
a cross-context write raises :class:`~repro.util.errors.ReproError`
instead.  ``reset()`` clears the counts *and* the binding.

The exposition format is the Prometheus text convention (one
``name{label="value",…} count`` line per series), minus the type
metadata — enough for offline diffing and for tests to assert on.
Series are emitted in deterministic sorted order: ascending by metric
name, then by the sorted label tuple — so all label sets of one metric
are contiguous and two runs with the same counts produce byte-identical
exposition text.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim import timing as _timing
from repro.sim.timing import get_context
from repro.util.errors import ReproError

_LabelKey = Tuple[Tuple[str, str], ...]


def _series_key(name: str, labels: Dict[str, object]) -> Tuple[str, _LabelKey]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_series(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterRegistry:
    """Monotonic counters plus last-value gauges, keyed by (name, labels).

    Counter values live in one-element list *cells* so pre-resolved
    handles can increment them without re-hashing the series key.
    """

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], List[float]] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        self._ctx = None
        # Identity token handles compare to detect reset() cheaply; a new
        # object per epoch means a stale handle always misses and re-resolves.
        self._epoch_token = object()

    # -- context binding ---------------------------------------------------------

    def _check_context(self) -> None:
        ctx = get_context()
        if self._ctx is None:
            self._ctx = ctx
        elif ctx is not self._ctx:
            raise ReproError(
                "CounterRegistry is bound to an earlier timing context; "
                "counts recorded across a sim-context reset would mix "
                "measurement epochs — call reset() (or use a fresh registry) "
                "after fresh_timing_context()"
            )

    def reset(self) -> None:
        """Drop all series and the context binding (new measurement epoch).

        Cells are discarded wholesale; any handle bound to them re-resolves
        on its next increment (the handle's epoch check fails closed).
        """
        self._counters.clear()
        self._gauges.clear()
        self._ctx = None
        self._epoch_token = object()

    def _cell(self, name: str, label_key: _LabelKey) -> List[float]:
        """The (shared, mutable) cell for one counter series."""
        key = (name, label_key)
        cell = self._counters.get(key)
        if cell is None:
            cell = self._counters[key] = [0.0]
        return cell

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ReproError(f"counter {name!r} cannot decrease (by {amount})")
        self._check_context()
        key = _series_key(name, labels) if labels else (name, ())
        cell = self._counters.get(key)
        if cell is None:
            self._counters[key] = [amount]
        else:
            cell[0] += amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._check_context()
        self._gauges[_series_key(name, labels)] = float(value)

    # -- queries -----------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        cell = self._counters.get(_series_key(name, labels))
        return cell[0] if cell is not None else 0.0

    def gauge(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get(_series_key(name, labels))

    def total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        return sum(
            cell[0] for (n, _), cell in self._counters.items() if n == name
        )

    def series(self) -> Dict[str, float]:
        """Flat {rendered series: value} view over counters and gauges."""
        out = {
            _render_series(name, labels): cell[0]
            for (name, labels), cell in self._counters.items()
        }
        out.update(
            {
                _render_series(name, labels): value
                for (name, labels), value in self._gauges.items()
            }
        )
        return out

    # -- exposition ----------------------------------------------------------------

    def exposition(self) -> str:
        """The text exposition: deterministically sorted ``series value``
        lines — ascending by metric name, then by label tuple, counters
        and gauges merged — so all series of one metric are contiguous
        and the output is stable across runs."""
        entries = [
            (name, labels, cell[0])
            for (name, labels), cell in self._counters.items()
        ]
        entries.extend(
            (name, labels, value)
            for (name, labels), value in self._gauges.items()
        )
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        lines = []
        for name, labels, value in entries:
            rendered = _render_series(name, labels)
            if value == int(value):
                lines.append(f"{rendered} {int(value)}")
            else:
                lines.append(f"{rendered} {value:.6g}")
        return "\n".join(lines) + ("\n" if lines else "")


# -- ambient installation -------------------------------------------------------------

_current_registry: Optional[CounterRegistry] = None


def install_registry(
    registry: Optional[CounterRegistry],
) -> Optional[CounterRegistry]:
    """Install (or clear, with ``None``) the ambient registry."""
    global _current_registry
    previous = _current_registry
    _current_registry = registry
    return previous


def current_registry() -> Optional[CounterRegistry]:
    return _current_registry


@contextlib.contextmanager
def registry_scope(registry: CounterRegistry) -> Iterator[CounterRegistry]:
    """``with registry_scope(reg):`` — counts land only inside the block."""
    previous = install_registry(registry)
    try:
        yield registry
    finally:
        install_registry(previous)


def inc(name: str, amount: float = 1.0, **labels) -> None:
    """Hook entry point: count one event; no-op when no registry is on."""
    registry = _current_registry
    if registry is not None:
        registry.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Hook entry point: record a last-value gauge; no-op when off."""
    registry = _current_registry
    if registry is not None:
        registry.set_gauge(name, value, **labels)


class CounterHandle:
    """A pre-resolved counter series: the hot-path write primitive.

    Create once at module init with :func:`counter`; call
    :meth:`inc`/:meth:`add` per event.  The handle caches the registry it
    last resolved against plus that registry's bound timing context; when
    either changes (a new ``registry_scope``, a ``reset()``, or a
    ``fresh_timing_context()``) the cached cell is re-resolved through the
    full checked path, so epoch violations still raise exactly as they do
    for :meth:`CounterRegistry.inc`.
    """

    __slots__ = (
        "name", "label_key", "_registry", "_epoch", "_registry_ctx", "_cell",
    )

    def __init__(self, name: str, label_key: _LabelKey = ()) -> None:
        self.name = name
        self.label_key = label_key
        self._registry: Optional[CounterRegistry] = None
        self._epoch = None
        self._registry_ctx = None
        self._cell: Optional[List[float]] = None

    def _rebind(self, registry: CounterRegistry,
                amount: float) -> List[float]:
        if amount < 0:
            raise ReproError(
                f"counter {self.name!r} cannot decrease (by {amount})"
            )
        registry._check_context()
        cell = registry._cell(self.name, self.label_key)
        self._registry = registry
        self._epoch = registry._epoch_token
        self._registry_ctx = registry._ctx
        self._cell = cell
        return cell

    def inc(self, amount: float = 1.0) -> None:
        """Count ``amount`` events; a ``None`` check when counting is off."""
        registry = _current_registry
        if registry is None:
            return
        if (
            registry is not self._registry
            or registry._epoch_token is not self._epoch
            or _timing._current_context is not self._registry_ctx
        ):
            cell = self._rebind(registry, amount)
        else:
            cell = self._cell
        cell[0] += amount

    #: ``add(n)`` — same operation, spelled for bulk increments
    add = inc


def counter(name: str, **labels) -> CounterHandle:
    """Build a :class:`CounterHandle` for ``name`` with fixed ``labels``.

    Intended to be called once per site at module-import time; the
    returned handle is then valid for the life of the process across any
    number of registries and timing contexts.
    """
    return CounterHandle(
        name, tuple(sorted((k, str(v)) for k, v in labels.items()))
    )
