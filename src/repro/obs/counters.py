"""Process-wide counter/gauge registry with a text exposition format.

Counters answer the questions the span trees are too granular for: how
many commands of each ordinal class ran, the allow/deny split, the
decision-cache hit ratio, batch sizes, injected faults and retries.
Hook sites call the module-level :func:`inc` / :func:`set_gauge`; with no
registry installed those are a single ``None`` check, so the disabled
path costs nothing and can never perturb the simulation.

A registry is **bound to the timing context it first records under**.
``fresh_timing_context()`` starts a new measurement epoch (clock back to
zero), and silently mixing counts across that reset is the same bug the
:class:`~repro.metrics.recorder.LatencyRecorder` fix guards against — so
a cross-context write raises :class:`~repro.util.errors.ReproError`
instead.  ``reset()`` clears the counts *and* the binding.

The exposition format is the Prometheus text convention (one
``name{label="value",…} count`` line per series, sorted), minus the type
metadata — enough for offline diffing and for tests to assert on.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional, Tuple

from repro.sim.timing import get_context
from repro.util.errors import ReproError

_LabelKey = Tuple[Tuple[str, str], ...]


def _series_key(name: str, labels: Dict[str, object]) -> Tuple[str, _LabelKey]:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_series(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class CounterRegistry:
    """Monotonic counters plus last-value gauges, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, _LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], float] = {}
        self._ctx = None

    # -- context binding ---------------------------------------------------------

    def _check_context(self) -> None:
        ctx = get_context()
        if self._ctx is None:
            self._ctx = ctx
        elif ctx is not self._ctx:
            raise ReproError(
                "CounterRegistry is bound to an earlier timing context; "
                "counts recorded across a sim-context reset would mix "
                "measurement epochs — call reset() (or use a fresh registry) "
                "after fresh_timing_context()"
            )

    def reset(self) -> None:
        """Drop all series and the context binding (new measurement epoch)."""
        self._counters.clear()
        self._gauges.clear()
        self._ctx = None

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ReproError(f"counter {name!r} cannot decrease (by {amount})")
        self._check_context()
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self._check_context()
        self._gauges[_series_key(name, labels)] = float(value)

    # -- queries -----------------------------------------------------------------

    def value(self, name: str, **labels) -> float:
        return self._counters.get(_series_key(name, labels), 0.0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        return self._gauges.get(_series_key(name, labels))

    def total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def series(self) -> Dict[str, float]:
        """Flat {rendered series: value} view over counters and gauges."""
        out = {
            _render_series(name, labels): value
            for (name, labels), value in self._counters.items()
        }
        out.update(
            {
                _render_series(name, labels): value
                for (name, labels), value in self._gauges.items()
            }
        )
        return out

    # -- exposition ----------------------------------------------------------------

    def exposition(self) -> str:
        """The text exposition: sorted ``series value`` lines."""
        lines = []
        for rendered, value in sorted(self.series().items()):
            if value == int(value):
                lines.append(f"{rendered} {int(value)}")
            else:
                lines.append(f"{rendered} {value:.6g}")
        return "\n".join(lines) + ("\n" if lines else "")


# -- ambient installation -------------------------------------------------------------

_current_registry: Optional[CounterRegistry] = None


def install_registry(
    registry: Optional[CounterRegistry],
) -> Optional[CounterRegistry]:
    """Install (or clear, with ``None``) the ambient registry."""
    global _current_registry
    previous = _current_registry
    _current_registry = registry
    return previous


def current_registry() -> Optional[CounterRegistry]:
    return _current_registry


@contextlib.contextmanager
def registry_scope(registry: CounterRegistry) -> Iterator[CounterRegistry]:
    """``with registry_scope(reg):`` — counts land only inside the block."""
    previous = install_registry(registry)
    try:
        yield registry
    finally:
        install_registry(previous)


def inc(name: str, amount: float = 1.0, **labels) -> None:
    """Hook entry point: count one event; no-op when no registry is on."""
    registry = _current_registry
    if registry is not None:
        registry.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Hook entry point: record a last-value gauge; no-op when off."""
    registry = _current_registry
    if registry is not None:
        registry.set_gauge(name, value, **labels)
