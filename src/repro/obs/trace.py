"""Hierarchical trace spans over the command pipeline.

A :class:`Span` covers one stage of a command's life (parse → authz →
engine → serialize → ring/audit) and carries *both* timebases the
simulator knows about:

* **virtual microseconds** — read from the ambient
  :class:`~repro.sim.timing.TimingContext` clock, so span durations add up
  exactly to the cost-model charges made inside them;
* **wall-clock nanoseconds** — ``time.perf_counter_ns`` on the host, so
  the harness's own hot-path cost is attributable per stage.

Instrumented code calls :func:`span` at named sites.  The contract is the
same as the fault injector's :func:`~repro.faults.injector.fire`: with no
tracer installed the call is one module-global ``None`` check returning a
shared no-op span, charges nothing to the virtual clock, and touches no
simulation state — so tracing can never alter behaviour, enabled or not.
Spans only ever *read* the clock; they never advance it.

A :class:`Tracer` keeps the open-span stack.  When a root span closes,
the finished tree is emitted to the tracer's sink (see
:mod:`repro.obs.sinks`).  Because the simulator is single-threaded and
the split driver is synchronous, the stack nesting *is* the causal
nesting: ``frontend.command`` encloses ``ring.send`` encloses
``manager.dispatch`` encloses ``authz``/``engine``/``serialize``.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional

from repro.sim.timing import get_context
from repro.util.errors import ReproError


class Span:
    """One timed stage; a context manager that closes itself on exit."""

    __slots__ = (
        "name", "attrs", "start_virtual_us", "end_virtual_us",
        "start_wall_ns", "end_wall_ns", "children", "events", "_tracer",
        "_ctx",
    )

    def __init__(self, name: str, attrs: Optional[Dict] = None,
                 tracer: Optional["Tracer"] = None) -> None:
        self.name = name
        self.attrs: Dict = dict(attrs) if attrs else {}
        self._ctx = get_context()
        self.start_virtual_us = self._ctx.clock.now_us
        self.end_virtual_us: Optional[float] = None
        self.start_wall_ns = time.perf_counter_ns()
        self.end_wall_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.events: List[Dict] = []
        self._tracer = tracer

    # -- recording ---------------------------------------------------------------

    def set(self, key: str, value) -> "Span":
        """Attach an attribute discovered mid-span (e.g. cache hit/miss)."""
        self.attrs[key] = value
        return self

    def add_event(self, name: str, **attrs) -> None:
        """A point-in-time annotation (e.g. an injected fault)."""
        self.events.append(
            {"name": name, "t_us": get_context().clock.now_us, **attrs}
        )

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)

    @property
    def closed(self) -> bool:
        return self.end_virtual_us is not None

    @property
    def duration_virtual_us(self) -> float:
        if self.end_virtual_us is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.end_virtual_us - self.start_virtual_us

    @property
    def duration_wall_ns(self) -> int:
        if self.end_wall_ns is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.end_wall_ns - self.start_wall_ns

    # -- views -------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-friendly nested view (the JSONL sink writes these)."""
        out: Dict = {
            "name": self.name,
            "virtual_us": [self.start_virtual_us, self.end_virtual_us],
            "wall_ns": [self.start_wall_ns, self.end_wall_ns],
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = list(self.events)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant (or self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        state = (
            f"{self.duration_virtual_us:.2f}us" if self.closed else "open"
        )
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpan:
    """The shared no-op span returned when tracing is off.

    Every method is deliberately trivial: the disabled hot path must cost
    one attribute lookup and a no-op context-manager round trip, nothing
    more — and it must never touch the clock or any simulation state.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the open-span stack and emits finished root trees to a sink."""

    def __init__(self, sink=None) -> None:
        if sink is None:
            from repro.obs.sinks import InMemorySink

            sink = InMemorySink()
        self.sink = sink
        self._stack: List[Span] = []
        self.spans_started = 0
        self.roots_emitted = 0

    def start_span(self, name: str, attrs: Optional[Dict] = None) -> Span:
        span = Span(name, attrs, tracer=self)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        self.spans_started += 1
        return span

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            innermost = self._stack[-1].name if self._stack else "<none>"
            raise ReproError(
                f"mismatched span nesting: closing {span.name!r} but the "
                f"innermost open span is {innermost!r}"
            )
        self._stack.pop()
        if get_context() is not span._ctx:
            raise ReproError(
                f"span {span.name!r} crosses a timing-context reset; its "
                "virtual interval would mix measurement epochs — close all "
                "spans before calling fresh_timing_context()"
            )
        span.end_virtual_us = span._ctx.clock.now_us
        span.end_wall_ns = time.perf_counter_ns()
        if not self._stack:
            self.roots_emitted += 1
            self.sink.emit(span)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None


# -- ambient installation (mirrors faults.injector) ---------------------------------

_current_tracer: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with ``None``) the ambient tracer."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer
    return previous


def current_tracer() -> Optional[Tracer]:
    return _current_tracer


@contextlib.contextmanager
def tracer_scope(tracer: Tracer) -> Iterator[Tracer]:
    """``with tracer_scope(t):`` — spans are collected only inside."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


def span(name: str, **attrs):
    """Open a span at a hook site; a shared no-op when tracing is off."""
    tracer = _current_tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.start_span(name, attrs or None)


def span_event(name: str, **attrs) -> None:
    """Annotate the innermost open span (no-op when tracing is off)."""
    tracer = _current_tracer
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.add_event(name, **attrs)


def validate_span_tree(root: Span) -> None:
    """Structural oracle: raises :class:`ReproError` on a malformed tree.

    Checks, for every span in the tree: it is closed, its interval is
    non-negative in both timebases, and every child's virtual interval
    nests inside its parent's.  Orphans are impossible by construction
    (spans attach to the stack top at start), but a tree handed across a
    serialization boundary is re-checked here all the same.
    """
    for parent in root.walk():
        if not parent.closed or parent.end_wall_ns is None:
            raise ReproError(f"span {parent.name!r} was never closed")
        if parent.end_virtual_us < parent.start_virtual_us:
            raise ReproError(f"span {parent.name!r} ends before it starts")
        if parent.end_wall_ns < parent.start_wall_ns:
            raise ReproError(
                f"span {parent.name!r} wall-clock interval is negative"
            )
        for child in parent.children:
            if not child.closed:
                raise ReproError(f"span {child.name!r} was never closed")
            if (child.start_virtual_us < parent.start_virtual_us
                    or child.end_virtual_us > parent.end_virtual_us):
                raise ReproError(
                    f"span {child.name!r} "
                    f"[{child.start_virtual_us}, {child.end_virtual_us}] is "
                    f"not nested in parent {parent.name!r} "
                    f"[{parent.start_virtual_us}, {parent.end_virtual_us}]"
                )
