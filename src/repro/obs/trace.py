"""Hierarchical trace spans over the command pipeline.

A :class:`Span` covers one stage of a command's life (parse → authz →
engine → serialize → ring/audit) and carries *both* timebases the
simulator knows about:

* **virtual microseconds** — read from the ambient
  :class:`~repro.sim.timing.TimingContext` clock, so span durations add up
  exactly to the cost-model charges made inside them;
* **wall-clock nanoseconds** — ``time.perf_counter_ns`` on the host, so
  the harness's own hot-path cost is attributable per stage.  Wall
  capture is *sink-declared*: a sink with ``wants_wall = False`` (the
  counting and JSONL sinks — their artifacts are deterministic functions
  of the seed) skips both host-clock reads per span, the single most
  expensive instruction in the span lifecycle on virtualized hosts.

Instrumented code calls :func:`span` at named sites.  The contract is the
same as the fault injector's :func:`~repro.faults.injector.fire`: with no
tracer installed the call is one module-global ``None`` check returning a
shared no-op span, charges nothing to the virtual clock, and touches no
simulation state — so tracing can never alter behaviour, enabled or not.
Spans only ever *read* the clock; they never advance it.

Hot call sites go one step further and use the **guarded-span pattern**::

    tracer = obs_trace._current_tracer
    if tracer is None:
        ...plain body...
    else:
        with tracer.start_span("site", {"key": value}):
            ...body...

so the disabled path never even builds the attribute dict.  Attribute
dicts handed to :meth:`Tracer.start_span` are captured **lazily** — the
span stores the reference, copies nothing, and materializes a dict only
if :meth:`Span.set` is called later.

A :class:`Tracer` keeps the open-span stack.  When a root span closes,
the finished tree is emitted to the tracer's sink (see
:mod:`repro.obs.sinks`).  Because the simulator is single-threaded and
the split driver is synchronous, the stack nesting *is* the causal
nesting: ``frontend.command`` encloses ``ring.send`` encloses
``manager.dispatch`` encloses ``authz``/``engine``/``serialize``.

Two cost features keep tracing near-free:

* **span pooling** — when the sink does not retain emitted trees (its
  ``retains`` attribute is ``False``, as for the counting and JSONL
  sinks), every span of a finished tree is recycled into a free list and
  reused — including its child list and event list objects — so the
  steady state allocates nothing per command;
* **deterministic head sampling** — ``Tracer(sink, sample_rate=N)``
  records only roots whose zero-based index ``i`` satisfies
  ``(i - sample_seed) % N == 0``.  The schedule is a pure function of
  the root count and the seed: no RNG, no clock, so two same-seed runs
  sample the identical trees (replay-identical) and neither timebase is
  perturbed.  While a root is suppressed the tracer hides itself from
  the ambient slot, so nested guarded sites take their tracer-is-None
  path — a skipped tree costs one sampling check, not one call per span.
  Counters are unaffected by sampling — they stay exact.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional

from repro.sim import timing as _timing
from repro.sim.timing import get_context
from repro.util.errors import ReproError

#: recycled spans kept per tracer; trees are ~10 spans, so this is ample
_POOL_CAP = 1024


class Span:
    """One timed stage; a context manager that closes itself on exit."""

    __slots__ = (
        "name", "attrs", "start_virtual_us", "end_virtual_us",
        "start_wall_ns", "end_wall_ns", "children", "events", "_tracer",
        "_ctx",
    )

    def __init__(self, name: str, attrs: Optional[Dict] = None,
                 tracer: Optional["Tracer"] = None, wall: bool = True) -> None:
        self.name = name
        # Lazy capture: the caller's dict is stored by reference (hot sites
        # pass a fresh literal); None means "no attributes yet".
        self.attrs: Optional[Dict] = attrs
        self._ctx = get_context()
        self.start_virtual_us = self._ctx.clock._now_us
        self.end_virtual_us: Optional[float] = None
        # Wall capture is sink-declared (``wants_wall``); with it off both
        # endpoints read 0 — host clock reads are the single most
        # expensive instruction in the span lifecycle on virtualized hosts.
        self.start_wall_ns = time.perf_counter_ns() if wall else 0
        self.end_wall_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.events: List[Dict] = []
        self._tracer = tracer

    # -- recording ---------------------------------------------------------------

    def set(self, key: str, value) -> "Span":
        """Attach an attribute discovered mid-span (e.g. cache hit/miss)."""
        if self.attrs is None:
            self.attrs = {key: value}
        else:
            self.attrs[key] = value
        return self

    def add_event(self, name: str, **attrs) -> None:
        """A point-in-time annotation (e.g. an injected fault)."""
        self.events.append(
            {"name": name, "t_us": get_context().clock.now_us, **attrs}
        )

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        if self._tracer is not None:
            self._tracer._finish(self)

    @property
    def closed(self) -> bool:
        return self.end_virtual_us is not None

    @property
    def duration_virtual_us(self) -> float:
        if self.end_virtual_us is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.end_virtual_us - self.start_virtual_us

    @property
    def duration_wall_ns(self) -> int:
        if self.end_wall_ns is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.end_wall_ns - self.start_wall_ns

    # -- views -------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-friendly nested view (the JSONL sink writes these)."""
        out: Dict = {
            "name": self.name,
            "virtual_us": [self.start_virtual_us, self.end_virtual_us],
        }
        if self.end_wall_ns:
            # Only when the sink captured wall time; omitting it keeps the
            # offline artifact a pure function of the seed.
            out["wall_ns"] = [self.start_wall_ns, self.end_wall_ns]
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = list(self.events)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every descendant (or self) with the given name."""
        return [s for s in self.walk() if s.name == name]

    def __repr__(self) -> str:
        state = (
            f"{self.duration_virtual_us:.2f}us" if self.closed else "open"
        )
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NullSpan:
    """The shared no-op span returned when tracing is off.

    Every method is deliberately trivial: the disabled hot path must cost
    one attribute lookup and a no-op context-manager round trip, nothing
    more — and it must never touch the clock or any simulation state.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, key: str, value) -> "_NullSpan":
        return self

    def add_event(self, name: str, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SkipScope:
    """Returned for a sampled-out root span.

    While a root is suppressed the tracer **hides itself** from the
    ambient slot (``_current_tracer`` becomes ``None`` for the root's
    dynamic extent), so every nested guarded site takes its plain
    tracer-is-None path — a skipped tree costs one sampling check at the
    root, not one call per span.  ``__exit__`` reinstalls the tracer.
    One shared instance per tracer; skipped roots cannot nest (nested
    sites never see the tracer while it is hidden).
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> "_SkipScope":
        return self

    def __exit__(self, *exc_info) -> None:
        global _current_tracer
        tracer = self._tracer
        tracer._skipping = False
        if tracer._hid:
            tracer._hid = False
            _current_tracer = tracer

    def set(self, key: str, value) -> "_SkipScope":
        return self

    def add_event(self, name: str, **attrs) -> None:
        return None


class Tracer:
    """Owns the open-span stack and emits finished root trees to a sink.

    ``sample_rate=N`` keeps 1-in-N root trees (deterministic head
    sampling; ``sample_seed`` rotates which residue class is kept).
    Suppressed roots hide the tracer for their dynamic extent, and —
    when the sink's ``retains`` attribute is false — emitted spans are
    pooled and reused, child lists and all.
    """

    def __init__(self, sink=None, sample_rate: int = 1,
                 sample_seed: int = 0) -> None:
        if sink is None:
            from repro.obs.sinks import InMemorySink

            sink = InMemorySink()
        self.sink = sink
        self.sample_rate = max(1, int(sample_rate))
        self.sample_seed = int(sample_seed)
        self._retains = bool(getattr(sink, "retains", True))
        #: sinks that never read span wall times (counting, JSONL) opt out
        #: of the two host-clock reads per span via ``wants_wall = False``
        self._wall = bool(getattr(sink, "wants_wall", True))
        self._stack: List[Span] = []
        self._pool: List[Span] = []
        self._skipping = False
        self._hid = False
        self._root_claimed = False
        self._skip_scope = _SkipScope(self)
        self.spans_started = 0
        #: roots *seen* (sampled or not) — the sampling schedule's input
        self.roots_seen = 0
        self.roots_emitted = 0
        self.roots_skipped = 0

    def keep_root(self) -> bool:
        """Consume the next root index; ``True`` if that root is recorded.

        The root-site fast path: a known-root call site asks for the
        sampling verdict *before* building its attribute dict, and on
        ``False`` runs its body with the ambient tracer hidden by hand
        (plain try/finally, no span machinery at all)::

            if tracer._stack or tracer.keep_root():
                with tracer.start_span("site", {...}): ...body...
            else:
                obs_trace._current_tracer = None
                try: ...body...
                finally: obs_trace._current_tracer = tracer

        On ``True`` the verdict is remembered, so the immediately
        following ``start_span`` does not re-sample (the root is not
        double-counted).
        """
        index = self.roots_seen
        self.roots_seen = index + 1
        rate = self.sample_rate
        if rate <= 1 or not (index - self.sample_seed) % rate:
            self._root_claimed = True
            return True
        self.roots_skipped += 1
        return False

    def start_span(self, name: str, attrs: Optional[Dict] = None) -> Span:
        if self._skipping:
            # Direct call on a captured tracer inside a suppressed root
            # (ambient sites never get here: the tracer is hidden).
            return NULL_SPAN
        stack = self._stack
        if not stack:
            if self._root_claimed:
                self._root_claimed = False  # keep_root() already sampled
            else:
                index = self.roots_seen
                self.roots_seen = index + 1
                rate = self.sample_rate
                if rate > 1 and (index - self.sample_seed) % rate:
                    global _current_tracer
                    self.roots_skipped += 1
                    self._skipping = True
                    if _current_tracer is self:
                        self._hid = True
                        _current_tracer = None
                    return self._skip_scope
        pool = self._pool
        if pool:
            span = pool.pop()
            span.name = name
            span.attrs = attrs
            ctx = _timing._current_context
            span._ctx = ctx
            span.start_virtual_us = ctx.clock._now_us
            span.end_virtual_us = None
            span.start_wall_ns = time.perf_counter_ns() if self._wall else 0
            span.end_wall_ns = None
        else:
            span = Span(name, attrs, tracer=self, wall=self._wall)
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        self.spans_started += 1
        return span

    def _finish(self, span: Span) -> None:
        stack = self._stack
        if not stack or stack[-1] is not span:
            innermost = stack[-1].name if stack else "<none>"
            raise ReproError(
                f"mismatched span nesting: closing {span.name!r} but the "
                f"innermost open span is {innermost!r}"
            )
        stack.pop()
        ctx = span._ctx
        if _timing._current_context is not ctx:
            raise ReproError(
                f"span {span.name!r} crosses a timing-context reset; its "
                "virtual interval would mix measurement epochs — close all "
                "spans before calling fresh_timing_context()"
            )
        span.end_virtual_us = ctx.clock._now_us
        span.end_wall_ns = time.perf_counter_ns() if self._wall else 0
        if not stack:
            self.roots_emitted += 1
            self.sink.emit(span)
            if not self._retains:
                self._recycle(span)

    def _recycle(self, root: Span) -> None:
        """Return every span of a finished, emitted tree to the free list.

        Only called for non-retaining sinks, so nothing holds a reference
        to the tree anymore.  Child/event list objects are kept on their
        span and cleared, so reuse allocates nothing.
        """
        pool = self._pool
        todo = [root]
        while todo:
            span = todo.pop()
            children = span.children
            if children:
                todo.extend(children)
                children.clear()
            if span.events:
                span.events.clear()
            span.attrs = None
            span._ctx = None
            if len(pool) < _POOL_CAP:
                pool.append(span)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None


# -- ambient installation (mirrors faults.injector) ---------------------------------

_current_tracer: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with ``None``) the ambient tracer."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer
    return previous


def current_tracer() -> Optional[Tracer]:
    return _current_tracer


@contextlib.contextmanager
def tracer_scope(tracer: Tracer) -> Iterator[Tracer]:
    """``with tracer_scope(t):`` — spans are collected only inside."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


def span(name: str, **attrs):
    """Open a span at a hook site; a shared no-op when tracing is off."""
    tracer = _current_tracer
    if tracer is None:
        return NULL_SPAN
    return tracer.start_span(name, attrs or None)


def span_event(name: str, **attrs) -> None:
    """Annotate the innermost open span (no-op when tracing is off)."""
    tracer = _current_tracer
    if tracer is None:
        return
    current = tracer.current_span()
    if current is not None:
        current.add_event(name, **attrs)


def validate_span_tree(root: Span) -> None:
    """Structural oracle: raises :class:`ReproError` on a malformed tree.

    Checks, for every span in the tree: it is closed, its interval is
    non-negative in both timebases, and every child's virtual interval
    nests inside its parent's.  Orphans are impossible by construction
    (spans attach to the stack top at start), but a tree handed across a
    serialization boundary is re-checked here all the same.
    """
    for parent in root.walk():
        if not parent.closed or parent.end_wall_ns is None:
            raise ReproError(f"span {parent.name!r} was never closed")
        if parent.end_virtual_us < parent.start_virtual_us:
            raise ReproError(f"span {parent.name!r} ends before it starts")
        if parent.end_wall_ns < parent.start_wall_ns:
            raise ReproError(
                f"span {parent.name!r} wall-clock interval is negative"
            )
        for child in parent.children:
            if not child.closed:
                raise ReproError(f"span {child.name!r} was never closed")
            if (child.start_virtual_us < parent.start_virtual_us
                    or child.end_virtual_us > parent.end_virtual_us):
                raise ReproError(
                    f"span {child.name!r} "
                    f"[{child.start_virtual_us}, {child.end_virtual_us}] is "
                    f"not nested in parent {parent.name!r} "
                    f"[{parent.start_virtual_us}, {parent.end_virtual_us}]"
                )
