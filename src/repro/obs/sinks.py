"""Where finished span trees go.

* :class:`InMemorySink` — keeps every root tree; what tests and the CLI
  tree renderer consume.
* :class:`JsonlSink` — one JSON document per root tree, appended to a
  file-like or path; the offline-analysis format
  (``python -m repro chaos --trace out.jsonl``).
* :class:`CountingSink` — discards trees, keeps totals; used when the
  benchmark wants tracing's *cost* without its memory footprint.
"""

from __future__ import annotations

import json
from typing import List, Optional, TextIO

from repro.obs.trace import Span, validate_span_tree
from repro.util.errors import ReproError


class InMemorySink:
    """Collects root spans in order; the default sink for tests."""

    def __init__(self) -> None:
        self.roots: List[Span] = []

    def emit(self, root: Span) -> None:
        self.roots.append(root)

    def validate(self) -> int:
        """Structurally check every collected tree; returns span count."""
        total = 0
        for root in self.roots:
            validate_span_tree(root)
            total += sum(1 for _ in root.walk())
        return total

    def spans_named(self, name: str) -> List[Span]:
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def __len__(self) -> int:
        return len(self.roots)


class JsonlSink:
    """Writes each root tree as one JSON line (the offline trace format)."""

    def __init__(self, stream: TextIO) -> None:
        self._stream = stream
        self.roots_written = 0

    def emit(self, root: Span) -> None:
        json.dump(root.to_dict(), self._stream, separators=(",", ":"))
        self._stream.write("\n")
        self.roots_written += 1


class CountingSink:
    """Counts emitted trees and spans without retaining them."""

    def __init__(self) -> None:
        self.roots = 0
        self.spans = 0

    def emit(self, root: Span) -> None:
        self.roots += 1
        self.spans += sum(1 for _ in root.walk())


def load_jsonl(text: str) -> List[dict]:
    """Parse a JSONL trace back into root-tree dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def validate_tree_dict(node: dict, parent: Optional[dict] = None) -> int:
    """The :func:`validate_span_tree` oracle for deserialized trees."""
    start, end = node["virtual_us"]
    if end is None or end < start:
        raise ReproError(f"span {node['name']!r} has a broken interval")
    if parent is not None:
        p_start, p_end = parent["virtual_us"]
        if start < p_start or end > p_end:
            raise ReproError(
                f"span {node['name']!r} is not nested in {parent['name']!r}"
            )
    count = 1
    for child in node.get("children", ()):
        count += validate_tree_dict(child, node)
    return count


def format_span_tree(root: Span, indent: str = "") -> List[str]:
    """Human-readable tree: name, virtual duration, wall duration, attrs."""
    attrs = ""
    if root.attrs:
        attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
    lines = [
        f"{indent}{root.name:<{max(1, 28 - len(indent))}} "
        f"{root.duration_virtual_us:>10.2f} us "
        f"{root.duration_wall_ns / 1000.0:>9.1f} wall-us{attrs}"
    ]
    for event in root.events:
        extra = " ".join(
            f"{k}={v}" for k, v in event.items() if k not in ("name", "t_us")
        )
        lines.append(
            f"{indent}  ! {event['name']} @ {event['t_us']:.2f} us"
            + (f"  {extra}" if extra else "")
        )
    for child in root.children:
        lines.extend(format_span_tree(child, indent + "  "))
    return lines
