"""Where finished span trees go.

* :class:`InMemorySink` — keeps every root tree; what tests and the CLI
  tree renderer consume.
* :class:`JsonlSink` — one JSON document per root tree, appended to a
  file-like or path; the offline-analysis format
  (``python -m repro chaos --trace out.jsonl``).  Lines are buffered and
  written in batches; call :meth:`~JsonlSink.flush` before closing the
  underlying stream.
* :class:`CountingSink` — discards trees, keeps totals; used when the
  benchmark wants tracing's *cost* without its memory footprint.
* :class:`SelfTimeSink` — aggregates per-site wall self-time without
  retaining trees; feeds ``python -m repro profile --top N``.

Each sink declares whether it **retains** emitted trees via its
``retains`` class attribute.  A non-retaining sink (``retains = False``)
promises to be done with the tree the moment ``emit`` returns, which lets
the :class:`~repro.obs.trace.Tracer` recycle every span of the tree into
its pool — the steady state then allocates nothing per command.

Sinks also declare whether they consume span **wall-clock** times via
``wants_wall``.  With it ``False`` the tracer skips both host-clock
reads per span — on virtualized hosts those are the most expensive
instructions in the span lifecycle.  The counting and JSONL sinks opt
out: the offline JSONL artifact records virtual intervals only and is
therefore a pure function of the seed (byte-reproducible), which is
exactly what the replay/differential oracles want.  The in-memory and
self-time sinks keep wall capture on (the CLI tree renderer and
``profile --top`` report it).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.trace import Span, validate_span_tree
from repro.util.errors import ReproError


class InMemorySink:
    """Collects root spans in order; the default sink for tests."""

    #: emitted trees are kept — the tracer must not recycle them
    retains = True
    #: the CLI tree renderer prints per-span wall durations
    wants_wall = True

    def __init__(self) -> None:
        self.roots: List[Span] = []

    def emit(self, root: Span) -> None:
        self.roots.append(root)

    def validate(self) -> int:
        """Structurally check every collected tree; returns span count."""
        total = 0
        for root in self.roots:
            validate_span_tree(root)
            total += sum(1 for _ in root.walk())
        return total

    def spans_named(self, name: str) -> List[Span]:
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def __len__(self) -> int:
        return len(self.roots)


class JsonlSink:
    """Writes each root tree as one JSON line (the offline trace format).

    Serialized lines accumulate in a buffer and are written to the stream
    every ``flush_every`` trees; :meth:`flush` drains the remainder.  The
    tree is serialized inside ``emit`` (the spans are pooled and will be
    reused), so only the encoded strings are retained.
    """

    retains = False
    #: virtual intervals only — the artifact stays seed-reproducible
    wants_wall = False

    def __init__(self, stream: TextIO, flush_every: int = 64) -> None:
        self._stream = stream
        self._flush_every = max(1, int(flush_every))
        self._buffer: List[str] = []
        self.roots_written = 0

    def emit(self, root: Span) -> None:
        buffer = self._buffer
        buffer.append(json.dumps(root.to_dict(), separators=(",", ":")))
        self.roots_written += 1
        if len(buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write all buffered lines; call before closing the stream."""
        buffer = self._buffer
        if buffer:
            self._stream.write("\n".join(buffer) + "\n")
            buffer.clear()


class CountingSink:
    """Counts emitted trees and spans without retaining them."""

    retains = False
    #: cost accounting needs no wall times inside the spans themselves
    wants_wall = False

    def __init__(self) -> None:
        self.roots = 0
        self.spans = 0

    def emit(self, root: Span) -> None:
        self.roots += 1
        count = 0
        todo = [root]
        while todo:
            span = todo.pop()
            count += 1
            if span.children:
                todo.extend(span.children)
        self.spans += count


class SelfTimeSink:
    """Aggregates wall-clock **self time** per span site, discarding trees.

    Self time is a span's wall duration minus the wall durations of its
    direct children — the harness cost attributable to that site alone.
    This is what ``python -m repro profile --top N`` reports, so hot-site
    hunts need no external profiler.
    """

    retains = False
    #: self-time *is* wall time — keep the per-span clock reads on
    wants_wall = True

    def __init__(self) -> None:
        #: name -> [count, self_wall_ns, total_wall_ns]
        self.sites: Dict[str, List[float]] = {}
        self.roots = 0

    def emit(self, root: Span) -> None:
        self.roots += 1
        sites = self.sites
        todo = [root]
        while todo:
            span = todo.pop()
            total = span.end_wall_ns - span.start_wall_ns
            own = total
            children = span.children
            if children:
                todo.extend(children)
                for child in children:
                    own -= child.end_wall_ns - child.start_wall_ns
            entry = sites.get(span.name)
            if entry is None:
                sites[span.name] = [1, own, total]
            else:
                entry[0] += 1
                entry[1] += own
                entry[2] += total

    def top(self, n: int = 10) -> List[Tuple[str, int, int, int]]:
        """The ``n`` hottest sites by cumulative self time.

        Returns ``(name, count, self_wall_ns, total_wall_ns)`` tuples,
        descending by self time with name as a deterministic tiebreak.
        """
        rows = [
            (name, int(entry[0]), int(entry[1]), int(entry[2]))
            for name, entry in self.sites.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[: max(0, int(n))]

    def format_top(self, n: int = 10) -> List[str]:
        """Human-readable table lines for :meth:`top`."""
        rows = self.top(n)
        if not rows:
            return ["(no spans recorded)"]
        lines = [
            f"{'site':<24} {'count':>8} {'self-us':>12} "
            f"{'total-us':>12} {'self-us/call':>13}"
        ]
        for name, count, self_ns, total_ns in rows:
            lines.append(
                f"{name:<24} {count:>8} {self_ns / 1000.0:>12.1f} "
                f"{total_ns / 1000.0:>12.1f} "
                f"{self_ns / 1000.0 / count:>13.3f}"
            )
        return lines


def load_jsonl(text: str) -> List[dict]:
    """Parse a JSONL trace back into root-tree dicts."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def validate_tree_dict(node: dict, parent: Optional[dict] = None) -> int:
    """The :func:`validate_span_tree` oracle for deserialized trees."""
    start, end = node["virtual_us"]
    if end is None or end < start:
        raise ReproError(f"span {node['name']!r} has a broken interval")
    if parent is not None:
        p_start, p_end = parent["virtual_us"]
        if start < p_start or end > p_end:
            raise ReproError(
                f"span {node['name']!r} is not nested in {parent['name']!r}"
            )
    count = 1
    for child in node.get("children", ()):
        count += validate_tree_dict(child, node)
    return count


def format_span_tree(root: Span, indent: str = "") -> List[str]:
    """Human-readable tree: name, virtual duration, wall duration, attrs."""
    attrs = ""
    if root.attrs:
        attrs = "  " + " ".join(f"{k}={v}" for k, v in sorted(root.attrs.items()))
    lines = [
        f"{indent}{root.name:<{max(1, 28 - len(indent))}} "
        f"{root.duration_virtual_us:>10.2f} us "
        f"{root.duration_wall_ns / 1000.0:>9.1f} wall-us{attrs}"
    ]
    for event in root.events:
        extra = " ".join(
            f"{k}={v}" for k, v in event.items() if k not in ("name", "t_us")
        )
        lines.append(
            f"{indent}  ! {event['name']} @ {event['t_us']:.2f} us"
            + (f"  {extra}" if extra else "")
        )
    for child in root.children:
        lines.extend(format_span_tree(child, indent + "  "))
    return lines
