"""Domain-specific static analysis for the vTPM pipeline.

``python -m repro analyze`` walks every file of the ``repro`` package
through the registered AST rules (fail-closed, determinism,
secret-flow, audit-on-deny, counter-registry, virtual-time), applies
per-line ``# repro: allow[rule-id] -- reason`` suppressions, and diffs
the surviving findings against the committed ``analysis-baseline.json``.
See :mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the catalogue.
"""

from repro.analysis import rules as _rules  # noqa: F401  (registration)
from repro.analysis.core import (
    AnalysisResult,
    Analyzer,
    Finding,
    ModuleSource,
    RULES,
    injected_module,
)
from repro.analysis.report import (
    check_against_baseline,
    default_baseline_path,
    load_baseline,
    render_baseline,
    render_json,
    render_text,
)

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "ModuleSource",
    "RULES",
    "injected_module",
    "check_against_baseline",
    "default_baseline_path",
    "load_baseline",
    "render_baseline",
    "render_json",
    "render_text",
]
