"""The static-analysis framework: rule registry, file walker, pragmas.

The paper's access-control argument is a *universal* claim — every code
path fails closed, every denial is audited, no secret ever reaches a
log — and the dynamic conformance explorer (:mod:`repro.verify`) can
only witness the schedules it happens to run.  This package closes the
gap with a small AST-based analyzer: domain rules written against this
module walk every file of the ``repro`` package and report violations
*for all paths, all the time*.

Concepts
--------

``ModuleSource``
    One parsed file: package-relative path (``repro/vtpm/hotplug.py``),
    source text, line list and AST.  Rules never re-read or re-parse.

``Rule``
    A registered check.  Subclass :class:`Rule`, set ``id``/``title``/
    ``description``/``example_violation`` and implement
    :meth:`Rule.check`; decorate with :func:`register`.  The
    ``example_violation`` is a ``(relpath, source)`` pair that MUST
    trigger the rule — ``python -m repro analyze --inject-violation ID``
    feeds it through the real walker as a self-check that the rule can
    actually fire (the analyzer's ``verify --inject-bug`` analogue).

Suppression pragmas
    A finding on line *N* is suppressed by a pragma on line *N* or on a
    comment-only line *N-1*::

        except MarshalError:  # repro: allow[fail-closed] -- probe expects this

    The reason after ``--`` is mandatory: an allow without a reason is
    itself reported (``malformed-suppression``), and a pragma that
    suppresses nothing is reported too (``unused-suppression``) so stale
    allows cannot rot in place.

The analyzer is purely syntactic and intraprocedural by design: it runs
in well under a second on the whole tree, needs no imports of the code
under analysis, and its verdicts are independent of host, seed and
schedule — the same determinism discipline it enforces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: ``# repro: allow[rule-id] -- reason`` (reason mandatory, same line or
#: the comment-only line directly above the finding)
PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[a-z0-9-]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)

#: meta rule ids emitted by the framework itself (never suppressible)
META_MALFORMED = "malformed-suppression"
META_UNUSED = "unused-suppression"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # package-relative posix path, e.g. repro/vtpm/hotplug.py
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Baseline identity: stable across pure line-number drift."""
        return f"{self.rule}:{self.path}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Pragma:
    """One parsed suppression comment."""

    rule: str
    line: int
    reason: Optional[str]
    used: bool = False


class ModuleSource:
    """One file under analysis: text, lines and AST, parsed once."""

    def __init__(self, relpath: str, text: str, injected: bool = False) -> None:
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=relpath)
        #: synthetic module planted by ``--inject-violation``
        self.injected = injected
        self.pragmas: List[Pragma] = self._parse_pragmas()

    @property
    def display_path(self) -> str:
        return f"{self.relpath}::injected" if self.injected else self.relpath

    def _parse_pragmas(self) -> List[Pragma]:
        pragmas = []
        for i, line in enumerate(self.lines, start=1):
            match = PRAGMA_RE.search(line)
            if match:
                pragmas.append(
                    Pragma(rule=match.group("rule"), line=i,
                           reason=match.group("reason"))
                )
        return pragmas

    def pragma_for(self, rule: str, line: int) -> Optional[Pragma]:
        """The pragma suppressing ``rule`` at ``line``, if any.

        A pragma applies to its own line, and — when it sits on a
        comment-only line — to the line directly below it.
        """
        for pragma in self.pragmas:
            if pragma.rule != rule:
                continue
            if pragma.line == line:
                return pragma
            if (
                pragma.line == line - 1
                and self.lines[pragma.line - 1].lstrip().startswith("#")
            ):
                return pragma
        return None


class Rule:
    """Base class for one domain check.

    Subclasses set the class attributes and implement :meth:`check`;
    instances are stateless so one object serves every module.
    """

    #: stable kebab-case identifier (used in pragmas and ``--rule``)
    id: str = ""
    #: one-line headline for the rule catalogue
    title: str = ""
    #: what the rule guards and why (docs / ``--json`` output)
    description: str = ""
    #: ``(relpath, source)`` that must fire the rule (self-check input);
    #: the relpath must fall inside the rule's own scope
    example_violation: Tuple[str, str] = ("", "")

    def check(self, module: ModuleSource) -> List[Finding]:
        raise NotImplementedError

    # -- helpers shared by rule implementations -------------------------------

    def finding(self, module: ModuleSource, line: int, message: str) -> Finding:
        return Finding(rule=self.id, path=module.display_path, line=line,
                       message=message)


#: the global rule registry, id -> instance (populated by ``rules/``)
RULES: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register one rule."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return cls


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Tuple[Finding, Pragma]] = field(default_factory=list)
    files: int = 0
    rules: Tuple[str, ...] = ()


def iter_package_files(package_root: Path) -> Iterable[Tuple[str, Path]]:
    """Yield ``(relpath, path)`` for every analyzable file of the package.

    ``relpath`` is posix and rooted at the package name
    (``repro/…``) so findings and the committed baseline are
    independent of where the repository is checked out.
    """
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(package_root.parent).as_posix()
        yield rel, path


class Analyzer:
    """Walks the package, runs rules, applies suppressions."""

    def __init__(
        self,
        package_root: Optional[Path] = None,
        rule_ids: Optional[Sequence[str]] = None,
    ) -> None:
        if package_root is None:
            import repro

            package_root = Path(repro.__file__).resolve().parent
        self.package_root = package_root
        if rule_ids is not None:
            unknown = sorted(set(rule_ids) - set(RULES))
            if unknown:
                raise KeyError(
                    f"unknown rule id(s) {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(RULES))}"
                )
            self.rules = [RULES[r] for r in sorted(rule_ids)]
        else:
            self.rules = [RULES[r] for r in sorted(RULES)]

    # -- module loading ----------------------------------------------------------

    def _modules(
        self, extra: Sequence[ModuleSource] = ()
    ) -> List[ModuleSource]:
        modules = [
            ModuleSource(rel, path.read_text())
            for rel, path in iter_package_files(self.package_root)
            # the analyzer never analyzes itself: rule sources carry
            # deliberately-violating example snippets as string literals
            # and fixture text that would confuse textual scanners
            if not rel.startswith("repro/analysis/")
        ]
        modules.extend(extra)
        return modules

    def modules(self) -> List[ModuleSource]:
        """The parsed package tree (no extras) — for external audits."""
        return self._modules()

    # -- the run -----------------------------------------------------------------

    def run(self, extra: Sequence[ModuleSource] = ()) -> AnalysisResult:
        result = AnalysisResult(rules=tuple(rule.id for rule in self.rules))
        modules = self._modules(extra)
        result.files = len(modules)
        for module in modules:
            raw: List[Finding] = []
            for rule in self.rules:
                raw.extend(rule.check(module))
            for finding in raw:
                pragma = module.pragma_for(finding.rule, finding.line)
                if pragma is None:
                    result.findings.append(finding)
                elif not pragma.reason:
                    pragma.used = True
                    result.findings.append(
                        Finding(
                            rule=META_MALFORMED,
                            path=module.display_path,
                            line=pragma.line,
                            message=(
                                f"allow[{finding.rule}] pragma has no "
                                "'-- reason'; suppressions must say why"
                            ),
                        )
                    )
                else:
                    pragma.used = True
                    result.suppressed.append((finding, pragma))
            # A pragma that suppressed nothing is stale — the code it
            # excused changed, or the rule id is misspelt.  Only report
            # staleness for rules this run actually executed.
            for pragma in module.pragmas:
                if not pragma.used and pragma.rule in {
                    rule.id for rule in self.rules
                }:
                    result.findings.append(
                        Finding(
                            rule=META_UNUSED,
                            path=module.display_path,
                            line=pragma.line,
                            message=(
                                f"allow[{pragma.rule}] pragma suppresses "
                                "nothing; remove it or fix the rule id"
                            ),
                        )
                    )
        result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return result


def injected_module(rule_id: str) -> ModuleSource:
    """The synthetic module ``--inject-violation`` plants for one rule."""
    rule = RULES[rule_id]
    relpath, source = rule.example_violation
    if not relpath:
        raise ValueError(f"rule {rule_id!r} declares no example violation")
    return ModuleSource(relpath, source, injected=True)


# -- shared AST utilities ---------------------------------------------------------


def call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of a call target: ``a.b.c(…)`` -> ``c``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def first_str_arg(node: ast.Call) -> Optional[str]:
    """The first positional argument when it is a string literal."""
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def walk_functions(tree: ast.AST) -> Iterable[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
