"""secret-flow: key material must never reach an observable sink.

Intraprocedural taint tracking.  **Sources** are the repository's secret
carriers: the ``usage_auth`` / ``migration_auth`` fields of
:class:`repro.tpm.keys.LoadedKey` and the key structures, the owner
auth / tpm proof of :class:`repro.tpm.state.TpmState`,
``secret_material()`` results, the sealed root blob, and any function
parameter whose name marks it as an auth secret.  **Sinks** are the
places an operator (or a JSONL artifact reader) can see: logger calls,
``print``, span attributes (``span.set`` / ``start_span`` attr dicts /
``add_event``), ``json.dump(s)``, and exception messages (``raise X(…)``
— exception text lands in audit reasons, degraded-path responses and
tracebacks).

Propagation is deliberately shallow: a name assigned from an expression
*containing* a tainted name/attribute becomes tainted, and taint follows
pure re-wrappings (``bytes()``, ``str()``, ``repr()``, ``.hex()``,
``.decode()``, f-strings, concatenation, subscripts).  Taint does *not*
survive arbitrary calls — an HMAC over a secret, a length, a parsed
response are derived values, not the secret.  That keeps the rule
precise enough to gate CI: a finding means the literal secret bytes (or
a trivial re-encoding of them) reach the sink.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import Finding, ModuleSource, Rule, register

#: attribute names that carry raw secret bytes wherever they appear
SECRET_ATTRS = frozenset(
    {
        "usage_auth",
        "migration_auth",
        "owner_auth",
        "tpm_proof",
        "sealed_root_blob",
    }
)

#: zero-argument-ish calls whose *result* is secret material
SECRET_CALLS = frozenset({"secret_material"})

#: parameter-name shapes that declare a secret argument
SECRET_PARAM_MARKERS = ("auth", "secret", "proof")

#: calls that merely re-encode their argument (taint passes through)
WRAP_CALLS = frozenset({"bytes", "bytearray", "str", "repr", "memoryview"})
WRAP_METHODS = frozenset({"hex", "decode", "encode"})

LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "critical", "exception", "log"}
)
LOG_RECEIVERS = frozenset({"log", "logger", "_log", "_logger", "LOG"})
SPAN_RECEIVERS = frozenset({"span", "_span", "root"})


def param_is_secret(name: str) -> bool:
    lowered = name.lower()
    if lowered in ("auth", "secret", "proof", "entity_secret"):
        return True
    return any(
        lowered.endswith(f"_{m}") or lowered.startswith(f"{m}_")
        for m in SECRET_PARAM_MARKERS
    )


class _FunctionTaint:
    """Taint state for one function body."""

    def __init__(self, fn: ast.AST) -> None:
        self.tainted: Set[str] = set()
        args = fn.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if param_is_secret(arg.arg):
                self.tainted.add(arg.arg)

    def expr_source(self, node: ast.expr) -> str | None:
        """Why this expression is tainted, or ``None`` if it is not."""
        for n in ast.walk(node):
            if isinstance(n, ast.Attribute) and n.attr in SECRET_ATTRS:
                return f"secret attribute .{n.attr}"
            if isinstance(n, ast.Call):
                callee = n.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in SECRET_CALLS
                ):
                    return f"result of {callee.attr}()"
            if isinstance(n, ast.Name) and n.id in self.tainted:
                return f"tainted name {n.id!r}"
        return None

    def _rhs_taints(self, node: ast.expr) -> bool:
        """Does assigning this RHS taint the target?

        Containment taints — *except* through non-wrapping calls, whose
        results are derived values.  Implemented by pruning call
        subtrees unless the call is a known re-encoding.
        """
        if isinstance(node, ast.Call):
            callee = node.func
            is_wrap = (
                isinstance(callee, ast.Name) and callee.id in WRAP_CALLS
            ) or (
                isinstance(callee, ast.Attribute)
                and callee.attr in WRAP_METHODS
            )
            if isinstance(callee, ast.Attribute) \
                    and callee.attr in SECRET_CALLS:
                return True
            if not is_wrap:
                return False
            return any(self._rhs_taints(a) for a in node.args) or (
                isinstance(callee, ast.Attribute)
                and self._rhs_taints(callee.value)
            )
        if isinstance(node, ast.Attribute) and node.attr in SECRET_ATTRS:
            return True
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        return any(
            self._rhs_taints(child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        )

    def propagate(self, fn: ast.AST) -> None:
        """Fixed-point over plain name assignments (order-insensitive)."""
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not self._rhs_taints(node.value):
                    continue
                for target in node.targets:
                    names = (
                        [target]
                        if isinstance(target, ast.Name)
                        else list(target.elts)
                        if isinstance(target, (ast.Tuple, ast.List))
                        else []
                    )
                    for t in names:
                        if isinstance(t, ast.Name) \
                                and t.id not in self.tainted:
                            self.tainted.add(t.id)
                            changed = True


def _sink_kind(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "print":
            return "print"
        if func.id in ("span", "start_span"):
            return "span attribute"
        return None
    if isinstance(func, ast.Attribute):
        receiver = func.value
        recv_name = receiver.id if isinstance(receiver, ast.Name) else None
        if func.attr in LOG_METHODS and recv_name in LOG_RECEIVERS:
            return "log"
        if func.attr in ("set", "set_attribute") \
                and recv_name in SPAN_RECEIVERS:
            return "span attribute"
        if func.attr in ("start_span", "span", "add_event"):
            return "span attribute"
        if func.attr in ("dump", "dumps") and recv_name == "json":
            return "JSON"
    return None


@register
class SecretFlowRule(Rule):
    id = "secret-flow"
    title = "key material must not reach logs, spans, JSON or exceptions"
    description = (
        "Intraprocedural taint from secret carriers (usage/migration/"
        "owner auth, tpm proof, secret_material(), *_auth parameters) to "
        "observable sinks: logger calls, print, span attributes, "
        "json.dump(s) and exception messages."
    )
    example_violation = (
        "repro/tpm/_injected_secret_flow.py",
        "def check_auth(owner_auth, given):\n"
        "    if owner_auth != given:\n"
        "        raise ValueError(f'expected {owner_auth!r}')\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if not module.relpath.startswith("repro/"):
            return []
        findings: List[Finding] = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            taint = _FunctionTaint(fn)
            taint.propagate(fn)
            if not taint.tainted and not self._has_direct_sources(fn):
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    kind = _sink_kind(node)
                    if kind is None:
                        continue
                    for arg in list(node.args) + [
                        kw.value for kw in node.keywords
                    ]:
                        why = taint.expr_source(arg)
                        if why is not None:
                            findings.append(self.finding(
                                module, node.lineno,
                                f"{why} flows into a {kind} sink in "
                                f"{fn.name}()",
                            ))
                            break
                elif isinstance(node, ast.Raise) and node.exc is not None:
                    why = taint.expr_source(node.exc)
                    if why is not None:
                        findings.append(self.finding(
                            module, node.lineno,
                            f"{why} flows into an exception message in "
                            f"{fn.name}() — exception text reaches audit "
                            "reasons and degraded responses",
                        ))
        return findings

    @staticmethod
    def _has_direct_sources(fn: ast.AST) -> bool:
        for n in ast.walk(fn):
            if isinstance(n, ast.Attribute) and n.attr in SECRET_ATTRS:
                return True
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in SECRET_CALLS
            ):
                return True
        return False
