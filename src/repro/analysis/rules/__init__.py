"""The domain rule catalogue; importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401  (import-for-registration)
    audit_on_deny,
    counter_registry,
    determinism,
    fail_closed,
    secret_flow,
    virtual_time,
)
