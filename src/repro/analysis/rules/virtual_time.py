"""virtual-time: wall-clock reads only behind explicit wall gates.

The determinism rule bans host-clock reads everywhere *except* the two
declared wall-capture files; this rule polices the inside of those
files.  Wall capture is **sink-declared** (``wants_wall``): when no
attached sink asks for host timestamps, the span machinery must not pay
for — or observe — the host clock at all.  Concretely, every
``time.perf_counter*`` / ``time.time*`` call inside a wall-capture file
must sit under a conditional (``if`` statement or ``x if cond else y``
expression) whose test mentions a wall flag (``wall`` / ``_wall`` /
``wants_wall``).

The wall-clock *profiler* (``harness/profiling.py``) reads the host
clock unconditionally by design — that is the instrument's purpose —
and carries per-line ``allow[virtual-time]`` pragmas saying so, which
doubles as the living example of the suppression workflow.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleSource, Rule, dotted_name, \
    register
from repro.analysis.rules.determinism import WALL_CAPTURE_FILES, WALL_READS

WALL_FLAG_MARKERS = ("wall",)


def _test_mentions_wall(test: ast.expr) -> bool:
    for node in ast.walk(test):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None and any(
            marker in name.lower() for marker in WALL_FLAG_MARKERS
        ):
            return True
    return False


class _GateVisitor(ast.NodeVisitor):
    """Finds wall reads and whether a wall-flag conditional encloses them."""

    def __init__(self) -> None:
        self.gated_depth = 0
        self.violations: List[int] = []

    # -- gates ------------------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        self._visit_gate(node.test, node.body + node.orelse)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._visit_gate(node.test, [node.body, node.orelse])

    def _visit_gate(self, test: ast.expr, children) -> None:
        self.visit(test)
        if _test_mentions_wall(test):
            self.gated_depth += 1
            for child in children:
                self.visit(child)
            self.gated_depth -= 1
        else:
            for child in children:
                self.visit(child)

    # -- the reads ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in WALL_READS and self.gated_depth == 0:
            self.violations.append(node.lineno)
        self.generic_visit(node)


@register
class VirtualTimeRule(Rule):
    id = "virtual-time"
    title = "wall reads in wall-capture files must sit behind wall gates"
    description = (
        "Inside the allowlisted wall-capture files (obs/trace.py, "
        "harness/profiling.py), every host-clock read must be guarded by "
        "a conditional on a wall flag (wall/_wall/wants_wall), so runs "
        "whose sinks decline wall capture never touch the host clock."
    )
    example_violation = (
        "repro/obs/trace.py",
        "import time\n"
        "def stamp(span):\n"
        "    span.start_wall_ns = time.perf_counter_ns()\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if module.relpath not in WALL_CAPTURE_FILES:
            return []
        visitor = _GateVisitor()
        visitor.visit(module.tree)
        return [
            self.finding(
                module, lineno,
                "ungated wall-clock read: guard it with the wall flag "
                "(wants_wall) or carry an allow[virtual-time] pragma",
            )
            for lineno in visitor.violations
        ]
