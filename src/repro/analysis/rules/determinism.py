"""determinism: ban ambient nondeterminism outside the wall-capture sites.

Every oracle in this repository — byte-identical chaos digests, replay-
identical breaker schedules, the conformance explorer's schedule cache —
rests on the simulation being a pure function of its seed.  One stray
``time.time()`` or ``random.random()`` breaks all of them at once, and
does so silently: the run still "works", it just stops being evidence.

Banned everywhere in ``repro/``:

* stdlib ``random`` and ``secrets`` (any import): entropy must come from
  the seeded, forkable :class:`repro.crypto.random_source.RandomSource`;
* ``os.urandom`` calls;
* ``datetime.now`` / ``utcnow`` / ``today`` and ``uuid.uuid4`` calls;
* iterating a set expression (``for x in {…}`` / ``set(…)`` /
  comprehension generators): set order is salted per process, so the
  iteration order — and anything derived from it — varies between runs;
  iterate ``sorted(…)`` instead;
* wall-clock reads (``time.time``, ``perf_counter*``, ``monotonic*``,
  ``process_time*``) — except in the two allowlisted wall-capture files
  (``obs/trace.py``, ``harness/profiling.py``), where the companion
  ``virtual-time`` rule takes over and checks the *gating*.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    register,
)

#: the only files allowed to touch the host clock at all; the
#: virtual-time rule owns what happens inside them
WALL_CAPTURE_FILES = ("repro/obs/trace.py", "repro/harness/profiling.py")

WALL_READS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)

BANNED_CALLS = {
    "os.urandom": "use the platform's seeded RandomSource",
    "datetime.now": "use the virtual clock (sim.timing.get_context)",
    "datetime.utcnow": "use the virtual clock (sim.timing.get_context)",
    "datetime.today": "use the virtual clock (sim.timing.get_context)",
    "datetime.datetime.now": "use the virtual clock",
    "datetime.datetime.utcnow": "use the virtual clock",
    "uuid.uuid4": "derive ids from the seeded RandomSource",
}

BANNED_MODULES = {
    "random": "stdlib random is unseeded ambient state; use "
              "repro.crypto.random_source.RandomSource",
    "secrets": "secrets reads os.urandom; use the seeded RandomSource",
}


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class DeterminismRule(Rule):
    id = "determinism"
    title = "no ambient nondeterminism (wall clocks, entropy, set order)"
    description = (
        "Bans time.*/random/os.urandom/datetime.now/uuid4 and iteration "
        "over set expressions everywhere in repro/, except wall-clock "
        "reads inside the allowlisted wall-capture files obs/trace.py "
        "and harness/profiling.py (policed by the virtual-time rule)."
    )
    example_violation = (
        "repro/sim/_injected_determinism.py",
        "import time\n"
        "def stamp(record):\n"
        "    record.t = time.time()\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        findings: List[Finding] = []
        wall_exempt = module.relpath in WALL_CAPTURE_FILES

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in BANNED_MODULES:
                        findings.append(self.finding(
                            module, node.lineno,
                            f"import of {root!r}: {BANNED_MODULES[root]}",
                        ))
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in BANNED_MODULES:
                    findings.append(self.finding(
                        module, node.lineno,
                        f"import from {root!r}: {BANNED_MODULES[root]}",
                    ))
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in WALL_READS and not wall_exempt:
                    findings.append(self.finding(
                        module, node.lineno,
                        f"wall-clock read {name}() outside the allowlisted "
                        "wall-capture sites; use the virtual clock",
                    ))
                elif name in BANNED_CALLS:
                    findings.append(self.finding(
                        module, node.lineno,
                        f"nondeterministic call {name}(): "
                        f"{BANNED_CALLS[name]}",
                    ))

            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                       ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    findings.append(self.finding(
                        module, it.lineno,
                        "iteration over a set expression: set order is "
                        "salted per process; iterate sorted(…) instead",
                    ))
        return findings
