"""counter-registry: metric and span names must live in declared namespaces.

Counters are written as string literals at dozens of call sites and read
back by name in tests, dashboards and the exposition diff oracle — a
typo'd literal (``vtmp.…``) creates a *new* series instead of feeding
the one everybody reads, and nothing fails.  This rule catches the typo
statically: every string literal passed as the metric name to
``counter(…)`` / ``inc(…)`` / ``set_gauge(…)`` must parse as a dotted
lowercase name whose first segment is a **declared counter namespace**,
and every span name handed to ``start_span(…)`` / ``span(…)`` must use
a **declared span root**.

The declared sets below are the single registry; adding a genuinely new
subsystem namespace is a deliberate one-line change here, reviewed like
any other schema change.

:func:`collect_metric_literals` is exported for the runtime cross-check
(the counter-name audit test compares a chaos run's exposition against
the statically discovered set).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set

from repro.analysis.core import (
    Finding,
    ModuleSource,
    Rule,
    first_str_arg,
    register,
)

#: first dotted segment allowed for counter / gauge names
COUNTER_NAMESPACES = frozenset(
    {"ac", "ring", "faults", "vtpm", "cluster", "resilience"}
)

#: first dotted segment allowed for span names (bare names like
#: ``authz`` count as their own root)
SPAN_ROOTS = frozenset(
    {
        "frontend", "ring", "backend", "manager", "authz", "parse",
        "audit", "engine", "serialize", "tpm", "vtpm", "cluster",
        "supervisor", "experiment", "loadtest",
    }
)

#: calls whose first string argument is a counter/gauge name
COUNTER_CALLS = frozenset({"counter", "inc", "set_gauge"})
#: calls whose first string argument is a span name
SPAN_CALLS = frozenset({"start_span", "span"})

NAME_GRAMMAR = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def collect_metric_literals(modules) -> Dict[str, Set[str]]:
    """All statically discovered names: ``{"counter": {...}, "span": {...}}``.

    ``modules`` is an iterable of :class:`ModuleSource`; used both by the
    rule and by the runtime counter-name audit.
    """
    out: Dict[str, Set[str]] = {"counter": set(), "span": set()}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            literal = first_str_arg(node)
            if literal is None:
                continue
            if callee in COUNTER_CALLS:
                out["counter"].add(literal)
            elif callee in SPAN_CALLS:
                out["span"].add(literal)
    return out


@register
class CounterRegistryRule(Rule):
    id = "counter-registry"
    title = "metric/span name literals must use declared namespaces"
    description = (
        "Every counter(…)/inc(…)/set_gauge(…) name literal must be a "
        "dotted lowercase name rooted in "
        + "/".join(sorted(COUNTER_NAMESPACES))
        + "; every start_span(…)/span(…) name must use a declared span "
        "root — typo'd metric names are caught before they fork a "
        "series nobody reads."
    )
    example_violation = (
        "repro/vtpm/_injected_counter_registry.py",
        "from repro.obs.counters import inc\n"
        "def record():\n"
        "    inc('vtmp.hotplug.error')\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if not module.relpath.startswith("repro/"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node)
            literal = first_str_arg(node)
            if literal is None:
                continue
            if callee in COUNTER_CALLS:
                kind, allowed = "counter", COUNTER_NAMESPACES
            elif callee in SPAN_CALLS:
                kind, allowed = "span", SPAN_ROOTS
            else:
                continue
            if not NAME_GRAMMAR.match(literal):
                findings.append(self.finding(
                    module, node.lineno,
                    f"{kind} name {literal!r} does not match the dotted "
                    "lowercase grammar [a-z0-9_.]",
                ))
                continue
            root = literal.split(".", 1)[0]
            if root not in allowed:
                findings.append(self.finding(
                    module, node.lineno,
                    f"{kind} name {literal!r} uses undeclared namespace "
                    f"{root!r} (declared: {', '.join(sorted(allowed))})",
                ))
        return findings
