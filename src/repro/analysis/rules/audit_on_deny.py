"""audit-on-deny: every deny/degrade path must leave an audit trace.

The paper's monitor is only as good as its audit log: a denial that is
not chained (or at least counted) is indistinguishable from a command
that never happened, which defeats both forensics and the conformance
explorer's denial-accounting oracle.  This rule pins the property to
the three files that can say "no":

* ``core/monitor.py`` — reference-monitor denials,
* ``resilience/admission.py`` — load-shed / degraded verdicts,
* ``resilience/breaker.py`` — breaker state transitions.

A **deny site** is a syntactic construct that produces a negative
outcome: ``AuthorizationResult(allowed=False, …)``, a pre-built shed
response (``build_response(…)``), or a breaker transition appended to
``self.events``.  Any function containing a deny site must *also*
contain an **emission** on the same function body: an append to an
``audit`` log (``…audit.append*``), a counter write (``inc`` / ``add``
/ ``obs_counters.inc``), or a ``set_gauge``.  The check is function-
local — the repository's idiom funnels every deny through a small
helper (``_deny`` / ``_shed`` / ``_enter``), so requiring the emission
in the same function keeps the deny and its evidence on the same path.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleSource, Rule, register

SCOPE_FILES = (
    "repro/core/monitor.py",
    "repro/resilience/admission.py",
    "repro/resilience/breaker.py",
)

EMISSION_ATTRS = frozenset({"inc", "add", "set_gauge"})


def _is_deny_site(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name == "build_response":
        return "pre-built shed/degrade response"
    if name == "AuthorizationResult":
        for kw in node.keywords:
            if (
                kw.arg == "allowed"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return "AuthorizationResult(allowed=False)"
    if (
        name == "append"
        and isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "events"
    ):
        return "breaker state transition (events.append)"
    return None


def _is_emission(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ("inc", "set_gauge")
    if isinstance(func, ast.Attribute):
        if func.attr in EMISSION_ATTRS:
            return True
        # …audit.append / …audit.append_buffered
        if func.attr.startswith("append") and isinstance(
            func.value, ast.Attribute
        ) and func.value.attr == "audit":
            return True
    return False


@register
class AuditOnDenyRule(Rule):
    id = "audit-on-deny"
    title = "deny/degrade paths must audit or count on the same path"
    description = (
        "In core/monitor.py, resilience/admission.py and "
        "resilience/breaker.py, any function that constructs a denial "
        "(AuthorizationResult(allowed=False), build_response shed frame, "
        "breaker events.append) must also emit evidence in the same "
        "function: an audit append, a counter inc/add, or a gauge."
    )
    example_violation = (
        "repro/resilience/admission.py",
        "def shed_quietly(wire):\n"
        "    return build_response(0x9)\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if module.relpath not in SCOPE_FILES:
            return []
        findings: List[Finding] = []
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            deny_sites = []
            emits = False
            for node in ast.walk(fn):
                kind = _is_deny_site(node)
                if kind is not None:
                    deny_sites.append((node.lineno, kind))
                if _is_emission(node):
                    emits = True
            if deny_sites and not emits:
                for lineno, kind in deny_sites:
                    findings.append(self.finding(
                        module, lineno,
                        f"{kind} in {fn.name}() with no audit append or "
                        "counter emission on the same path",
                    ))
        return findings
