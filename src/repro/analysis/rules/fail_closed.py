"""fail-closed: no except clause may silently swallow an exception.

The access-control argument requires every error path to *fail closed*:
an exception on the command path must either propagate (``raise``),
terminate the path with a well-formed response (``return`` /
``continue`` / ``break`` out of the frame loop), or be converted into
an explicit action — an audit append, a counter, a fallback call.  A
handler whose body does none of those (the classic ``except X: pass``)
turns a security-relevant failure into silence, exactly the sloppy
error path SvTPM catalogues as a key-leak precursor.

Scope: the packages that sit on the trusted command path —
``core/``, ``vtpm/``, ``cluster/``, ``resilience/`` — plus the attack
harness ``attacks/`` (whose *deliberate* swallows must carry a pragma
saying so, which is the point).

Heuristic: the handler body must contain at least one ``raise``,
``return``, ``continue``, ``break`` or function call (nested anywhere).
Recording the failure counts as handling it; renaming it into a local
variable does not.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.core import Finding, ModuleSource, Rule, register

SCOPE_PREFIXES = (
    "repro/core/",
    "repro/vtpm/",
    "repro/cluster/",
    "repro/resilience/",
    "repro/attacks/",
)

_HANDLING = (ast.Raise, ast.Return, ast.Continue, ast.Break, ast.Call)


def _handler_acts(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, _HANDLING):
                return True
    return False


def _exc_label(handler: ast.ExceptHandler) -> str:
    if handler.type is None:
        return "bare except"
    return f"except {ast.unparse(handler.type)}"


@register
class FailClosedRule(Rule):
    id = "fail-closed"
    title = "except clauses on the trusted path must not swallow exceptions"
    description = (
        "An except handler in core/, vtpm/, cluster/, resilience/ or "
        "attacks/ must re-raise, return a well-formed response, or take "
        "an explicit action (audit append, counter, fallback call); "
        "silent swallows need an allow[fail-closed] pragma with a reason."
    )
    example_violation = (
        "repro/core/_injected_fail_closed.py",
        "def handle(frame):\n"
        "    try:\n"
        "        frame.dispatch()\n"
        "    except ValueError:\n"
        "        pass\n",
    )

    def check(self, module: ModuleSource) -> List[Finding]:
        if not module.relpath.startswith(SCOPE_PREFIXES):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and not _handler_acts(node):
                findings.append(
                    self.finding(
                        module,
                        node.lineno,
                        f"{_exc_label(node)} swallows the exception without "
                        "re-raising, returning, or taking any action",
                    )
                )
        return findings
