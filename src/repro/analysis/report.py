"""Reporters and baseline handling for the static analyzer.

Text output is for humans at a terminal; JSON output is for CI
artifacts and tooling.  The **baseline** (``analysis-baseline.json`` at
the repository root) is the set of findings the tree is *allowed* to
have: ``--check`` fails on drift in either direction — a new finding
not in the baseline (a regression) or a baseline entry that no longer
fires (stale debt that must be deleted, so the baseline only ever
shrinks).  The shipped baseline is empty: the tree is clean and must
stay clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import AnalysisResult, Finding, RULES

BASELINE_VERSION = 1


def default_baseline_path() -> Path:
    """``analysis-baseline.json`` next to ``pyproject.toml``.

    Resolved from the installed package location (``src/repro`` layout),
    so the analyzer works from any working directory.
    """
    import repro

    return Path(repro.__file__).resolve().parents[2] / "analysis-baseline.json"


def load_baseline(path: Optional[Path] = None) -> List[dict]:
    path = path or default_baseline_path()
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    return list(data.get("findings", []))


@dataclass
class CheckOutcome:
    """``--check`` verdict: new findings and stale baseline entries."""

    new: List[Finding] = field(default_factory=list)
    stale: List[dict] = field(default_factory=list)
    tolerated: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def check_against_baseline(
    result: AnalysisResult, baseline: List[dict]
) -> CheckOutcome:
    """Split findings into new / tolerated; detect stale baseline debt."""
    outcome = CheckOutcome()
    known = {entry["fingerprint"] for entry in baseline}
    seen = set()
    for finding in result.findings:
        if finding.fingerprint in known:
            outcome.tolerated.append(finding)
            seen.add(finding.fingerprint)
        else:
            outcome.new.append(finding)
    outcome.stale = [e for e in baseline if e["fingerprint"] not in seen]
    return outcome


# -- rendering --------------------------------------------------------------------


def render_text(
    result: AnalysisResult, outcome: Optional[CheckOutcome] = None
) -> str:
    lines: List[str] = []
    findings = outcome.new if outcome is not None else result.findings
    for finding in findings:
        lines.append(finding.render())
    if outcome is not None:
        for finding in outcome.tolerated:
            lines.append(f"{finding.render()}  (baselined)")
        for entry in outcome.stale:
            lines.append(
                f"stale baseline entry no longer fires: "
                f"{entry['fingerprint']} — delete it from the baseline"
            )
    lines.append(
        f"{result.files} files · {len(result.rules)} rules · "
        f"{len(findings)} finding(s) · {len(result.suppressed)} suppressed"
    )
    if result.suppressed:
        lines.append("suppressions in effect:")
        for finding, pragma in result.suppressed:
            lines.append(
                f"  {finding.path}:{finding.line} allow[{finding.rule}] "
                f"-- {pragma.reason}"
            )
    return "\n".join(lines)


def render_json(
    result: AnalysisResult, outcome: Optional[CheckOutcome] = None
) -> str:
    payload = {
        "version": BASELINE_VERSION,
        "files": result.files,
        "rules": [
            {
                "id": rule_id,
                "title": RULES[rule_id].title,
                "description": RULES[rule_id].description,
            }
            for rule_id in result.rules
            if rule_id in RULES
        ],
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in result.findings
        ],
        "suppressed": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "reason": p.reason,
            }
            for f, p in result.suppressed
        ],
    }
    if outcome is not None:
        payload["check"] = {
            "clean": outcome.clean,
            "new": [f.fingerprint for f in outcome.new],
            "tolerated": [f.fingerprint for f in outcome.tolerated],
            "stale": [e["fingerprint"] for e in outcome.stale],
        }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_baseline(result: AnalysisResult) -> str:
    """A fresh baseline file accepting the current findings as debt."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
