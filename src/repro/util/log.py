"""Thin logging shim.

The simulation is deterministic, so logs are primarily a debugging aid; the
shim keeps the stdlib logger but namespaces everything under ``repro.*`` and
offers a single switch for verbose tracing in tests and examples.
"""

from __future__ import annotations

import logging

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro.``."""
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_tracing(level: int = logging.DEBUG) -> None:
    """Turn on console tracing for the whole library (used by examples)."""
    logger = logging.getLogger(_ROOT)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    logger.setLevel(level)
