"""Shared utilities: error hierarchy, logging, byte I/O, validation helpers."""

from repro.util.errors import (
    ReproError,
    MarshalError,
    TpmError,
    XenError,
    VtpmError,
    AccessControlError,
    SimulationError,
)
from repro.util.bytesio import ByteReader, ByteWriter

__all__ = [
    "ReproError",
    "MarshalError",
    "TpmError",
    "XenError",
    "VtpmError",
    "AccessControlError",
    "SimulationError",
    "ByteReader",
    "ByteWriter",
]
