"""Big-endian byte readers/writers used by the TPM wire format.

TPM 1.2 structures are marshalled big-endian ("network order").  These two
small classes centralise bounds checking so malformed input surfaces as
:class:`~repro.util.errors.MarshalError` rather than a silent short read.
"""

from __future__ import annotations

from repro.util.errors import MarshalError


class ByteWriter:
    """Accumulates big-endian fields into a byte string.

    Backed by a single ``bytearray`` — integer fields append via
    ``int.to_bytes`` straight into it, which profiles measurably faster
    than a chunk list of one-field ``struct.pack`` results on the state
    serialization path.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def u8(self, value: int) -> "ByteWriter":
        if not 0 <= value <= 0xFF:
            raise MarshalError(f"u8 out of range: {value}")
        self._buffer.append(value)
        return self

    def u16(self, value: int) -> "ByteWriter":
        if not 0 <= value <= 0xFFFF:
            raise MarshalError(f"u16 out of range: {value}")
        self._buffer += value.to_bytes(2, "big")
        return self

    def u32(self, value: int) -> "ByteWriter":
        if not 0 <= value <= 0xFFFFFFFF:
            raise MarshalError(f"u32 out of range: {value}")
        self._buffer += value.to_bytes(4, "big")
        return self

    def u64(self, value: int) -> "ByteWriter":
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise MarshalError(f"u64 out of range: {value}")
        self._buffer += value.to_bytes(8, "big")
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._buffer += data
        return self

    def sized(self, data: bytes) -> "ByteWriter":
        """A u32 length prefix followed by the bytes (TPM_SIZED_BUFFER)."""
        self.u32(len(data))
        return self.raw(data)

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class ByteReader:
    """Consumes big-endian fields from a byte string with bounds checking."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = bytes(data)
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if count < 0:
            raise MarshalError(f"negative read of {count} bytes")
        if self._pos + count > len(self._data):
            raise MarshalError(
                f"short read: wanted {count} bytes at offset {self._pos}, "
                f"only {self.remaining()} remain"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def sized(self, max_size: int = 1 << 20) -> bytes:
        """Read a u32 length prefix then that many bytes (TPM_SIZED_BUFFER)."""
        size = self.u32()
        if size > max_size:
            raise MarshalError(f"sized buffer of {size} bytes exceeds cap {max_size}")
        return self._take(size)

    def expect_end(self) -> None:
        """Assert the whole buffer was consumed (strict unmarshalling)."""
        if self.remaining() != 0:
            raise MarshalError(f"{self.remaining()} trailing bytes after structure")

    def rest(self) -> bytes:
        """Consume and return everything remaining."""
        return self._take(self.remaining())
