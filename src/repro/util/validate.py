"""Small validation helpers shared across subsystems."""

from __future__ import annotations

from typing import Iterable


def check_type(value: object, expected: type | tuple[type, ...], name: str) -> None:
    """Raise ``TypeError`` with a uniform message when ``value`` is mistyped."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")


def check_range(value: int, low: int, high: int, name: str) -> int:
    """Raise ``ValueError`` when an integer lies outside ``[low, high]``."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be int, got {type(value).__name__}")
    if not low <= value <= high:
        raise ValueError(f"{name}={value} outside [{low}, {high}]")
    return value


def check_length(data: bytes, length: int, name: str) -> bytes:
    """Raise ``ValueError`` unless ``data`` is exactly ``length`` bytes."""
    if len(data) != length:
        raise ValueError(f"{name} must be {length} bytes, got {len(data)}")
    return data


def check_nonempty(items: Iterable[object], name: str) -> None:
    """Raise ``ValueError`` if the iterable yields nothing."""
    for _ in items:
        return
    raise ValueError(f"{name} must not be empty")
