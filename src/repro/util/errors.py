"""Exception hierarchy for the whole reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch either the broad family or a precise failure.  TPM-level failures
additionally carry the TPM 1.2 result code so command-level tests can
assert on the exact error the real device would return.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "MarshalError",
    "CryptoError",
    "TpmError",
    "XenError",
    "DomainNotFound",
    "PageFault",
    "GrantError",
    "EventChannelError",
    "XenStoreError",
    "RingError",
    "VtpmError",
    "MigrationError",
    "SupervisionError",
    "ClusterError",
    "AccessControlError",
    "AccessDenied",
    "IdentityError",
    "SealingError",
    "FaultInjected",
    "RetryExhausted",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel (e.g. time going backwards)."""


class MarshalError(ReproError):
    """Malformed wire data encountered while (un)marshalling TPM structures."""


class CryptoError(ReproError):
    """Failure inside the crypto substrate (bad key sizes, verify failures...)."""


class TpmError(ReproError):
    """A TPM command failed; carries the TPM 1.2 result code.

    Attributes
    ----------
    code:
        The ``TPM_*`` result code (see :mod:`repro.tpm.constants`).
    """

    def __init__(self, code: int, message: str = "") -> None:
        super().__init__(message or f"TPM error code {code:#x}")
        self.code = code


class XenError(ReproError):
    """Hypervisor substrate failure (bad domain id, unmapped page, ...)."""


class DomainNotFound(XenError):
    """No domain with the requested id exists."""


class PageFault(XenError):
    """Access to an unmapped or foreign-protected page."""


class GrantError(XenError):
    """Invalid grant-table operation."""


class EventChannelError(XenError):
    """Invalid event-channel operation."""


class XenStoreError(XenError):
    """Invalid XenStore path or permission failure."""


class RingError(XenError):
    """Shared-ring transport failure (full ring, short read...)."""


class VtpmError(ReproError):
    """vTPM subsystem failure (unknown instance, storage corruption...)."""


class MigrationError(VtpmError):
    """vTPM live-migration protocol failure."""


class SupervisionError(VtpmError):
    """The resilience layer was driven into an illegal state.

    Raised for illegal health-state transitions and for supervisor misuse
    (e.g. restarting an instance that is not quarantined).  The transition
    table itself is the security invariant — a supervisor bug must surface
    loudly, never silently route traffic to a half-recovered instance.
    """


class ClusterError(VtpmError):
    """Multi-host fleet failure (unreachable host, failed attestation
    handshake, no admissible placement target).

    Attested migration fails *closed* through this type: a target host
    whose measured identity or policy epoch cannot be verified never
    receives a sealed export, and the guest keeps serving on the source.
    """


class AccessControlError(ReproError):
    """Base class for the access-control (core) subsystem."""


class AccessDenied(AccessControlError):
    """The reference monitor denied an operation.

    Attributes
    ----------
    subject:
        Identity (or domain id) of the denied subject.
    operation:
        Human-readable operation name (e.g. ``"TPM_Quote"``).
    reason:
        Why the policy denied it.
    """

    def __init__(self, subject: object, operation: str, reason: str) -> None:
        super().__init__(f"access denied: subject={subject!r} op={operation} ({reason})")
        self.subject = subject
        self.operation = operation
        self.reason = reason


class IdentityError(AccessControlError):
    """Domain identity could not be established or verified."""


class SealingError(AccessControlError):
    """Sealed vTPM state could not be unsealed (wrong platform state or key)."""


class FaultInjected(ReproError):
    """A scheduled fault from the deterministic injector fired.

    Attributes
    ----------
    kind:
        The fault kind name (see :class:`repro.faults.FaultKind`).
    site:
        The hook point that fired (e.g. ``"vtpm.storage.write"``).
    transient:
        ``True`` for faults a bounded retry is expected to clear (the
        recovery layers catch these); ``False`` models a hard crash that
        must propagate to the harness.
    """

    def __init__(
        self, kind: str, site: str, transient: bool = True, detail: str = ""
    ) -> None:
        super().__init__(
            f"injected fault {kind} at {site}" + (f": {detail}" if detail else "")
        )
        self.kind = kind
        self.site = site
        self.transient = transient
        self.detail = detail


class RetryExhausted(ReproError):
    """Bounded retry-with-backoff gave up on a transient fault.

    Attributes
    ----------
    site:
        The operation that kept failing.
    attempts:
        How many attempts were made before giving up.
    last:
        The final exception.
    """

    def __init__(self, site: str, attempts: int, last: Exception) -> None:
        super().__init__(f"{site} still failing after {attempts} attempts: {last}")
        self.site = site
        self.attempts = attempts
        self.last = last
