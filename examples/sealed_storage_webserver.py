#!/usr/bin/env python3
"""Sealed-storage web server: the application-level cost of protection.

A web server keeps its TLS private key sealed in its vTPM and unseals a
working copy on session-cache misses.  This example serves the same
request stream against three deployments and reports requests/s:

* ``no-vtpm``  — key on disk in the clear (fast, and the thing the paper
  says you must not do on a multi-tenant host),
* ``baseline`` — stock Xen vTPM,
* ``improved`` — vTPM behind the access-control layer.

Usage:  python examples/sealed_storage_webserver.py [requests]
"""

import sys

from repro import AccessMode, build_platform, fresh_timing_context
from repro.crypto.random_source import RandomSource
from repro.metrics.tables import format_table
from repro.workloads.mixes import GuestSession
from repro.workloads.webapp import SealedStorageWebApp


def main() -> None:
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    rows = []
    reference = None
    for deployment in ("no-vtpm", "baseline", "improved"):
        fresh_timing_context()
        session = None
        if deployment != "no-vtpm":
            mode = AccessMode.IMPROVED if deployment == "improved" else AccessMode.BASELINE
            platform = build_platform(mode, seed=5)
            guest = platform.add_guest("webserver")
            session = GuestSession(guest, platform.rng.fork("web-session"))
        app = SealedStorageWebApp(
            RandomSource(5), session, deployment, cache_hit_ratio=0.9
        )
        result = app.serve(requests)
        if reference is None:
            reference = result.requests_per_sec
        rows.append(
            (
                deployment,
                result.requests_per_sec,
                result.misses,
                (1 - result.requests_per_sec / reference) * 100.0,
            )
        )
    print(
        format_table(
            ["deployment", "requests/s", "cache misses", "slowdown (%)"],
            rows,
            title=f"Sealed-storage web server, {requests} requests, 90% cache hits",
        )
    )
    print(
        "\nTakeaway: sealing the key in the vTPM costs a fraction of a percent\n"
        "at the application level, and the access-control layer adds almost\n"
        "nothing on top — protection is effectively free for this workload."
    )


if __name__ == "__main__":
    main()
