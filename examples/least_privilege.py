#!/usr/bin/env python3
"""Least privilege with policy profiles.

A consolidated host runs three guests with different needs:

* ``db-vault``   — sealed-storage profile: unseals its database key, but
  cannot even extend a PCR;
* ``edge-node``  — attestation-only profile: quotes and measures, but
  cannot define NV or mint keys;
* ``dashboard``  — monitor profile: read-only.

Each guest then steps outside its profile and the reference monitor turns
the request away — with the denial on the audit record.

Usage:  python examples/least_privilege.py
"""

import hashlib

from repro import AccessMode, build_platform, fresh_timing_context
from repro.core.profiles import (
    PROFILE_ATTESTATION_ONLY,
    PROFILE_MONITOR,
    PROFILE_SEALED_STORAGE,
)
from repro.util.errors import TpmError

OWNER = b"lp-owner-auth!!!!!!!"
SRK = b"lp-srk-auth!!!!!!!!!"
DATA = b"lp-data-auth!!!!!!!!"


def attempt(label: str, fn) -> None:
    try:
        fn()
        print(f"  {label}: ALLOWED")
    except TpmError as exc:
        print(f"  {label}: DENIED (code {exc.code:#x})")


def main() -> None:
    fresh_timing_context()
    platform = build_platform(AccessMode.IMPROVED, seed=55)

    # The vault is provisioned by the operator with full rights first, then
    # redeployed under the narrow profile (its sealed blob survives).
    provisioning = platform.add_guest("db-vault-setup")
    ek = provisioning.client.read_pubek()
    provisioning.client.take_ownership(OWNER, SRK, ek)
    from repro.tpm.constants import TPM_KH_SRK

    sealed = provisioning.client.seal(TPM_KH_SRK, SRK, b"db-key-material", DATA)
    platform.manager.save_instance(provisioning.instance_id)
    print("vault provisioned and state persisted\n")

    edge = platform.add_guest("edge-node", profile=PROFILE_ATTESTATION_ONLY)
    dashboard = platform.add_guest("dashboard", profile=PROFILE_MONITOR)

    print("edge-node (attestation-only):")
    attempt("extend PCR 12", lambda: edge.client.extend(
        12, hashlib.sha1(b"edge-app").digest()))
    attempt("read PCR 12", lambda: edge.client.pcr_read(12))
    from repro.tpm.nvram import NV_PER_AUTHWRITE

    attempt("define NV area", lambda: edge.client.nv_define(
        OWNER, 0x10, 8, NV_PER_AUTHWRITE, b"N" * 20))

    print("\ndashboard (monitor, read-only):")
    attempt("read PCR 0", lambda: dashboard.client.pcr_read(0))
    attempt("get random", lambda: dashboard.client.get_random(8))
    attempt("extend PCR 12", lambda: dashboard.client.extend(
        12, b"\x01" * 20))

    print("\nvault (sealed-storage) keeps working inside its profile:")
    vault_session = platform.guests["db-vault-setup"]
    recovered = vault_session.client.unseal(TPM_KH_SRK, SRK, sealed, DATA)
    print(f"  unseal: ALLOWED -> {recovered!r}")

    denials = platform.audit.denials()
    print(f"\naudit log holds {len(denials)} denials (chain intact: "
          f"{platform.audit.verify_chain()}):")
    for record in denials:
        print(f"  #{record.sequence:<3d} {record.operation:18s} "
              f"{record.reason[:60]}")


if __name__ == "__main__":
    main()
