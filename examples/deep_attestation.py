#!/usr/bin/env python3
"""Deep attestation: chain a guest's vTPM quote to the hardware TPM.

Runs the full chain on a hardened deployment (vTPM manager in an
unprivileged stub domain):

1. guest quotes its PCRs with a vTPM signing key;
2. the manager endorses that key — a hardware-TPM AIK signs
   (key, VM identity measurement, platform boot-PCR composite);
3. the challenger verifies quote → endorsement → platform state,
   and rejects the chain when the platform firmware drifts.

Usage:  python examples/deep_attestation.py
"""

import hashlib

from repro import AccessMode, build_platform, fresh_timing_context
from repro.core.certification import verify_endorsement
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.tpm.structures import make_quote_info
from repro.workloads.mixes import KEY_AUTH, GuestSession


def main() -> None:
    fresh_timing_context()
    platform = build_platform(
        AccessMode.IMPROVED, seed=77, name="hardened", stub_manager=True
    )
    manager_dom = platform.xen.domain(platform.manager.manager_domid)
    print(f"vTPM manager runs in {manager_dom.name} "
          f"(domid {manager_dom.domid}, privileged={manager_dom.privileged})")

    guest = platform.add_guest("prod-vm")
    session = GuestSession(guest, platform.rng.fork("s"))
    guest.client.extend(12, hashlib.sha1(b"prod-app-v4").digest())

    # Step 1: the guest quotes PCRs with its vTPM key.
    nonce = platform.rng.bytes(20)
    composite, values, signature = guest.client.quote(
        session.sign_key, KEY_AUTH, nonce, [0, 12]
    )
    vtpm_key = guest.client.get_pub_key(session.sign_key, KEY_AUTH)
    print("guest quote produced")

    # Step 2: the manager endorses the vTPM key via the hardware AIK.
    cert = platform.certifier.endorse(
        platform.manager, guest.domain.domid, guest.instance_id, vtpm_key
    )
    print(f"endorsement issued ({len(cert.serialize())} bytes)")

    # Step 3: challenger-side verification of the full chain.
    quote_ok = vtpm_key.verify_sha1(
        hashlib.sha1(make_quote_info(composite, nonce)).digest(), signature
    ) and PcrBank.composite_of(PcrSelection([0, 12]), values) == composite
    identity = platform.identities.lookup(guest.domain.domid)
    chain_ok = verify_endorsement(
        cert,
        platform.certifier.aik_public,
        expected_identity_hex=identity.hex,
        expected_platform_composite=platform.certifier.platform_composite(),
    )
    print(f"quote verifies: {quote_ok}; endorsement chain verifies: {chain_ok}")
    assert quote_ok and chain_ok

    # A firmware change breaks newly issued chains against the old reference.
    reference = platform.certifier.platform_composite()
    platform.hw_client.extend(1, hashlib.sha1(b"unsigned-firmware").digest())
    cert2 = platform.certifier.endorse(
        platform.manager, guest.domain.domid, guest.instance_id, vtpm_key
    )
    drifted = verify_endorsement(
        cert2, platform.certifier.aik_public,
        expected_platform_composite=reference,
    )
    print(f"after platform drift, new endorsement matches old reference: {drifted}")
    assert not drifted
    print("\nchallenger correctly distinguishes the trusted platform state")


if __name__ == "__main__":
    main()
