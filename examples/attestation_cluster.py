#!/usr/bin/env python3
"""Attestation across a cluster: detect a tampered guest.

A challenger attests every guest in a small cluster.  One guest is then
compromised (its application PCR is extended with unexpected code) and the
next attestation round flags exactly that guest — the detection workflow
the vTPM exists to support.

Usage:  python examples/attestation_cluster.py
"""

import hashlib

from repro import AccessMode, build_platform, fresh_timing_context
from repro.workloads.attestation import AttestationWorkload
from repro.workloads.mixes import GuestSession

CLUSTER = ("web01", "web02", "db01", "cache01")


def main() -> None:
    fresh_timing_context()
    platform = build_platform(AccessMode.IMPROVED, seed=9)

    print(f"provisioning {len(CLUSTER)} guests with vTPMs...")
    workloads = {}
    references = {}
    for name in CLUSTER:
        guest = platform.add_guest(name)
        session = GuestSession(guest, platform.rng.fork(f"att-{name}"))
        # Each guest measures its application stack into PCR 12.
        guest.client.extend(12, hashlib.sha1(f"app-{name}-v1".encode()).digest())
        workload = AttestationWorkload(session, platform.rng.fork(f"chal-{name}"),
                                       pcr_indices=(0, 12))
        workloads[name] = workload
        references[name] = [guest.client.pcr_read(0), guest.client.pcr_read(12)]

    print("\nround 1: everyone healthy")
    for name, workload in workloads.items():
        ok = workload.challenge_once(expected_values=references[name])
        print(f"  {name:8s} attestation {'PASS' if ok else 'FAIL'}")

    victim = "web02"
    print(f"\ncompromising {victim}: unexpected code measured into PCR 12")
    platform.guests[victim].client.extend(
        12, hashlib.sha1(b"cryptominer.so").digest()
    )

    print("\nround 2: challenger compares against reference values")
    flagged = []
    for name, workload in workloads.items():
        ok = workload.challenge_once(expected_values=references[name])
        print(f"  {name:8s} attestation {'PASS' if ok else 'FAIL'}")
        if not ok:
            flagged.append(name)
    assert flagged == [victim], f"expected only {victim} flagged, got {flagged}"
    print(f"\nexactly the compromised guest ({victim}) failed attestation; "
          "signatures from the others still verify")


if __name__ == "__main__":
    main()
