#!/usr/bin/env python3
"""Attestation across a multi-host fleet: guests, hosts, and migration.

Four guests are scheduled across a four-host fleet (consistent-hash
placement filtered by capacity, load and health).  A challenger attests
every guest; one guest is then live-migrated between hosts through the
attested sealed-export path and keeps passing attestation against the
same reference values — migration is invisible to the challenger.  Then
the two failure directions:

* a **compromised guest** (unexpected code measured into its application
  PCR) fails its next attestation round, and only that guest fails;
* a **compromised host** (hardware boot chain re-measured after
  enrolment) is refused as a migration target — the handshake fails
  closed and the guest keeps serving where it is.

Usage:  python examples/attestation_cluster.py
"""

import hashlib

from repro import fresh_timing_context
from repro.cluster import build_fleet
from repro.sim.timing import get_context
from repro.util.errors import ClusterError
from repro.workloads.attestation import AttestationWorkload
from repro.workloads.mixes import GuestSession

CLUSTER = ("web01", "web02", "db01", "cache01")


class FleetGuest:
    """Adapter: a guest handle whose client follows migrations."""

    def __init__(self, fleet, name: str) -> None:
        self.name = name
        self.client = fleet.router.client_for(name)


def main() -> None:
    fresh_timing_context()
    fleet = build_fleet(num_hosts=4, seed=9, capacity=4)

    print(f"placing {len(CLUSTER)} guests across {len(fleet.hosts)} hosts...")
    workloads = {}
    references = {}
    for name in CLUSTER:
        host_id = fleet.add_guest(name)
        print(f"  {name:8s} -> {host_id}")
        session = GuestSession(
            FleetGuest(fleet, name), fleet.rng.fork(f"att-{name}")
        )
        # Each guest measures its application stack into PCR 12.
        session.guest.client.extend(
            12, hashlib.sha1(f"app-{name}-v1".encode()).digest()
        )
        workloads[name] = AttestationWorkload(
            session, fleet.rng.fork(f"chal-{name}"), pcr_indices=(0, 12)
        )
        references[name] = [
            session.guest.client.pcr_read(0),
            session.guest.client.pcr_read(12),
        ]

    print("\nround 1: everyone healthy")
    for name, workload in workloads.items():
        ok = workload.challenge_once(expected_values=references[name])
        print(f"  {name:8s} attestation {'PASS' if ok else 'FAIL'}")

    mover = "web01"
    source = fleet.router.locate(mover).host_id
    target = next(h for h in sorted(fleet.hosts)
                  if h != source and fleet.hosts[h].admissible())
    print(f"\nlive-migrating {mover}: {source} -> {target} "
          "(attested sealed-export path)")
    fleet.migrate(mover, target)
    ok = workloads[mover].challenge_once(expected_values=references[mover])
    assert ok, "migration must be invisible to the challenger"
    print(f"  {mover:8s} attestation {'PASS' if ok else 'FAIL'} "
          f"on {fleet.router.locate(mover).host_id} — same reference values")

    victim = "web02"
    print(f"\ncompromising guest {victim}: unexpected code measured into PCR 12")
    workloads[victim].session.guest.client.extend(
        12, hashlib.sha1(b"cryptominer.so").digest()
    )
    print("round 2: challenger compares against reference values")
    flagged = []
    for name, workload in workloads.items():
        ok = workload.challenge_once(expected_values=references[name])
        print(f"  {name:8s} attestation {'PASS' if ok else 'FAIL'}")
        if not ok:
            flagged.append(name)
    assert flagged == [victim], f"expected only {victim} flagged, got {flagged}"
    print(f"exactly the compromised guest ({victim}) failed; "
          "signatures from the others still verify")

    stray = "cache01"
    stray_home = fleet.router.locate(stray).host_id
    bad_host = next(h for h in sorted(fleet.hosts) if h != stray_home)
    print(f"\ncompromising host {bad_host}: boot chain re-measured "
          "after enrolment")
    fleet.hosts[bad_host].platform.hw_client.extend(
        0, hashlib.sha1(b"evil-bootloader").digest()
    )
    try:
        fleet.migrate(stray, bad_host)
        raise AssertionError("migration to a tampered host must fail closed")
    except ClusterError as exc:
        print(f"  migration of {stray} refused: {exc}")
    assert fleet.router.locate(stray).host_id == stray_home
    ok = workloads[stray].challenge_once(expected_values=references[stray])
    assert ok, "the refused guest must keep serving where it is"
    print(f"  {stray:8s} still serving and attesting on {stray_home}")

    print(f"\nvirtual time: {get_context().clock.now_us / 1000.0:.1f} ms")


if __name__ == "__main__":
    main()
