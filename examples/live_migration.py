#!/usr/bin/env python3
"""Live vTPM migration between two physical hosts.

Moves a guest's vTPM from host A to host B using the improved sealed
protocol, then proves:

* sealed data created before the move still unseals after it (state
  continuity),
* an eavesdropper on the migration path learns nothing (the package is
  encrypted to host B's hardware TPM),
* a replay of the captured package is rejected (single-use nonce).

Usage:  python examples/live_migration.py
"""

from repro import AccessMode, build_platform, fresh_timing_context
from repro.attacks.memdump import secrets_found
from repro.tpm.client import TpmClient
from repro.tpm.constants import TPM_KH_SRK
from repro.util.errors import MigrationError

OWNER_AUTH = b"migrating-owner-au!!"
SRK_AUTH = b"migrating-srk-auth!!"
DATA_AUTH = b"migrating-data-aut!!"


def main() -> None:
    fresh_timing_context()
    host_a = build_platform(AccessMode.IMPROVED, seed=100, name="host-a")
    host_b = build_platform(AccessMode.IMPROVED, seed=200, name="host-b")

    guest = host_a.add_guest("tenant-vm")
    client = guest.client
    ek = client.read_pubek()
    client.take_ownership(OWNER_AUTH, SRK_AUTH, ek)
    sealed = client.seal(TPM_KH_SRK, SRK_AUTH, b"tenant-master-secret-42", DATA_AUTH)
    secrets_before = host_a.manager.instance(
        guest.instance_id
    ).device.state.secret_material()
    print(f"guest provisioned on host A; sealed blob of {len(sealed)} bytes")

    # The VM lands on host B with identical kernel/name/config, so its
    # measured identity carries over.
    target_vm = host_b.xen.create_domain(
        guest.domain.name,
        kernel_image=guest.domain.kernel_image,
        config=dict(guest.domain.config),
    )
    offer = host_b.migration.prepare_target()
    package = host_a.migration.export_sealed(guest.domain.uuid, offer)
    print(f"migration package: {len(package)} bytes on the wire")

    leaked = secrets_found(package.payload, secrets_before)
    print(f"eavesdropper analysis: {len(leaked)} secrets visible in the stream")
    assert not leaked

    instance = host_b.migration.import_sealed(package, target_vm)
    print(f"host B instantiated vTPM instance {instance.instance_id}")

    # Continuity: the sealed blob made on host A opens on host B.
    moved_client = TpmClient(
        lambda wire: host_b.manager.handle_command(
            target_vm.domid, instance.instance_id, wire
        ),
        host_b.rng.fork("moved-client"),
    )
    recovered = moved_client.unseal(TPM_KH_SRK, SRK_AUTH, sealed, DATA_AUTH)
    assert recovered == b"tenant-master-secret-42"
    print("sealed data unseals on host B — state continuity holds")

    # Replay: the captured package cannot be imported twice.
    replay_vm = host_b.xen.create_domain(
        "replayed-vm", kernel_image=guest.domain.kernel_image,
        config=dict(guest.domain.config),
    )
    try:
        host_b.migration.import_sealed(package, replay_vm)
        raise SystemExit("BUG: replayed migration package accepted")
    except MigrationError as exc:
        print(f"replayed package rejected: {exc}")


if __name__ == "__main__":
    main()
