#!/usr/bin/env python3
"""Attack demonstration: the paper's threat model, live.

Runs the complete attack matrix against the stock Xen vTPM and against the
improved (access-controlled) configuration, then shows the audit trail the
improved manager kept of the denied attempts.

Usage:  python examples/attack_demonstration.py
"""

from repro import AccessMode, fresh_timing_context
from repro.attacks.scenarios import matrix_rows, run_attack_matrix
from repro.harness.builder import build_platform
from repro.metrics.tables import format_table


def main() -> None:
    fresh_timing_context()
    print("running the attack toolkit against both regimes...\n")
    baseline = run_attack_matrix(AccessMode.BASELINE, seed=42)
    # Keep the improved platform so we can inspect its audit log afterwards.
    improved_platform = build_platform(
        AccessMode.IMPROVED, seed=42, name="victim-improved"
    )
    improved = run_attack_matrix(
        AccessMode.IMPROVED, seed=42, platform=improved_platform
    )

    print(
        format_table(
            ["attack", "stock Xen vTPM", "with access control"],
            matrix_rows(baseline, improved),
            title="Attack outcomes",
        )
    )

    print("\nWhat the attacks saw:")
    for report in baseline + improved:
        print(f"  [{report.mode.value:8s}] {report.attack:22s} "
              f"{report.outcome.value:9s} {report.detail}")

    audit = improved_platform.audit
    denials = audit.denials()
    print(f"\nimproved-regime audit log: {len(audit)} records, "
          f"{len(denials)} denials, chain intact: {audit.verify_chain()}")
    for record in denials[:8]:
        print(f"  #{record.sequence:<4d} t={record.timestamp_us/1000:9.2f}ms "
              f"{record.operation:16s} subject={record.subject[:12]}… "
              f"{record.reason[:70]}")


if __name__ == "__main__":
    main()
