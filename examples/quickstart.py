#!/usr/bin/env python3
"""Quickstart: boot a platform, attach a vTPM, and use it like a guest would.

Runs the improved (access-controlled) regime end to end:

* build a Xen machine with a hardware TPM and the vTPM manager,
* add a guest with an attached vTPM,
* take ownership, measure boot stages into PCRs,
* seal a secret to platform state, prove unsealing breaks when state drifts,
* produce and verify a quote.

Usage:  python examples/quickstart.py
"""

import hashlib

from repro import AccessMode, build_platform, fresh_timing_context
from repro.sim.timing import get_context
from repro.tpm.constants import TPM_KEY_SIGNING, TPM_KH_SRK
from repro.tpm.pcr import PcrBank, PcrSelection
from repro.tpm.structures import make_quote_info
from repro.util.errors import TpmError

OWNER_AUTH = b"quickstart-owner-a!!"
SRK_AUTH = b"quickstart-srk-aut!!"
KEY_AUTH = b"quickstart-key-aut!!"
DATA_AUTH = b"quickstart-data-au!!"


def main() -> None:
    fresh_timing_context()
    platform = build_platform(AccessMode.IMPROVED, seed=1)
    guest = platform.add_guest("web01")
    client = guest.client
    print(f"platform up: {platform.xen.live_domain_count} domains, "
          f"{platform.manager.instance_count} vTPM instance(s)")

    # 1. Take ownership of the guest's own vTPM.
    ek = client.read_pubek()
    srk_pub = client.take_ownership(OWNER_AUTH, SRK_AUTH, ek)
    print(f"ownership taken; SRK is a {srk_pub.bits}-bit RSA key")

    # 2. Measured boot: hash each stage into a PCR.
    for pcr, stage in ((8, b"guest-kernel-5.4"), (9, b"guest-initrd"),
                       (10, b"web-app-v2.3")):
        client.extend(pcr, hashlib.sha1(stage).digest())
    print("boot chain measured into PCRs 8-10")

    # 3. Seal a database key to the measured state.
    selection = [8, 9, 10]
    values = [client.pcr_read(i) for i in selection]
    digest = PcrBank.composite_of(PcrSelection(selection), values)
    sealed = client.seal(
        TPM_KH_SRK, SRK_AUTH, b"db-master-key-0123456789abcdef", DATA_AUTH,
        PcrSelection(selection), digest,
    )
    recovered = client.unseal(TPM_KH_SRK, SRK_AUTH, sealed, DATA_AUTH)
    print(f"sealed + unsealed {len(recovered)} bytes while state matches")

    # 4. Drift the platform state: unseal must now fail.
    client.extend(10, hashlib.sha1(b"malware-implant").digest())
    try:
        client.unseal(TPM_KH_SRK, SRK_AUTH, sealed, DATA_AUTH)
        raise SystemExit("BUG: unseal succeeded after state drift")
    except TpmError as exc:
        print(f"unseal correctly refused after PCR drift (code {exc.code:#x})")

    # 5. Quote: sign the current PCRs for a remote challenger.
    blob = client.create_wrap_key(TPM_KH_SRK, SRK_AUTH, KEY_AUTH,
                                  TPM_KEY_SIGNING, 512)
    key = client.load_key2(TPM_KH_SRK, SRK_AUTH, blob)
    nonce = b"\x42" * 20
    composite, pcr_values, signature = client.quote(key, KEY_AUTH, nonce,
                                                    selection)
    public = client.get_pub_key(key, KEY_AUTH)
    quote_info = make_quote_info(composite, nonce)
    assert public.verify_sha1(hashlib.sha1(quote_info).digest(), signature)
    assert PcrBank.composite_of(PcrSelection(selection), pcr_values) == composite
    print("quote verified by the challenger")

    print(f"\nvirtual time consumed: {get_context().clock.now_ms:.1f} ms "
          f"(deterministic; independent of host speed)")


if __name__ == "__main__":
    main()
