#!/usr/bin/env python3
"""Chaos recovery: a seeded fault storm with zero vTPM state loss.

Three runs of the same 1000-command workload (two guests, periodic
checkpoints, one live migration, one hard manager crash):

1. a fault-free control run,
2. the same run under the default chaos plan — ring stalls, dropped
   event-channel kicks, torn state writes, a full disk, corrupt recovery
   reads, transient device errors, and a migration that is first cut on
   the wire and then lands on a crashing destination,
3. the chaotic run again, to show the same seed reproduces the identical
   fault sequence.

The demo then checks the robustness claims: every guest's PCR/NV state
after recovery is byte-identical to the control run, at least four fault
kinds actually fired, every fault is on the audit hash chain, and the two
chaotic runs injected byte-identical fault sequences.

Usage:  python examples/chaos_recovery.py [seed]
"""

import sys

from repro.harness.chaos import default_chaos_plan, run_chaos_demo


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2026
    plan = default_chaos_plan(seed)
    print(f"chaos plan: {plan.name!r}, {len(plan)} specs, "
          f"{len(plan.kinds())} fault kinds, seed {seed}")
    print("running control + chaos + replay (3 x 1000 commands)...\n")

    result = run_chaos_demo(seed=seed, plan=plan)
    clean, chaotic, replay = result["clean"], result["chaotic"], result["replay"]

    print("== chaotic run ==")
    for line in chaotic.summary_lines():
        print(f"  {line}")

    print("\n== robustness claims ==")
    print(f"  state preserved : {chaotic.digests == clean.digests}  "
          "(post-recovery PCR/NV == fault-free run)")
    print(f"  deterministic   : "
          f"{chaotic.event_signature == replay.event_signature}  "
          "(same seed twice → same fault sequence)")
    print(f"  fault coverage  : {len(chaotic.fault_counts)} kinds "
          f"({', '.join(sorted(chaotic.fault_counts))})")
    print(f"  observable      : {chaotic.audit_fault_records} audit records, "
          f"metrics samples for "
          f"{sum(1 for n in chaotic.metrics_counts if n.startswith('fault.'))} "
          "fault series")
    print(f"  recovery cost   : mean {chaotic.mean_recovery_us / 1000.0:.2f} ms "
          f"of virtual time per recovery "
          f"({chaotic.recoveries} recoveries, {chaotic.retries} retries)")


if __name__ == "__main__":
    main()
