"""Dependency-free line-coverage measurement for ``src/repro``.

CI runs the real thing (``pytest --cov`` via pytest-cov, see
``.github/workflows/ci.yml``); this script exists so the coverage floor
can be measured and re-derived in environments where coverage.py is not
installed.  It traces the tier-1 suite with :func:`sys.settrace`,
records executed lines for every module under ``src/repro``, and
compares them against the executable-line sets obtained by compiling
each source file and walking its code objects (``co_lines`` — the same
line universe coverage.py reports against).

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args…]

Prints a per-module table and the total percentage, and writes
``coverage-lines.json`` next to the repo root with the raw numbers.
Expect the traced suite to run several times slower than untraced.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PREFIX = str(REPO_ROOT / "src" / "repro") + os.sep

_executed: dict = {}


def _tracer(frame, event, arg):
    if event == "call":
        filename = frame.f_code.co_filename
        if filename.startswith(SRC_PREFIX):
            return _tracer
        return None
    if event == "line":
        filename = frame.f_code.co_filename
        lines = _executed.get(filename)
        if lines is None:
            lines = _executed[filename] = set()
        lines.add(frame.f_lineno)
    return _tracer


def _executable_lines(path: Path) -> set:
    """All line numbers the compiler emits code for in ``path``."""
    code = compile(path.read_text(), str(path), "exec")
    lines: set = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(line for _, _, line in obj.co_lines() if line)
        stack.extend(
            const for const in obj.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main(argv=None) -> int:
    import pytest

    pytest_args = list(argv if argv is not None else sys.argv[1:]) or [
        "-x", "-q", "-p", "no:cacheprovider", str(REPO_ROOT / "tests")
    ]
    threading.settrace(_tracer)
    sys.settrace(_tracer)
    try:
        rc = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"pytest failed (exit {rc}); coverage not recorded",
              file=sys.stderr)
        return rc

    total_exec = 0
    total_hit = 0
    rows = []
    for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
        executable = _executable_lines(path)
        hit = _executed.get(str(path), set()) & executable
        total_exec += len(executable)
        total_hit += len(hit)
        pct = 100.0 * len(hit) / len(executable) if executable else 100.0
        rows.append((str(path.relative_to(REPO_ROOT / "src")), len(hit),
                     len(executable), pct))

    width = max(len(r[0]) for r in rows)
    for name, hit, executable, pct in rows:
        print(f"{name:<{width}}  {hit:>5}/{executable:<5}  {pct:6.1f}%")
    total_pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':<{width}}  {total_hit:>5}/{total_exec:<5}  "
          f"{total_pct:6.1f}%")

    (REPO_ROOT / "coverage-lines.json").write_text(json.dumps({
        "total_pct": round(total_pct, 1),
        "lines_hit": total_hit,
        "lines_executable": total_exec,
        "modules": {
            name: {"hit": hit, "executable": executable,
                   "pct": round(pct, 1)}
            for name, hit, executable, pct in rows
        },
    }, indent=2) + "\n")
    print(f"wrote {REPO_ROOT / 'coverage-lines.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
