"""Figure 3 — vTPM migration time vs instance state size.

Migrates instances of growing state (NV payload sweep) between two
platforms under both protocols.

Expected shape: both curves grow linearly with state size at the same
per-byte slope (network cost); the improved protocol adds a roughly
constant term — dominated by minting the destination's hardware-TPM bind
key — that does not grow with state size.
"""

from _common import emit
from repro.harness.experiments import run_migration_sweep


def test_fig3_migration(run_once):
    result = run_once(run_migration_sweep, nv_payload_kib=(0, 8, 32, 128))
    emit(result)
    rows = result.rows()
    adders = [improved - baseline for _size, baseline, improved in rows]
    # The security adder is constant: spread under 10% of its mean.
    mean_adder = sum(adders) / len(adders)
    assert all(abs(a - mean_adder) / mean_adder < 0.10 for a in adders), adders
    # Baseline grows with size (network slope is visible).
    baselines = [row[1] for row in rows]
    assert baselines[-1] > baselines[0] * 1.5
