"""Table 3 — policy-engine decision latency vs installed rule count.

Pure microbenchmark of the access-control policy engine: install 10 to
10,000 rules, then time authorization decisions.

Expected shape: decision latency is flat (the engine compiles rules into
a hash table keyed by exact (subject, instance, class) triples, so the
per-command cost does not grow with policy size).
"""

from _common import emit
from repro.harness.experiments import run_policy_scaling


def test_table3_policy_scaling(run_once):
    result = run_once(
        run_policy_scaling, rule_counts=(10, 100, 1_000, 10_000), lookups=2_000
    )
    emit(result)
    assert result.is_flat(tolerance=0.10), result.rows
