"""Figure 2 — vTPM instance-creation latency vs existing population.

Creates instances up to each target population and times creating one
more, in both regimes.

Expected shape: creation cost is flat in the population (the manager's
tables are hash maps) and dominated by endorsement-key generation; the
improved regime adds a small constant (identity measurement, owner-policy
installation, page protection).
"""

from _common import emit
from repro.harness.experiments import run_instance_creation


def test_fig2_instance_creation(run_once):
    result = run_once(
        run_instance_creation, populations=(0, 1, 2, 4, 8, 16, 32)
    )
    emit(result)
    rows = result.rows()
    base_first = rows[0][1]
    for population, baseline_ms, improved_ms in rows:
        # Flat in population: within 8% of the first point.  (RSA prime
        # search length varies per key, so keygen cost carries ±5% noise.)
        assert abs(baseline_ms - base_first) / base_first < 0.08
        # Improved within keygen noise of baseline: the access-control
        # adder (identity + policy + protection) is microseconds against a
        # ~165 ms endorsement-key generation.
        assert abs(improved_ms - baseline_ms) / baseline_ms < 0.08
