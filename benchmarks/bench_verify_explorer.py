"""Wall-clock guard for the conformance verification sweep.

The ISSUE's acceptance bar is a *time-boxed* exploration: the small
budget must clear 500 distinct schedules across 3 guests in under a
minute on CI hardware.  This benchmark records what the sweep actually
costs, so a regression that makes exploration drastically slower (a
platform rebuilt per schedule, an accidentally quadratic dedupe) fails
the perf-smoke gate instead of silently eating the CI budget.

Run as a script to merge a ``"verify"`` section into
``BENCH_PIPELINE.json`` at the repo root (existing keys preserved)::

    PYTHONPATH=src python benchmarks/bench_verify_explorer.py

or as the CI gate, which fails if the sweep exceeds its committed
ceiling (2x the recorded wall time, never above the 60 s absolute bar)
or stops finding the required schedule count::

    PYTHONPATH=src python benchmarks/bench_verify_explorer.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PIPELINE.json"

#: the acceptance bar the gate enforces regardless of committed numbers
MIN_SCHEDULES = 500
ABSOLUTE_CEILING_SECONDS = 60.0
#: committed ceiling = recorded wall time x this slack factor
CEILING_FACTOR = 2.0


def run_verify_bench(seed: int = 2010) -> dict:
    """One small-budget sweep, wall-clocked; returns the payload."""
    from repro.verify import explore

    wall_start = time.perf_counter()
    report = explore(budget="small", seed=seed)
    wall = time.perf_counter() - wall_start
    if not report.ok:
        raise AssertionError(
            "verification sweep found violations while benchmarking:\n"
            + "\n".join(report.summary_lines())
        )
    return {
        "workload": (
            f"small-budget conformance sweep: {report.guests} guests, "
            f"credit-base + shuffled + DPOR-swap interleavings, "
            f"model oracle checked per step"
        ),
        "seed": seed,
        "schedules": report.distinct_schedules,
        "steps_executed": report.steps_executed,
        "platforms_built": report.platforms_built,
        "wall_seconds": round(wall, 3),
        "schedules_per_sec": round(report.distinct_schedules / wall, 1),
        "ceiling_seconds": round(
            min(wall * CEILING_FACTOR, ABSOLUTE_CEILING_SECONDS), 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument(
        "--check", action="store_true",
        help=f"compare against {RESULT_PATH.name} instead of rewriting it",
    )
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    payload = run_verify_bench(seed=args.seed)
    print(
        f"{payload['schedules']} schedules ({payload['steps_executed']} steps, "
        f"{payload['platforms_built']} platforms) in "
        f"{payload['wall_seconds']:.2f}s "
        f"({payload['schedules_per_sec']:,.0f} schedules/s)"
    )

    if args.check:
        committed = json.loads(args.output.read_text()).get("verify")
        if committed is None:
            print("no committed verify numbers in BENCH_PIPELINE.json",
                  file=sys.stderr)
            return 1
        ceiling = min(committed["ceiling_seconds"], ABSOLUTE_CEILING_SECONDS)
        if payload["wall_seconds"] > ceiling:
            print(
                f"PERF REGRESSION: sweep took {payload['wall_seconds']:.2f}s, "
                f"ceiling is {ceiling:.2f}s",
                file=sys.stderr,
            )
            return 1
        if payload["schedules"] < MIN_SCHEDULES:
            print(
                f"COVERAGE REGRESSION: {payload['schedules']} distinct "
                f"schedules is below the {MIN_SCHEDULES} acceptance bar",
                file=sys.stderr,
            )
            return 1
        print(
            f"verify perf-smoke OK: {payload['wall_seconds']:.2f}s <= "
            f"{ceiling:.2f}s ceiling, {payload['schedules']} >= "
            f"{MIN_SCHEDULES} schedules"
        )
        return 0

    # Merge, never overwrite: the pipeline benchmark owns the other keys.
    merged = json.loads(args.output.read_text()) if args.output.exists() else {}
    merged["verify"] = payload
    args.output.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"merged verify section into {args.output}")
    return 0


# -- pytest entry points (machine-speed independent) -------------------------


def test_tiny_sweep_is_clean_and_counts_distinct_schedules():
    from repro.verify import Budget, explore

    report = explore(budget=Budget(
        name="tiny", guests=3, ops_per_guest=4, rounds=2,
        shuffles_per_round=3, dpor_cap=4, target_schedules=10,
        platform_batch=40,
    ), seed=2010)
    assert report.ok
    assert report.distinct_schedules >= 5
    # Batching: a tiny sweep must not rebuild a platform per schedule.
    assert report.platforms_built == 1


def test_committed_verify_numbers_are_fresh():
    committed = json.loads(RESULT_PATH.read_text())
    assert "pre_overhaul_ops_per_sec" in committed  # pipeline keys intact
    verify = committed["verify"]
    assert verify["schedules"] >= MIN_SCHEDULES
    assert verify["wall_seconds"] > 0
    assert verify["ceiling_seconds"] <= ABSOLUTE_CEILING_SECONDS
    assert verify["schedules_per_sec"] > 0


if __name__ == "__main__":
    sys.exit(main())
