"""Figure 5 — command latency vs offered load (open loop).

Guests submit commands at Poisson arrival times; the single manager thread
serves FIFO.  An extension figure beyond the core reconstruction: it
answers "does the access-control layer move the saturation knee?"

Expected shape: classic queueing growth as offered load approaches the
manager's capacity; the improved curve sits slightly above baseline at
every load, with the gap widening near saturation (queueing amplifies the
constant per-command adder) but no earlier knee.
"""

from _common import emit
from repro.harness.loadtest import run_latency_under_load


def test_fig5_latency_under_load(run_once):
    result = run_once(
        run_latency_under_load,
        offered_rates=(5_000, 15_000, 25_000, 32_000),
        guests=4,
        duration_s=0.35,
    )
    emit(result)
    rows = result.rows()
    baseline_means = [row[1] for row in rows]
    improved_means = [row[2] for row in rows]
    # Latency grows with load (queueing is visible by the last point).
    assert baseline_means[-1] > baseline_means[0] * 1.3
    # Improved is above baseline at every load, by a bounded factor.
    for b, i in zip(baseline_means, improved_means):
        assert i > b
        assert i / b < 1.6
