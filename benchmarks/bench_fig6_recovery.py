"""Figure 6 — manager crash-recovery time vs instance count.

Extension figure: an operational cost of the improvement.  Recovery
re-reads every instance's state from storage; the improved path also
re-earns the sealer root from the hardware TPM and decrypts each state
blob.

Expected shape: linear in the instance count in both regimes (storage I/O
dominates), with the security machinery adding well under 1%.
"""

from _common import emit
from repro.harness.experiments import run_recovery_sweep


def test_fig6_recovery(run_once):
    result = run_once(run_recovery_sweep, instance_counts=(1, 2, 4, 8))
    emit(result)
    rows = result.rows()
    # Linear: doubling instances roughly doubles recovery time.
    for (n1, b1, i1), (n2, b2, i2) in zip(rows, rows[1:]):
        assert 1.7 < b2 / b1 < 2.3
        assert 1.7 < i2 / i1 < 2.3
    # Improved within 1% of baseline at every population.
    for _n, baseline_ms, improved_ms in rows:
        assert improved_ms > baseline_ms
        assert (improved_ms - baseline_ms) / baseline_ms < 0.01
