"""Figure 6 — manager crash-recovery time vs instance count.

Extension figure: an operational cost of the improvement.  Recovery
re-reads every instance's state from storage; the improved path also
re-earns the sealer root from the hardware TPM and decrypts each state
blob.

Expected shape: linear in the instance count in both regimes (storage I/O
dominates), with the security machinery adding well under 1%.

Figure 6b repeats the measurement with *real injected faults*: the crash
tears the newest state generation of one instance and the recovery reads
hit transient corruption, so the restart exercises generation fallback
and bounded re-reads — the faulted column is recovery latency from actual
fault handling, not a clean replay.
"""

from _common import emit
from repro.harness.experiments import run_faulted_recovery, run_recovery_sweep


def test_fig6_recovery(run_once):
    result = run_once(run_recovery_sweep, instance_counts=(1, 2, 4, 8))
    emit(result)
    rows = result.rows()
    # Linear: doubling instances roughly doubles recovery time.
    for (n1, b1, i1), (n2, b2, i2) in zip(rows, rows[1:]):
        assert 1.7 < b2 / b1 < 2.3
        assert 1.7 < i2 / i1 < 2.3
    # Improved within 1% of baseline at every population.
    for _n, baseline_ms, improved_ms in rows:
        assert improved_ms > baseline_ms
        assert (improved_ms - baseline_ms) / baseline_ms < 0.01


def test_fig6b_faulted_recovery(run_once):
    result = run_once(run_faulted_recovery, instance_counts=(1, 2, 4, 8))
    emit(result)
    for count, clean_ms, faulted_ms, faults, recoveries in result.rows():
        # Recovery still completes for every population, pays a measurable
        # premium for the injected faults, and actually recovered something.
        assert faulted_ms > clean_ms
        assert faults >= 1
        assert recoveries >= 1
