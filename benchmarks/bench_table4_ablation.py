"""Table 4 — ablation: the cost of each access-control component.

Runs the same command stream under configurations enabling one monitor
component at a time, plus all-off, full-without-cache and full, and breaks
the full configuration's access-control cycles down by operation.

Expected shape: each component adds a sub-microsecond-to-few-microsecond
constant per command; audit (which hashes and appends a record per
decision) is the most expensive; the sum of the singles approximates the
cache-off adder; and the decision cache claws part of that adder back
without changing any decision.
"""

from _common import emit
from repro.harness.experiments import run_ablation


def test_table4_ablation(run_once):
    result = run_once(run_ablation, ops=150)
    emit(result)
    rows = {label: (mean, delta) for label, mean, delta in result.rows}
    full_delta = rows["full"][1]
    uncached_delta = rows["full (cache off)"][1]
    assert full_delta > 0, "full configuration must cost something"
    singles = [
        rows[f"only {c}"][1]
        for c in ("identity_check", "policy_check", "audit")
    ]
    assert all(delta >= 0 for delta in singles)
    # Components compose roughly additively against the cache-off full
    # configuration (within 50% slack for the audit records of denials/
    # allow reasons differing in size).
    assert abs(sum(singles) - uncached_delta) / uncached_delta < 0.5
    # The decision cache only removes cost — and never all of it (hits
    # still pay the epoch check and the audit append).
    assert 0 < full_delta <= uncached_delta
    # Audit dominates the breakdown.
    assert result.breakdown.get("ac.audit.append", 0.0) == max(
        result.breakdown.values()
    )
