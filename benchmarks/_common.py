"""Helpers shared by the benchmark files (kept import-light so pytest's
path-based import of sibling modules works without packaging tricks)."""

from __future__ import annotations


def emit(result) -> None:
    """Print a rendered table below the benchmark output."""
    print()
    print(result.render())
