"""Figure 7 — ring batching: virtual per-command latency vs batch size.

Sweeps the batched tpmif submission path (N frames per event-channel
kick) across batch sizes and VM counts.  The per-notify charges
(``xen.evtchn.notify`` on both kicks plus the manager's ``vtpm.dispatch``
demux) amortize over the batch, so per-command latency falls toward the
irreducible authorize + execute + transfer work.

Expected shape: monotone improvement with batch size, saturating by
batch≈16 (one 4 KiB page holds at most ~20 PCRRead-sized frames);
identical curves at every VM count because batching amortizes per-notify
cost, not per-VM cost.
"""

from _common import emit
from repro.harness.experiments import run_batching_sweep


def test_fig7_batching(run_once):
    result = run_once(
        run_batching_sweep,
        batch_sizes=(1, 2, 4, 8, 16),
        vm_counts=(1, 2, 4),
        commands_per_vm=64,
    )
    emit(result)
    rows = result.rows()
    assert rows, "sweep produced no points"
    for row in rows:
        vms, *latencies = row
        # Larger batches never cost more virtual time per command...
        assert all(
            later <= earlier * 1.001
            for earlier, later in zip(latencies, latencies[1:])
        ), f"batching raised per-command latency at {vms} VMs: {latencies}"
        # ...and the largest batch is a real improvement, not noise.
        assert latencies[-1] < latencies[0] * 0.8
    # The amortization is per-ring, so VM count must not change the curve.
    reference = rows[0][1:]
    for row in rows[1:]:
        assert all(
            abs(a - b) / a < 0.05 for a, b in zip(reference, row[1:])
        ), "per-command batching curve should be VM-count independent"
