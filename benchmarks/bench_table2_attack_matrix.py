"""Table 2 — security evaluation: the attack matrix.

Runs every modelled attack against the stock Xen vTPM and the improved
configuration.

Expected shape (the paper's security claim): every dump/theft/rebinding
attack succeeds against stock Xen and is blocked by the improvement;
command replay is blocked in both regimes by TPM 1.2's own rolling-nonce
authorization (defence in depth, reported per layer).
"""

from _common import emit
from repro.harness.experiments import run_attack_matrix_experiment

#: attacks the TPM protocol itself blocks regardless of the new layer
BLOCKED_BY_TPM = {"replay"}


def test_table2_attack_matrix(run_once):
    result = run_once(run_attack_matrix_experiment)
    emit(result)
    assert result.improvement_blocks_all(), "improved regime leaked"
    for attack, baseline_outcome, improved_outcome in result.rows:
        if attack in BLOCKED_BY_TPM:
            assert baseline_outcome == "blocked"
        else:
            assert baseline_outcome == "succeeded", (
                f"{attack} should succeed against stock Xen"
            )
        assert improved_outcome == "blocked"
