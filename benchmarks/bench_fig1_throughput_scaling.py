"""Figure 1 — aggregate vTPM throughput vs number of concurrent VMs.

Guests share the single-threaded vTPM manager; throughput is total
commands over virtual elapsed time as the guest count grows.

Expected shape: the two curves track each other within a few percent at
every population — the access-control checks are a per-command constant
that does not change the scaling behaviour.
"""

from _common import emit
from repro.harness.experiments import run_throughput_scaling


def test_fig1_throughput_scaling(run_once):
    result = run_once(
        run_throughput_scaling, vm_counts=(1, 2, 4, 8, 16), ops_per_vm=40
    )
    emit(result)
    for vms, baseline_tput, improved_tput, loss_pct in result.rows():
        assert improved_tput <= baseline_tput, f"improved faster at {vms} VMs?"
        assert loss_pct < 10.0, (
            f"access control costs {loss_pct:.1f}% at {vms} VMs; expected <10%"
        )
