"""Table 1 — per-command vTPM latency, stock vs improved.

Reproduces the paper's microbenchmark table: for each TPM ordinal the
guest stack exercises, the mean command latency through the full split-
driver path, with and without the access-control layer, and the relative
overhead.

Expected shape: overhead is small (≈10% for the cheapest ordinals where
fixed monitor cost is most visible, under 1% for crypto-heavy ordinals
like Quote/Sign/CreateWrapKey, whose RSA work dwarfs the checks).
"""

from _common import emit
from repro.harness.experiments import run_command_latency


def test_table1_command_latency(run_once):
    result = run_once(run_command_latency, reps=50)
    emit(result)
    # Shape assertions: the monitor never dominates a command.
    assert 0.0 < result.max_overhead_pct() < 25.0
    rows = {row[0]: row for row in result.overhead_rows()}
    # Crypto-heavy ordinals dilute the fixed checks below 2%.
    for heavy in ("quote", "sign", "create_wrap_key"):
        assert rows[heavy][3] < 2.0, f"{heavy} overhead {rows[heavy][3]:.2f}%"
    # Improved is never faster than baseline (checks are pure overhead).
    for op, _b, _i, overhead in result.overhead_rows():
        assert overhead >= 0.0, f"{op} shows negative overhead"
