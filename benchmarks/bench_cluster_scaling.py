"""Wall-clock scaling benchmark for the multi-host fleet layer.

Measures what the cluster subsystem adds on top of the single-platform
pipeline: routed commands per second and p99 per-command virtual latency
as the host count grows, plus the cost of a rebalance storm (attested
cross-host migrations per second and virtual time per move).

Run as a script to merge a ``"cluster"`` section into
``BENCH_PIPELINE.json`` at the repo root (existing pipeline keys are
preserved)::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py

or as the CI perf-smoke gate, which fails if routed throughput drops
more than 40% below the committed numbers::

    PYTHONPATH=src python benchmarks/bench_cluster_scaling.py --check

As a pytest module it checks machine-speed-independent invariants only:
virtual command cost is placement-invariant, storms actually move
guests, and the committed numbers exist alongside the pipeline's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PIPELINE.json"

#: the CI gate: a fresh run must reach this fraction of the committed rate
CHECK_FLOOR = 0.60

HOST_COUNTS = (1, 2, 4, 8)
GUESTS = 24
STEPS = 30


def _p99(samples) -> float:
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))]


def _measure_shape(hosts: int, guests: int, steps: int) -> dict:
    """One fleet shape: route ``guests * steps`` commands (untraced, then
    traced at the default sampling rate), then storm."""
    from repro.cluster import build_fleet
    from repro.cluster.demo import _extend_wire, _storm_moves
    from repro.crypto.random_source import RandomSource
    from repro.harness.builder import fresh_timing_context
    from repro.obs import CountingSink, Tracer
    from repro.obs import trace as obs_trace
    from repro.sim.timing import get_context

    from bench_wallclock_pipeline import TRACE_SAMPLE_RATE

    fresh_timing_context()
    fleet = build_fleet(num_hosts=hosts, seed=77, capacity=guests,
                        name=f"bench{hosts}")
    names = [f"g{i:02d}" for i in range(guests)]
    for name in names:
        fleet.add_guest(name)
    streams = {
        name: RandomSource(f"bench-cluster-{name}".encode()) for name in names
    }

    clock = get_context().clock
    latencies = []
    wall_start = time.perf_counter()
    for _step in range(steps):
        for name in names:
            rng = streams[name]
            wire = _extend_wire(rng.randint_below(16), rng.bytes(20))
            before_us = clock.now_us
            fleet.router.send(name, wire)
            latencies.append(clock.now_us - before_us)
    wall_route = time.perf_counter() - wall_start
    commands = guests * steps

    # The same routed workload again with spans on (1-in-N sampled), so
    # the committed numbers record what --trace costs per fleet shape.
    tracer = Tracer(CountingSink(), sample_rate=TRACE_SAMPLE_RATE)
    wall_start = time.perf_counter()
    with obs_trace.tracer_scope(tracer):
        for _step in range(steps):
            for name in names:
                rng = streams[name]
                wire = _extend_wire(rng.randint_below(16), rng.bytes(20))
                fleet.router.send(name, wire)
    wall_traced = time.perf_counter() - wall_start

    storm_moves = 0
    storm_wall = 0.0
    storm_virtual_us = 0.0
    if hosts > 1:
        moves = _storm_moves(fleet, names)
        virtual_before = clock.now_us
        wall_start = time.perf_counter()
        records = fleet.migrator.storm(moves)
        storm_wall = time.perf_counter() - wall_start
        storm_virtual_us = clock.now_us - virtual_before
        storm_moves = sum(1 for r in records if r.outcome == "moved")

    return {
        "hosts": hosts,
        "commands": commands,
        "ops_per_sec": round(commands / wall_route, 1),
        "traced_ops_per_sec": round(commands / wall_traced, 1),
        "trace_sample_rate": TRACE_SAMPLE_RATE,
        "p99_virtual_us": round(_p99(latencies), 3),
        "storm_moves": storm_moves,
        "storm_wall_seconds": round(storm_wall, 6),
        "storm_virtual_us_per_move": round(
            storm_virtual_us / storm_moves, 1
        ) if storm_moves else 0.0,
        "moves_per_sec": round(
            storm_moves / storm_wall, 1
        ) if storm_moves and storm_wall else 0.0,
    }


def run_scaling(host_counts=HOST_COUNTS, guests=GUESTS, steps=STEPS,
                repeats: int = 2) -> dict:
    """Best-of-``repeats`` per shape; returns the ``"cluster"`` payload."""
    shapes = []
    for hosts in host_counts:
        best = None
        for _ in range(max(1, repeats)):
            run = _measure_shape(hosts, guests, steps)
            if best is None or run["ops_per_sec"] > best["ops_per_sec"]:
                best = run
        shapes.append(best)
    reference = max(shapes, key=lambda s: s["hosts"])
    return {
        "workload": (
            f"{guests} guests x {steps} steps of routed extends per shape, "
            f"improved mode, then a third-of-the-fleet rebalance storm"
        ),
        "ops_per_sec": reference["ops_per_sec"],
        "shapes": shapes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--guests", type=int, default=GUESTS)
    parser.add_argument("--steps", type=int, default=STEPS)
    parser.add_argument(
        "--check", action="store_true",
        help=f"compare against {RESULT_PATH.name} instead of rewriting it; "
             f"fail if below {CHECK_FLOOR:.0%} of the committed rate",
    )
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    payload = run_scaling(guests=args.guests, steps=args.steps)
    for shape in payload["shapes"]:
        line = (
            f"hosts={shape['hosts']:>2}: {shape['ops_per_sec']:>10,.0f} cmds/s "
            f"routed ({shape['traced_ops_per_sec']:,.0f} traced), "
            f"p99 {shape['p99_virtual_us']:.1f} virtual us"
        )
        if shape["storm_moves"]:
            line += (
                f"; storm {shape['storm_moves']} moves at "
                f"{shape['moves_per_sec']:,.0f} moves/s "
                f"({shape['storm_virtual_us_per_move']:,.0f} virtual us/move)"
            )
        print(line)

    if args.check:
        committed = json.loads(args.output.read_text()).get("cluster")
        if committed is None:
            print("no committed cluster numbers in BENCH_PIPELINE.json",
                  file=sys.stderr)
            return 1
        floor = committed["ops_per_sec"] * CHECK_FLOOR
        fresh = payload["ops_per_sec"]
        if fresh < floor:
            print(
                f"PERF REGRESSION: {fresh:,.0f} routed cmds/s is below "
                f"{CHECK_FLOOR:.0%} of the committed "
                f"{committed['ops_per_sec']:,.0f} cmds/s",
                file=sys.stderr,
            )
            return 1
        print(f"cluster perf-smoke OK: {fresh:,.0f} cmds/s >= "
              f"{floor:,.0f} cmds/s floor")
        return 0

    # Merge, never overwrite: the pipeline benchmark owns the other keys.
    merged = json.loads(args.output.read_text()) if args.output.exists() else {}
    merged["cluster"] = payload
    args.output.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"merged cluster section into {args.output}")
    return 0


# -- pytest entry points (machine-speed independent) -------------------------


def test_virtual_command_cost_is_placement_invariant():
    """The same guest scripts cost the same virtual time on any fleet
    shape — sharding across hosts is free in simulated time."""
    one = _measure_shape(hosts=1, guests=6, steps=8)
    two = _measure_shape(hosts=2, guests=6, steps=8)
    assert one["commands"] == two["commands"]
    assert one["p99_virtual_us"] == two["p99_virtual_us"]


def test_storm_actually_moves_guests_and_costs_virtual_time():
    run = _measure_shape(hosts=3, guests=9, steps=4)
    assert run["storm_moves"] >= 1
    assert run["storm_virtual_us_per_move"] > 0.0


def test_committed_cluster_numbers_are_fresh():
    """BENCH_PIPELINE.json carries the cluster section next to the
    pipeline keys it must not clobber."""
    committed = json.loads(RESULT_PATH.read_text())
    assert "pre_overhaul_ops_per_sec" in committed  # pipeline keys intact
    cluster = committed["cluster"]
    assert cluster["ops_per_sec"] > 0
    assert len(cluster["shapes"]) >= 3
    assert all(s["traced_ops_per_sec"] > 0 for s in cluster["shapes"])
    stormed = [s for s in cluster["shapes"] if s["hosts"] > 1]
    assert all(s["storm_moves"] >= 1 for s in stormed)


if __name__ == "__main__":
    raise SystemExit(main())
