"""Wall-clock benchmark of the simulator's own command pipeline.

Unlike every other file in this directory, this one measures *host* time:
how many full-stack vTPM commands per second the harness sustains
(``frontend → ring → backend → manager → monitor → instance → executor``).
The deterministic virtual-time results never depend on host speed; this
rail exists so the harness's own hot path cannot silently regress
(ROADMAP: "as fast as the hardware allows").

Run as a script to (re)generate ``BENCH_PIPELINE.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_wallclock_pipeline.py

or as the CI perf-smoke gate, which fails if throughput drops more than
30% below the committed numbers::

    PYTHONPATH=src python benchmarks/bench_wallclock_pipeline.py --check

As a pytest module it checks the pipeline's *relative* invariants only
(cache hit rate, audit-chain integrity, batching's virtual-time saving),
so test runs stay independent of machine speed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PIPELINE.json"

#: cmds/s measured on this harness immediately before the fast-path
#: overhaul (authorization cache, parse-once dispatch, buffered audit
#: chaining, charge() fast path): 10k improved-mode PCRRead frames,
#: unbatched.  Kept as the fixed reference the speedup column reports.
PRE_OVERHAUL_OPS_PER_SEC = 12_320.0

#: the CI gate: a fresh run must reach this fraction of the committed rate
CHECK_FLOOR = 0.70

#: absolute gates on a fresh ``--check`` run (the "instrumentation is
#: near-free" contract): bare throughput floor and the worst acceptable
#: overhead for tracing (at the default sampling rate) and supervision
MIN_OPS_PER_SEC = 19_000.0
MAX_TRACE_OVERHEAD_PCT = 15.0
MAX_SUPERVISED_OVERHEAD_PCT = 15.0

#: the sampling rate the traced pass benchmarks — the recommended
#: always-on configuration: 1-in-32 span trees recorded, counters stay
#: exact.  Halving the rate roughly doubles the recording share of the
#: overhead (the skip path is near-free); 1-in-16 lands around twice
#: this gate's headroom on a virtualized host.
TRACE_SAMPLE_RATE = 32


def run_profiles(commands: int = 3_000, batch_sizes=(1, 16),
                 repeats: int = 24) -> dict:
    """Measure the pipeline at each batch size; returns the JSON payload.

    Alongside the bare batch-size runs, one unbatched variant runs with a
    span tracer installed (counting sink, no retention) at the default
    head-sampling rate — the configuration ``--trace-sample 16`` uses —
    one at rate 1 for the full-recording cost, and one under the
    resilience supervisor.

    Measurement follows the ``timeit`` doctrine scaled to hosts whose
    clock speed drifts (frequency scaling, noisy neighbours, pvclock):
    each variant is timed in many **short slices** (``commands`` each),
    the variant order **rotates** every round (so no variant always runs
    in the thermal shadow of the longest one), and each variant reports
    its **second-smallest** slice time — every variant gets ``repeats``
    chances to catch the host's fast phase, a single turbo-burst outlier
    cannot skew the ratios, and a genuine code regression slows every
    slice, so the estimate still gates it.
    """
    from repro.harness.profiling import profile_pipeline
    from repro.obs import CountingSink, Tracer

    def measure(variant):
        kind = variant[0]
        if kind == "batch":
            return profile_pipeline(commands=commands, batch_size=variant[1])
        if kind == "traced":
            return profile_pipeline(
                commands=commands, batch_size=1,
                tracer=Tracer(CountingSink(), sample_rate=TRACE_SAMPLE_RATE),
            )
        if kind == "traced_full":
            return profile_pipeline(
                commands=commands, batch_size=1, tracer=Tracer(CountingSink())
            )
        # Supervision (health record, breaker and admission hooks on every
        # frame) must cost wall time only, never virtual time.
        return profile_pipeline(
            commands=commands, batch_size=1, supervised=True
        )

    variants = [("batch", b) for b in batch_sizes]
    variants += [("traced",), ("traced_full",), ("supervised",)]
    fastest = {variant: [] for variant in variants}  # two smallest walls
    for round_no in range(max(1, repeats)):
        shift = round_no % len(variants)
        for variant in variants[shift:] + variants[:shift]:
            profile = measure(variant)
            if profile.chain_ok is False:
                raise AssertionError("audit chain broke during the benchmark")
            pair = fastest[variant]
            pair.append(profile)
            pair.sort(key=lambda p: p.wall_seconds)
            del pair[2:]

    # Second-smallest slice per variant (the smallest where only one
    # round ran).
    best = {variant: pair[-1] for variant, pair in fastest.items()}

    def overhead_pct(variant):
        ratio = best[variant].ops_per_sec / best[("batch", 1)].ops_per_sec
        return round(100.0 * (1.0 - ratio), 1)

    runs = [best[("batch", b)].as_dict() for b in batch_sizes]
    unbatched = runs[0]["ops_per_sec"]

    return {
        "workload": (
            f"{commands} PCRRead frames per slice x {repeats} interleaved "
            "slices (min gates), improved mode, full stack"
        ),
        "pre_overhaul_ops_per_sec": PRE_OVERHAUL_OPS_PER_SEC,
        "ops_per_sec": unbatched,
        "speedup_vs_pre_overhaul": round(
            unbatched / PRE_OVERHAUL_OPS_PER_SEC, 2
        ),
        "trace_sample_rate": TRACE_SAMPLE_RATE,
        "traced_ops_per_sec": round(best[("traced",)].ops_per_sec, 1),
        "trace_overhead_pct": overhead_pct(("traced",)),
        "traced_full_ops_per_sec": round(
            best[("traced_full",)].ops_per_sec, 1
        ),
        "trace_full_overhead_pct": overhead_pct(("traced_full",)),
        "supervised_ops_per_sec": round(best[("supervised",)].ops_per_sec, 1),
        "supervised_overhead_pct": overhead_pct(("supervised",)),
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--commands", type=int, default=3_000,
        help="commands per timed slice (each variant is timed in many "
             "short interleaved slices; the minimum slice gates)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"compare against {RESULT_PATH.name} instead of rewriting it; "
             f"fail if below {CHECK_FLOOR:.0%} of the committed rate",
    )
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    payload = run_profiles(commands=args.commands)
    for run in payload["runs"]:
        print(
            f"batch={run['batch_size']:>2}: {run['ops_per_sec']:>10,.0f} cmds/s "
            f"wall, {run['virtual_us_per_cmd']:.2f} virtual us/cmd, "
            f"cache hit rate {run['cache_hit_rate']:.1%}"
        )
    print(
        f"speedup vs pre-overhaul harness "
        f"({payload['pre_overhaul_ops_per_sec']:,.0f} cmds/s): "
        f"{payload['speedup_vs_pre_overhaul']:.2f}x"
    )
    print(
        f"traced (1-in-{payload['trace_sample_rate']}): "
        f"{payload['traced_ops_per_sec']:>10,.0f} cmds/s "
        f"({payload['trace_overhead_pct']:.1f}% overhead)"
    )
    print(
        f"traced (all)     : {payload['traced_full_ops_per_sec']:>10,.0f} "
        f"cmds/s ({payload['trace_full_overhead_pct']:.1f}% overhead)"
    )
    print(
        f"supervised       : {payload['supervised_ops_per_sec']:>10,.0f} cmds/s "
        f"({payload['supervised_overhead_pct']:.1f}% overhead)"
    )

    if args.check:
        committed = json.loads(args.output.read_text())
        floor = committed["ops_per_sec"] * CHECK_FLOOR
        fresh = payload["ops_per_sec"]
        failures = []
        if fresh < floor:
            failures.append(
                f"{fresh:,.0f} cmds/s is below {CHECK_FLOOR:.0%} of the "
                f"committed {committed['ops_per_sec']:,.0f} cmds/s"
            )
        if fresh < MIN_OPS_PER_SEC:
            failures.append(
                f"{fresh:,.0f} cmds/s is below the absolute "
                f"{MIN_OPS_PER_SEC:,.0f} cmds/s floor"
            )
        if payload["trace_overhead_pct"] > MAX_TRACE_OVERHEAD_PCT:
            failures.append(
                f"trace overhead {payload['trace_overhead_pct']:.1f}% "
                f"exceeds {MAX_TRACE_OVERHEAD_PCT:.0f}%"
            )
        if payload["supervised_overhead_pct"] > MAX_SUPERVISED_OVERHEAD_PCT:
            failures.append(
                f"supervised overhead "
                f"{payload['supervised_overhead_pct']:.1f}% exceeds "
                f"{MAX_SUPERVISED_OVERHEAD_PCT:.0f}%"
            )
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf-smoke OK: {fresh:,.0f} cmds/s >= {floor:,.0f} cmds/s "
            f"floor; trace {payload['trace_overhead_pct']:.1f}% / "
            f"supervised {payload['supervised_overhead_pct']:.1f}% "
            f"<= {MAX_TRACE_OVERHEAD_PCT:.0f}% overhead"
        )
        return 0

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest entry points (machine-speed independent) -------------------------


def test_pipeline_invariants():
    """The fast path keeps its semantic invariants at both batch sizes."""
    from repro.harness.profiling import profile_pipeline

    single = profile_pipeline(commands=1_500, batch_size=1)
    batched = profile_pipeline(commands=1_500, batch_size=16)
    for profile in (single, batched):
        assert profile.chain_ok is True
        assert profile.cache_hit_rate > 0.95
        # one audit record per command (plus the warm-up frame)
        assert profile.audit_records == profile.commands + 1
    # Batching must amortize virtual per-notify costs, not just wall time.
    assert batched.virtual_us_per_cmd < single.virtual_us_per_cmd


def test_tracing_charges_no_virtual_time():
    """A traced run costs host time, never virtual time: per-command
    virtual cost and the audit chain are identical with spans on."""
    from repro.harness.profiling import profile_pipeline
    from repro.obs import CountingSink, Tracer

    plain = profile_pipeline(commands=800, batch_size=1)
    sink = CountingSink()
    traced = profile_pipeline(
        commands=800, batch_size=1, tracer=Tracer(sink)
    )
    assert traced.virtual_us_per_cmd == plain.virtual_us_per_cmd
    assert traced.chain_ok is True
    assert sink.roots == 800  # one tree per timed command
    assert sink.spans > sink.roots


def test_supervision_charges_no_virtual_time():
    """Supervision costs host time only: per-command virtual cost and the
    audit chain are identical with the supervisor's hooks installed."""
    from repro.harness.profiling import profile_pipeline

    plain = profile_pipeline(commands=800, batch_size=1)
    supervised = profile_pipeline(commands=800, batch_size=1, supervised=True)
    assert supervised.virtual_us_per_cmd == plain.virtual_us_per_cmd
    assert supervised.chain_ok is True
    assert supervised.audit_records == plain.audit_records


def test_committed_numbers_are_fresh():
    """BENCH_PIPELINE.json exists and records the claimed speedup."""
    committed = json.loads(RESULT_PATH.read_text())
    assert committed["pre_overhaul_ops_per_sec"] == PRE_OVERHAUL_OPS_PER_SEC
    # The pre-overhaul reference was measured on one particular host; a
    # slower or more loaded regeneration host shifts the absolute ratio,
    # so the floor only guards against losing the overhaul, not against
    # host variance.
    assert committed["speedup_vs_pre_overhaul"] >= 1.2
    assert committed["runs"], "at least one recorded run"
    assert committed["ops_per_sec"] >= MIN_OPS_PER_SEC
    assert committed["trace_sample_rate"] == TRACE_SAMPLE_RATE
    assert committed["traced_ops_per_sec"] > 0
    assert committed["trace_overhead_pct"] <= MAX_TRACE_OVERHEAD_PCT
    assert committed["traced_full_ops_per_sec"] > 0
    assert committed["supervised_ops_per_sec"] > 0
    assert committed["supervised_overhead_pct"] <= MAX_SUPERVISED_OVERHEAD_PCT


if __name__ == "__main__":
    raise SystemExit(main())
