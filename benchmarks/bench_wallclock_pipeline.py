"""Wall-clock benchmark of the simulator's own command pipeline.

Unlike every other file in this directory, this one measures *host* time:
how many full-stack vTPM commands per second the harness sustains
(``frontend → ring → backend → manager → monitor → instance → executor``).
The deterministic virtual-time results never depend on host speed; this
rail exists so the harness's own hot path cannot silently regress
(ROADMAP: "as fast as the hardware allows").

Run as a script to (re)generate ``BENCH_PIPELINE.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_wallclock_pipeline.py

or as the CI perf-smoke gate, which fails if throughput drops more than
30% below the committed numbers::

    PYTHONPATH=src python benchmarks/bench_wallclock_pipeline.py --check

As a pytest module it checks the pipeline's *relative* invariants only
(cache hit rate, audit-chain integrity, batching's virtual-time saving),
so test runs stay independent of machine speed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_PIPELINE.json"

#: cmds/s measured on this harness immediately before the fast-path
#: overhaul (authorization cache, parse-once dispatch, buffered audit
#: chaining, charge() fast path): 10k improved-mode PCRRead frames,
#: unbatched.  Kept as the fixed reference the speedup column reports.
PRE_OVERHAUL_OPS_PER_SEC = 12_320.0

#: the CI gate: a fresh run must reach this fraction of the committed rate
CHECK_FLOOR = 0.70


def run_profiles(commands: int = 10_000, batch_sizes=(1, 16),
                 repeats: int = 3) -> dict:
    """Measure the pipeline at each batch size; returns the JSON payload.

    Best-of-``repeats`` per batch size, so a scheduling hiccup on a busy
    host doesn't end up as the committed reference rate.  One extra
    unbatched pass runs with a span tracer installed (counting sink, no
    retention) so the payload records tracing's wall-clock overhead next
    to the untraced rate it is compared against.
    """
    from repro.harness.profiling import profile_pipeline
    from repro.obs import CountingSink, Tracer

    runs = []
    for batch in batch_sizes:
        best = None
        for _ in range(max(1, repeats)):
            profile = profile_pipeline(commands=commands, batch_size=batch)
            if profile.chain_ok is False:
                raise AssertionError("audit chain broke during the benchmark")
            if best is None or profile.wall_seconds < best.wall_seconds:
                best = profile
        runs.append(best.as_dict())
    unbatched = runs[0]["ops_per_sec"]

    traced_best = None
    for _ in range(max(1, repeats)):
        profile = profile_pipeline(
            commands=commands, batch_size=1, tracer=Tracer(CountingSink())
        )
        if traced_best is None or profile.wall_seconds < traced_best.wall_seconds:
            traced_best = profile
    traced = traced_best.ops_per_sec

    # One more unbatched pass under the resilience supervisor: health
    # record, breaker and admission hooks live on every frame.  Like
    # tracing, supervision must cost wall time only, never virtual time.
    supervised_best = None
    for _ in range(max(1, repeats)):
        profile = profile_pipeline(
            commands=commands, batch_size=1, supervised=True
        )
        if (
            supervised_best is None
            or profile.wall_seconds < supervised_best.wall_seconds
        ):
            supervised_best = profile
    supervised = supervised_best.ops_per_sec

    return {
        "workload": f"{commands} PCRRead frames, improved mode, full stack",
        "pre_overhaul_ops_per_sec": PRE_OVERHAUL_OPS_PER_SEC,
        "ops_per_sec": unbatched,
        "speedup_vs_pre_overhaul": round(
            unbatched / PRE_OVERHAUL_OPS_PER_SEC, 2
        ),
        "traced_ops_per_sec": round(traced, 1),
        "trace_overhead_pct": round(100.0 * (1.0 - traced / unbatched), 1),
        "supervised_ops_per_sec": round(supervised, 1),
        "supervised_overhead_pct": round(
            100.0 * (1.0 - supervised / unbatched), 1
        ),
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commands", type=int, default=10_000)
    parser.add_argument(
        "--check", action="store_true",
        help=f"compare against {RESULT_PATH.name} instead of rewriting it; "
             f"fail if below {CHECK_FLOOR:.0%} of the committed rate",
    )
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    payload = run_profiles(commands=args.commands)
    for run in payload["runs"]:
        print(
            f"batch={run['batch_size']:>2}: {run['ops_per_sec']:>10,.0f} cmds/s "
            f"wall, {run['virtual_us_per_cmd']:.2f} virtual us/cmd, "
            f"cache hit rate {run['cache_hit_rate']:.1%}"
        )
    print(
        f"speedup vs pre-overhaul harness "
        f"({payload['pre_overhaul_ops_per_sec']:,.0f} cmds/s): "
        f"{payload['speedup_vs_pre_overhaul']:.2f}x"
    )
    print(
        f"traced (spans on): {payload['traced_ops_per_sec']:>10,.0f} cmds/s "
        f"({payload['trace_overhead_pct']:.1f}% overhead)"
    )
    print(
        f"supervised       : {payload['supervised_ops_per_sec']:>10,.0f} cmds/s "
        f"({payload['supervised_overhead_pct']:.1f}% overhead)"
    )

    if args.check:
        committed = json.loads(args.output.read_text())
        floor = committed["ops_per_sec"] * CHECK_FLOOR
        fresh = payload["ops_per_sec"]
        if fresh < floor:
            print(
                f"PERF REGRESSION: {fresh:,.0f} cmds/s is below "
                f"{CHECK_FLOOR:.0%} of the committed "
                f"{committed['ops_per_sec']:,.0f} cmds/s",
                file=sys.stderr,
            )
            return 1
        print(
            f"perf-smoke OK: {fresh:,.0f} cmds/s >= "
            f"{floor:,.0f} cmds/s floor"
        )
        return 0

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# -- pytest entry points (machine-speed independent) -------------------------


def test_pipeline_invariants():
    """The fast path keeps its semantic invariants at both batch sizes."""
    from repro.harness.profiling import profile_pipeline

    single = profile_pipeline(commands=1_500, batch_size=1)
    batched = profile_pipeline(commands=1_500, batch_size=16)
    for profile in (single, batched):
        assert profile.chain_ok is True
        assert profile.cache_hit_rate > 0.95
        # one audit record per command (plus the warm-up frame)
        assert profile.audit_records == profile.commands + 1
    # Batching must amortize virtual per-notify costs, not just wall time.
    assert batched.virtual_us_per_cmd < single.virtual_us_per_cmd


def test_tracing_charges_no_virtual_time():
    """A traced run costs host time, never virtual time: per-command
    virtual cost and the audit chain are identical with spans on."""
    from repro.harness.profiling import profile_pipeline
    from repro.obs import CountingSink, Tracer

    plain = profile_pipeline(commands=800, batch_size=1)
    sink = CountingSink()
    traced = profile_pipeline(
        commands=800, batch_size=1, tracer=Tracer(sink)
    )
    assert traced.virtual_us_per_cmd == plain.virtual_us_per_cmd
    assert traced.chain_ok is True
    assert sink.roots == 800  # one tree per timed command
    assert sink.spans > sink.roots


def test_supervision_charges_no_virtual_time():
    """Supervision costs host time only: per-command virtual cost and the
    audit chain are identical with the supervisor's hooks installed."""
    from repro.harness.profiling import profile_pipeline

    plain = profile_pipeline(commands=800, batch_size=1)
    supervised = profile_pipeline(commands=800, batch_size=1, supervised=True)
    assert supervised.virtual_us_per_cmd == plain.virtual_us_per_cmd
    assert supervised.chain_ok is True
    assert supervised.audit_records == plain.audit_records


def test_committed_numbers_are_fresh():
    """BENCH_PIPELINE.json exists and records the claimed speedup."""
    committed = json.loads(RESULT_PATH.read_text())
    assert committed["pre_overhaul_ops_per_sec"] == PRE_OVERHAUL_OPS_PER_SEC
    # The pre-overhaul reference was measured on one particular host; a
    # slower or more loaded regeneration host shifts the absolute ratio,
    # so the floor only guards against losing the overhaul, not against
    # host variance.
    assert committed["speedup_vs_pre_overhaul"] >= 1.2
    assert committed["runs"], "at least one recorded run"
    assert committed["traced_ops_per_sec"] > 0
    assert committed["trace_overhead_pct"] < 60.0
    assert committed["supervised_ops_per_sec"] > 0
    assert committed["supervised_overhead_pct"] < 60.0


if __name__ == "__main__":
    raise SystemExit(main())
