"""Shared benchmark plumbing.

Each benchmark file regenerates one table or figure of the evaluation.
Experiments are deterministic virtual-time simulations, so wall-clock
numbers from pytest-benchmark measure *harness* speed; the scientific
output is the printed table, which ``-s`` (or the captured stdout summary)
shows and which EXPERIMENTS.md records.

Experiments run once per session (they are not micro-kernels to be looped),
so every benchmark uses ``pedantic`` with one round.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
