"""Figure 4 — application-level benchmark: sealed-storage web server.

Requests/s for three deployments of the same web server: private key in
the clear (no vTPM), key sealed in the stock vTPM, key sealed behind the
access-controlled vTPM.

Expected shape: the vTPM path costs well under 1% at the application
level with a 90% session-cache hit rate, and the access-control layer's
additional cost is a small fraction of that.
"""

from _common import emit
from repro.harness.experiments import run_webapp_benchmark


def test_fig4_application(run_once):
    result = run_once(run_webapp_benchmark, requests=2_000)
    emit(result)
    rows = {row[0]: row for row in result.rows}
    assert rows["baseline"][2] < 1.0, "vTPM slowdown should be <1% here"
    assert rows["improved"][2] < 1.5
    # The ordering no-vtpm >= baseline >= improved must hold.
    assert (
        rows["no-vtpm"][1] >= rows["baseline"][1] >= rows["improved"][1]
    )
