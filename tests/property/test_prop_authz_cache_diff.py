"""Differential oracle: the authz decision cache is semantically invisible.

Two improved-mode platforms run the *same* randomized interleaving of
commands, policy revocations/re-grants, identity re-registrations (with
and without a mutated kernel), guest churn (instance destroy + recreate,
exercising domid/instance recycling) and explicit cache flushes.  The
only difference between them is ``authz_cache`` on vs off.

If the cache is correct it can never change a decision, so the oracle
demands byte-identical responses command-for-command, an identical
allow/deny sequence, and an equal timestamp-free decision chain hash
(:meth:`~repro.core.audit.AuditLog.decision_chain_hash`).  The *full*
chain hashes legitimately differ — a cache hit charges less virtual time
than a policy walk, and the raw records timestamp each decision — which
is exactly why the decision chain exists.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AccessControlConfig, AccessMode
from repro.harness.builder import build_platform
from repro.tpm import marshal
from repro.tpm.constants import TPM_ORD_PcrRead
from repro.util.bytesio import ByteWriter

_GUEST_NAMES = ("alice", "bob", "carol")


def _pcr_read_wire(index: int) -> bytes:
    return marshal.build_command(
        TPM_ORD_PcrRead, ByteWriter().u32(index).getvalue()
    )


_ACTION = st.one_of(
    st.tuples(st.just("cmd"), st.integers(0, 2), st.integers(0, 7)),
    st.tuples(st.just("revoke"), st.integers(0, 2)),
    st.tuples(st.just("grant"), st.integers(0, 2)),
    st.tuples(st.just("reregister"), st.integers(0, 2), st.booleans()),
    st.tuples(st.just("churn"), st.integers(0, 2)),
    st.tuples(st.just("flush")),
)


class _World:
    """One platform plus the bookkeeping to apply an action script."""

    def __init__(self, cache_on: bool, seed: int) -> None:
        config = AccessControlConfig.all_on()
        if not cache_on:
            config = config.without("authz_cache")
        self.platform = build_platform(
            AccessMode.IMPROVED,
            seed=seed,
            ac_config=config,
            name=f"diff-{'on' if cache_on else 'off'}-{seed}",
        )
        self.guests = {
            name: self.platform.add_guest(name) for name in _GUEST_NAMES
        }
        self.responses = []

    def apply(self, action) -> None:
        platform, kind = self.platform, action[0]
        guest = self.guests[_GUEST_NAMES[action[1]]] if len(action) > 1 else None
        if kind == "cmd":
            self.responses.append(
                guest.frontend.transport(_pcr_read_wire(action[2]))
            )
        elif kind == "revoke":
            platform.policy.revoke_subject(guest.domain.measurement.hex())
        elif kind == "grant":
            platform.policy.grant_owner(
                guest.domain.measurement.hex(), guest.instance_id
            )
        elif kind == "reregister":
            platform.identities.forget(guest.domain.domid)
            if action[2]:
                guest.domain.kernel_image += b"-patched"
            platform.identities.register(guest.domain)
        elif kind == "churn":
            name = _GUEST_NAMES[action[1]]
            platform.remove_guest(name)
            self.guests[name] = platform.add_guest(name)
        elif kind == "flush":
            platform.monitor.invalidate_cache()

    def decisions(self):
        return [
            (r.subject, r.instance, r.operation, r.allowed)
            for r in self.platform.audit.records()
        ]


@settings(max_examples=20, deadline=None)
@given(st.lists(_ACTION, min_size=4, max_size=24), st.integers(0, 2**16))
def test_cache_on_and_off_are_observationally_equal(actions, seed):
    cached = _World(cache_on=True, seed=seed)
    uncached = _World(cache_on=False, seed=seed)
    for action in actions:
        cached.apply(action)
        uncached.apply(action)

    # Byte-identical responses, command for command.
    assert cached.responses == uncached.responses
    # Identical (subject, instance, operation, verdict) audit sequence …
    assert cached.decisions() == uncached.decisions()
    # … and the timestamp-free chain hashes over it agree.
    assert (
        cached.platform.audit.decision_chain_hash()
        == uncached.platform.audit.decision_chain_hash()
    )
    # Sanity: the cache-off monitor never caches.
    assert uncached.platform.monitor.cache_hits == 0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**16))
def test_hot_cache_diff_on_pure_command_streams(seed):
    """With no mutations at all the cache is maximally hot — the easiest
    place for a stale decision to hide is also checked."""
    cached = _World(cache_on=True, seed=seed)
    uncached = _World(cache_on=False, seed=seed)
    script = [("cmd", i % 3, i % 8) for i in range(24)]
    for action in script:
        cached.apply(action)
        uncached.apply(action)
    assert cached.responses == uncached.responses
    assert cached.platform.monitor.cache_hits > 0
    assert (
        cached.platform.audit.decision_chain_hash()
        == uncached.platform.audit.decision_chain_hash()
    )
