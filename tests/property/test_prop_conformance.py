"""Stateful conformance property: pipeline == reference model, always.

A Hypothesis :class:`RuleBasedStateMachine` interleaves policy edits,
identity churn, live migration, manager restarts and TPM commands
against one real platform, and after every command checks the pipeline's
verdict against the :mod:`repro.verify.model` prediction — the same
oracle the schedule explorer uses, here driven by Hypothesis's own
schedule search and shrinker instead of seeded interleavings.

One test *method* is many examples, so the machine builds a fresh
platform (and timing context) per example in ``__init__`` — never at
module scope.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.tpm.client import TpmClient
from repro.verify.explorer import PCR_RANGE, ScheduleRunner, Step
from repro.vtpm.backend import VtpmBackend
from repro.vtpm.frontend import VtpmFrontend

GUESTS = 2

_guest = st.integers(min_value=0, max_value=GUESTS - 1)
_arg = st.integers(min_value=0, max_value=PCR_RANGE - 1)


class ConformanceMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        # ScheduleRunner installs a fresh timing context when it builds
        # its own platform, so each example starts at t=0.
        self.runner = ScheduleRunner(guests=GUESTS, seed=2010)
        self.runner.sync_model()
        self.index = 0
        self.migrations = 0

    def _step(self, step: Step) -> None:
        violation = self.runner._execute_step(self.index, step)
        self.index += 1
        assert violation is None, violation.describe()

    # -- commands ---------------------------------------------------------------

    @rule(guest=_guest, arg=_arg)
    def extend(self, guest, arg):
        self._step(Step(guest, "extend", arg))

    @rule(guest=_guest, arg=_arg)
    def pcr_read(self, guest, arg):
        self._step(Step(guest, "pcr_read", arg))

    @rule(guest=_guest)
    def get_random(self, guest):
        self._step(Step(guest, "get_random"))

    @rule(guest=_guest, arg=_arg)
    def cross_read(self, guest, arg):
        self._step(Step(guest, "cross_read", arg))

    # -- policy edits -----------------------------------------------------------

    @rule(guest=_guest, arg=_arg)
    def grant(self, guest, arg):
        self._step(Step(guest, "grant", arg))

    @rule(guest=_guest, arg=_arg)
    def revoke(self, guest, arg):
        self._step(Step(guest, "revoke", arg))

    # -- identity churn ---------------------------------------------------------

    @rule(guest=_guest)
    def forget(self, guest):
        self._step(Step(guest, "forget"))

    @rule(guest=_guest)
    def reregister(self, guest):
        self._step(Step(guest, "reregister"))

    # -- manager restart --------------------------------------------------------

    @rule()
    def restart(self):
        self._step(Step(0, "restart"))

    # -- live migration ---------------------------------------------------------

    @rule(guest=_guest)
    def migrate(self, guest):
        """Plaintext-migrate one guest to a fresh domain on the same
        platform: instance state moves, the new instance gets the full
        owner grant on its new id (the model's ``on_migrated`` contract).
        """
        runner = self.runner
        platform = runner.platform
        old = runner.handles[guest]
        name = f"g{guest}"
        package = platform.migration.export_plaintext(old.domain.uuid)
        self.migrations += 1
        target_vm = platform.xen.create_domain(
            f"{name}-m{self.migrations}",
            kernel_image=old.domain.kernel_image,
            config=dict(old.domain.config),
        )
        instance = platform.migration.import_plaintext(package, target_vm)
        frontend = VtpmFrontend(platform.xen, target_vm, backend_domid=0)
        backend = VtpmBackend(
            platform.xen, platform.manager, frontend, instance.instance_id
        )
        handle = type(old)(
            domain=target_vm,
            frontend=frontend,
            backend=backend,
            client=TpmClient(
                frontend.transport,
                platform.rng.fork(f"client-{target_vm.name}"),
            ),
            instance_id=instance.instance_id,
        )
        runner.handles[guest] = handle
        # Keep the platform's own book coherent so restart_manager still
        # walks live instances only.
        platform.guests[name] = handle
        runner.model.on_migrated(name)

    # -- end-of-example checks --------------------------------------------------

    @invariant()
    def shadow_pcrs_match_live(self):
        violations = self.runner._end_of_run_checks(self.index)
        assert violations == [], violations[0].describe()


TestConformance = ConformanceMachine.TestCase
TestConformance.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None,
)
